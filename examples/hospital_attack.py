"""The hospital inference attack (paper, Section 2) as a narrative demo.

Alex outsources a patient database (three hospitals, flows 0.2/0.3/0.5, fatal
outcome rate 0.08) encrypted with the paper's own construction, then issues
the four queries of the paper's example.  Eve -- the provider -- sees only
ciphertext, yet recovers the fatality ratio of every hospital from the sizes
and overlaps of the encrypted results.

Run with::

    python examples/hospital_attack.py
"""

from __future__ import annotations

from repro.core import SearchableSelectDph
from repro.crypto.keys import SecretKey
from repro.security.attacks import observe_alex_queries, run_hospital_inference
from repro.workloads import HospitalWorkload


def main() -> None:
    workload = HospitalWorkload.generate(5000, seed=2026)
    print(
        f"Alex's database: {workload.size} patients, flows {workload.flows}, "
        f"outcome rates {workload.outcome_rates}"
    )

    dph = SearchableSelectDph(workload.schema, SecretKey.generate(), backend="index")
    print(f"Encrypted with {dph.name} (secure at q = 0).")

    print("\nAlex issues the paper's query sequence:")
    for query in workload.alex_queries():
        print(f"  {query!r}")

    view, roles = observe_alex_queries(dph, workload)
    print("\nWhat Eve observes (only ciphertext and result sizes):")
    for index, observed in enumerate(view.observed_queries):
        print(
            f"  encrypted query #{index}: {observed.encrypted_query.size_in_bytes()} token bytes, "
            f"{observed.result_size} matching tuple ciphertexts"
        )

    result = run_hospital_inference(dph, workload, view=view, true_roles=roles)
    print(
        "\nEve matches queries to roles using her priors "
        f"(identification correct: {result.identification_correct})."
    )
    print("\nRecovered per-hospital fatality ratios (Eve's estimate vs ground truth):")
    for hospital in sorted(result.true_fatality):
        estimate = result.estimated_fatality[hospital]
        truth = result.true_fatality[hospital]
        print(
            f"  hospital {hospital}: estimated {estimate:.4f}   "
            f"true {truth:.4f}   |error| {abs(estimate - truth):.4f}"
        )
    print(
        "\nNo cryptography was broken: result sizes and intersections alone leak "
        "the sensitive statistic, which is why Theorem 2.1 rules out security "
        "once queries flow (q > 0)."
    )


if __name__ == "__main__":
    main()
