"""The active adversary of Section 2: the "John" attack and Theorem 2.1.

Part 1 -- the John attack: with a query-encryption oracle (in practice, a
confused client application that encrypts queries on request, cf. the
Bleichenbacher-style argument in the paper), Eve learns in which hospital the
patient "John" was treated and what happened to him.

Part 2 -- Theorem 2.1 as an executable statement: the generic result-size
adversary wins the Definition 2.1 game against *every* scheme in the library
as soon as q = 1, and against none of the secure ones at q = 0.

Run with::

    python examples/active_adversary.py
"""

from __future__ import annotations

from repro.core import SearchableSelectDph
from repro.crypto.keys import SecretKey
from repro.schemes import BucketizationConfig, DeterministicDph, HacigumusDph
from repro.security import (
    AdversaryModel,
    DphIndistinguishabilityGame,
    GenericActiveAdversary,
)
from repro.security.attacks import run_active_query_attack
from repro.workloads import HospitalWorkload


def john_attack() -> None:
    workload = HospitalWorkload.generate(2000, target_name="John", seed=17)
    dph = SearchableSelectDph(workload.schema, SecretKey.generate(), backend="swp")
    print("Part 1: locating John with a handful of oracle queries")
    print(f"  ground truth: hospital {workload.target_hospital}, outcome {workload.target_outcome!r}")

    result = run_active_query_attack(dph, workload, oracle_budget=6)
    print(f"  Eve used {result.oracle_queries_used} oracle queries")
    print(f"  Eve's answer: hospital {result.inferred_hospital}, outcome {result.inferred_outcome!r}")
    print(f"  hospital correct: {result.hospital_correct}, outcome correct: {result.outcome_correct}")


def theorem_21() -> None:
    print("\nPart 2: Theorem 2.1 -- every database PH falls once q > 0")
    factories = {
        "dph-swp": lambda schema, rng: SearchableSelectDph(
            schema, SecretKey.generate(rng=rng), backend="swp", rng=rng
        ),
        "bucketization": lambda schema, rng: HacigumusDph(
            schema,
            SecretKey.generate(rng=rng),
            config=BucketizationConfig.uniform(schema, num_buckets=16, minimum=0, maximum=10000),
            rng=rng,
        ),
        "deterministic": lambda schema, rng: DeterministicDph(
            schema, SecretKey.generate(rng=rng), rng=rng
        ),
    }
    adversary = GenericActiveAdversary(table_size=8)
    print(f"  {'scheme':<15} {'q':>3} {'success':>8} {'advantage':>10}")
    for name, factory in factories.items():
        for budget in (1, 0):
            game = DphIndistinguishabilityGame(
                factory, query_budget=budget, adversary_model=AdversaryModel.ACTIVE, scheme_name=name
            )
            result = game.run(adversary, trials=60, seed=5)
            print(f"  {name:<15} {budget:>3} {result.success_rate:>8.2f} {result.advantage:>10.2f}")
    print(
        "  With one oracle query the generic adversary wins against every scheme;\n"
        "  with q = 0 it degenerates to guessing -- the relaxation under which the\n"
        "  paper proves its construction secure."
    )


def main() -> None:
    john_attack()
    theorem_21()


if __name__ == "__main__":
    main()
