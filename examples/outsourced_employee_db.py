"""A fuller outsourced-database scenario: schemes side by side.

The paper motivates database outsourcing with a client who wants the provider
to do the work without being trusted with the data.  This example runs the
same workload -- a synthetic employee database, a mix of department and
per-employee queries, plus a streaming insert -- through every scheme in the
library and prints what each one costs and what each one leaks:

* the paper's construction (SWP and secure-index backends): no equality
  pattern in the ciphertext, modest false positives, higher cost;
* bucketization and hashed indexes: cheaper, but equal values produce equal
  labels (the leak the paper's Section-1 attack exploits);
* deterministic encryption and plaintext: the two ends of the spectrum.

Run with::

    python examples/outsourced_employee_db.py
"""

from __future__ import annotations

import time
from collections import Counter

from repro.crypto.keys import SecretKey
from repro.outsourcing import OutsourcedDatabaseServer, OutsourcingClient
from repro.schemes.registry import available_schemes, create as create_scheme
from repro.workloads import EmployeeWorkload


def build_schemes(schema):
    """One instance of every registered scheme over the employee schema."""
    key = SecretKey.generate()
    return [create_scheme(name, schema, key) for name in available_schemes()]


def equality_leak(encrypted_relation) -> int:
    """How many searchable-field values repeat across tuples (0 = nothing leaks)."""
    repeats = 0
    positions = max(
        (len(t.search_fields) for t in encrypted_relation.encrypted_tuples), default=0
    )
    for position in range(positions):
        counts = Counter(
            t.search_fields[position]
            for t in encrypted_relation.encrypted_tuples
            if position < len(t.search_fields)
        )
        repeats += sum(c - 1 for c in counts.values() if c > 1)
    return repeats


def main() -> None:
    workload = EmployeeWorkload.generate(800, seed=7)
    print(f"Workload: {workload.size} employees, departments {workload.departments}")

    queries = [
        "SELECT * FROM Emp WHERE dept = 'HR'",
        "SELECT * FROM Emp WHERE dept = 'FIN'",
        "SELECT name, salary FROM Emp WHERE name = 'emp400'",
    ]

    header = (
        f"{'scheme':<15} {'store ms':>9} {'query ms':>9} {'bytes':>9} "
        f"{'false pos':>9} {'equality leak':>14}"
    )
    print("\n" + header)
    print("-" * len(header))

    for scheme in build_schemes(workload.schema):
        server = OutsourcedDatabaseServer()
        client = OutsourcingClient(scheme, server, relation_name="Emp")

        start = time.perf_counter()
        shipped = client.outsource(workload.relation)
        store_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        false_positives = 0
        for statement in queries:
            outcome = client.select(statement)
            false_positives += outcome.false_positives
        query_ms = (time.perf_counter() - start) * 1000

        # Streaming insert, then confirm it is findable.
        client.insert({"name": "newhire", "dept": "HR", "salary": 4242})
        found = client.select("SELECT * FROM Emp WHERE name = 'newhire'")
        assert len(found.relation) == 1

        leak = equality_leak(server.stored_relation("Emp"))
        print(
            f"{scheme.name:<15} {store_ms:>9.1f} {query_ms:>9.1f} {shipped:>9} "
            f"{false_positives:>9} {leak:>14}"
        )

    print(
        "\n'equality leak' counts pairs of tuples whose stored searchable fields "
        "coincide: 0 for the paper's construction, large for every deterministic "
        "baseline -- exactly the property the Section-1 attack exploits."
    )


if __name__ == "__main__":
    main()
