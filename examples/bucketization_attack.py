"""The Section-1 distinguishing attack, step by step.

The paper breaks the Hacıgümüş bucketization scheme with two tiny tables::

    table 1:  (ID 171, salary 4900)      table 2:  (ID 171, salary 4900)
              (ID 481, salary 1200)                 (ID 481, salary 4900)

Because bucket identifiers are encrypted deterministically, the ciphertext of
table 2 contains two identical "salary" labels and the ciphertext of table 1
(almost always) does not — so Eve wins the indistinguishability game of
Definition 1.2 nearly every time.  Against the paper's construction the same
adversary is reduced to a coin flip.

This example first walks through a single game round showing exactly what Eve
sees, then estimates her advantage over many rounds for bucketization, the
Damiani hashed index, deterministic encryption and both backends of the
paper's construction.

Run with::

    python examples/bucketization_attack.py
"""

from __future__ import annotations

from repro.core import SearchableSelectDph
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.schemes import BucketizationConfig, DamianiDph, DeterministicDph, HacigumusDph
from repro.security import IndistinguishabilityGame
from repro.security.attacks import SalaryPairAdversary, paper_salary_tables


def walk_through_one_round() -> None:
    table_1, table_2 = paper_salary_tables()
    print("The adversary's challenge tables (from the paper):")
    for name, table in (("table 1", table_1), ("table 2", table_2)):
        rows = [(t.value("id"), t.value("salary")) for t in table]
        print(f"  {name}: {rows}")

    config = BucketizationConfig.uniform(table_1.schema, num_buckets=16, minimum=0, maximum=10000)
    dph = HacigumusDph(table_1.schema, SecretKey.generate(), config=config)

    print("\nWhat Eve receives if Alex encrypts table 2 (bucketization):")
    encrypted = dph.encrypt_relation(table_2)
    for index, t in enumerate(encrypted.encrypted_tuples):
        labels = [field.hex() for field in t.search_fields]
        print(f"  tuple {index}: salary label {labels[1]}")
    labels = [t.search_fields[1] for t in encrypted.encrypted_tuples]
    print(f"  identical salary labels -> Eve answers 'table 2': {labels[0] == labels[1]}")

    print("\nThe same ciphertext view under the paper's construction (SWP backend):")
    swp = SearchableSelectDph(table_1.schema, SecretKey.generate())
    encrypted = swp.encrypt_relation(table_2)
    for index, t in enumerate(encrypted.encrypted_tuples):
        print(f"  tuple {index}: salary word ciphertext {t.search_fields[1].hex()}")
    labels = [t.search_fields[1] for t in encrypted.encrypted_tuples]
    print(f"  identical? {labels[0] == labels[1]}  (randomized encryption hides the repeat)")


def estimate_advantages(trials: int = 150) -> None:
    adversary = SalaryPairAdversary()
    factories = {
        "bucketization (16 buckets)": lambda schema, rng: HacigumusDph(
            schema,
            SecretKey.generate(rng=rng),
            config=BucketizationConfig.uniform(schema, num_buckets=16, minimum=0, maximum=10000),
            rng=rng,
        ),
        "damiani-hash (64 values)": lambda schema, rng: DamianiDph(
            schema, SecretKey.generate(rng=rng), num_hash_values=64, rng=rng
        ),
        "deterministic": lambda schema, rng: DeterministicDph(
            schema, SecretKey.generate(rng=rng), rng=rng
        ),
        "dph-swp (paper, Sec. 3)": lambda schema, rng: SearchableSelectDph(
            schema, SecretKey.generate(rng=rng), backend="swp", rng=rng
        ),
        "dph-index (optimized)": lambda schema, rng: SearchableSelectDph(
            schema, SecretKey.generate(rng=rng), backend="index", rng=rng
        ),
    }
    print(f"\nEstimated winning probability over {trials} fresh-key game rounds:")
    print(f"  {'scheme':<28} {'success':>8} {'advantage':>10} {'95% CI (advantage)':>22}")
    for name, factory in factories.items():
        result = IndistinguishabilityGame(factory, name).run(adversary, trials=trials, seed=7)
        low, high = result.estimate.advantage_interval
        print(
            f"  {name:<28} {result.success_rate:>8.2f} {result.advantage:>10.2f}"
            f"      [{low:+.2f}, {high:+.2f}]"
        )


def main() -> None:
    walk_through_one_round()
    estimate_advantages()


if __name__ == "__main__":
    main()
