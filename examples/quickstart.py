"""Quickstart: the :class:`EncryptedDatabase` session facade, end to end.

The worked example of Section 3 of the paper, driven through the public API:

1. open a keyed session against an (untrusted, in-process) provider with the
   scheme built on searchable encryption;
2. create the relation ``Emp(name, dept, salary)`` -- tuples become documents
   of words like ``"MontgomeryN"``, encrypted and shipped over the versioned
   wire protocol;
3. run ``SELECT``s -- each query is encrypted into a search trapdoor,
   evaluated by the provider over ciphertext, decrypted and filtered by the
   client;
4. ``UPDATE`` and ``DELETE`` -- true matches are resolved client-side, then
   addressed at the provider by their public random tuple ids (protocol v2).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import EncryptedDatabase, SecretKey, available_schemes


def main() -> None:
    # 1. A keyed session: one master secret, any registered scheme.
    print(f"Registered schemes: {', '.join(available_schemes())}")
    key = SecretKey.generate()
    db = EncryptedDatabase.open(key, scheme="swp")
    print(f"Session opened with scheme {db.scheme_name!r}, "
          f"protocol v{db.protocol_version}")

    # 2. Create and populate the outsourced relation.
    db.create_table(
        "Emp(name:string[10], dept:string[5], salary:int[6])",
        rows=[
            ("Montgomery", "HR", 7500),
            ("Smith", "IT", 5200),
            ("Weaver", "HR", 6800),
            ("Jones", "SALES", 4100),
        ],
    )
    print(f"Created table Emp with {db.count('Emp')} tuples "
          f"({db.server.storage_in_bytes('Emp')} ciphertext bytes at the provider).")

    # 3. Exact selects over ciphertext (SQL is routed via the FROM clause).
    for statement in (
        "SELECT * FROM Emp WHERE name = 'Montgomery'",
        "SELECT name, salary FROM Emp WHERE dept = 'HR'",
        "SELECT * FROM Emp WHERE salary = 4100",
    ):
        outcome = db.select(statement)
        rows = outcome.projected_rows or [t.as_dict() for t in outcome.relation]
        print(f"\n{statement}")
        print(f"  -> {len(outcome.relation)} tuple(s), "
              f"{outcome.false_positives} false positive(s) filtered")
        for row in rows:
            print(f"     {row}")

    # 4. Full CRUD: update and delete travel as v2 protocol messages.
    updated = db.update("SELECT * FROM Emp WHERE name = 'Smith'", {"salary": 5500})
    deleted = db.delete("SELECT * FROM Emp WHERE dept = 'HR'")
    print(f"\nUpdated {updated} tuple(s), deleted {deleted} tuple(s); "
          f"{db.count('Emp')} remain.")

    # 5. What the provider saw (and did not see).
    print("\nProvider's audit log:", db.server.audit_log.summary())
    stored = db.server.stored_relation("Emp")
    leaked = b"".join(t.payload for t in stored)
    print("Provider stores plaintext names?", b"Montgomery" in leaked)


if __name__ == "__main__":
    main()
