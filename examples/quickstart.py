"""Quickstart: outsource the paper's employee relation and run exact selects.

This is the worked example of Section 3 of the paper, end to end:

1. define the relation ``Emp(name:string[9], dept:string[5], salary:int)``;
2. encrypt it with the database privacy homomorphism built on searchable
   encryption (tuples become documents of words like ``"MontgomeryN"``);
3. hand the ciphertext to the untrusted service provider;
4. run ``SELECT * FROM Emp WHERE name = 'Montgomery'`` -- the query is
   encrypted into a search trapdoor, evaluated by the provider over
   ciphertext, and the result is decrypted and filtered by the client.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SearchableSelectDph, SecretKey
from repro.outsourcing import OutsourcedDatabaseServer, OutsourcingClient
from repro.relational import Relation, RelationSchema


def main() -> None:
    # 1. The plaintext relation (Alex's sensitive data).
    schema = RelationSchema.parse("Emp(name:string[10], dept:string[5], salary:int[6])")
    employees = Relation.from_rows(
        schema,
        [
            ("Montgomery", "HR", 7500),
            ("Smith", "IT", 5200),
            ("Weaver", "HR", 6800),
            ("Jones", "SALES", 4100),
        ],
    )
    print(f"Plaintext relation: {employees!r}")

    # 2. The database privacy homomorphism (K, E, Eq, D) with a fresh key.
    key = SecretKey.generate()
    dph = SearchableSelectDph(schema, key, backend="swp")
    print(f"Scheme: {dph.name}, word length {dph.word_length} bytes, "
          f"false-positive rate {dph.false_positive_rate():.2e}")

    # 3. Outsource to the untrusted provider (Eve).
    server = OutsourcedDatabaseServer()
    client = OutsourcingClient(dph, server)
    shipped = client.outsource(employees)
    print(f"Shipped {shipped} ciphertext bytes to the provider "
          f"({len(employees)} tuples).")

    # 4. Exact selects over ciphertext.
    for statement in (
        "SELECT * FROM Emp WHERE name = 'Montgomery'",
        "SELECT name, salary FROM Emp WHERE dept = 'HR'",
        "SELECT * FROM Emp WHERE salary = 4100",
    ):
        outcome = client.select(statement)
        rows = outcome.projected_rows or [t.as_dict() for t in outcome.relation]
        print(f"\n{statement}")
        print(f"  -> {len(outcome.relation)} tuple(s), "
              f"{outcome.false_positives} false positive(s) filtered")
        for row in rows:
            print(f"     {row}")

    # 5. What the provider saw (and did not see).
    print("\nProvider's audit log:", server.audit_log.summary())
    stored = server.stored_relation("Emp")
    leaked = b"".join(t.payload for t in stored)
    print("Provider stores plaintext names?", b"Montgomery" in leaked)


if __name__ == "__main__":
    main()
