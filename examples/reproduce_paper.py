"""Regenerate every experiment table (E1-E10) with reduced parameters.

The full-size runs live in ``benchmarks/`` (one module per experiment, run
with ``pytest benchmarks/ --benchmark-only``); this script is the quick tour:
it iterates over the experiment registry and prints each table in a minute or
two of total runtime.

Run with::

    python examples/reproduce_paper.py
"""

from __future__ import annotations

import time

from repro.experiments import EXPERIMENTS


def main() -> None:
    print("Reproducing the evaluation of 'Provable Security for Outsourcing "
          "Database Operations' (ICDE 2006) -- quick parameters.\n")
    total_start = time.perf_counter()
    for spec in EXPERIMENTS:
        print(f"[{spec.identifier}] {spec.claim}")
        print(f"    full-size run: pytest {spec.benchmark} --benchmark-only")
        start = time.perf_counter()
        result = spec.run_quick()
        elapsed = time.perf_counter() - start
        print(result.to_table().render())
        print(f"    ({elapsed:.1f}s)\n")
    print(f"All experiments regenerated in {time.perf_counter() - total_start:.1f}s.")


if __name__ == "__main__":
    main()
