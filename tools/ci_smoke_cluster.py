"""CI smoke test of the sharded multi-provider deployment.

Six phases, every wait bounded so a hung provider fails the CI step
instead of wedging it:

1. **Scatter-gather CRUD** -- starts ``repro cluster spawn --shards 2`` as
   a real subprocess (two providers on ephemeral ports), routes a full
   CRUD round trip through the ``cluster://`` session -- which drives a
   :class:`~repro.cluster.router.ShardRouter` -- and asserts that *both*
   shards actually received traffic: each must store a non-empty slice of
   the relation and answer the scatter-gathered queries.  The fleet is
   then shut down with SIGTERM and must exit cleanly.

2. **Replicated failover** -- starts three *independent* ``repro serve``
   subprocesses (separate processes, so one can be SIGKILLed alone),
   connects with ``?replicas=2``, stores a relation, SIGKILLs one
   provider mid-workload, and asserts the next query still answers
   *complete and non-degraded*: the surviving replicas cover the dead
   shard's data, the router's failover counter fires and its degraded
   counter stays zero.

3. **Async pipelined transport** -- two ``repro serve`` subprocesses
   driven through a ``cluster://...?async=1`` session: the full CRUD
   round trip over pipelined asyncio connections, the router's
   event-loop scatter counter asserted to have fired, plus a direct
   ``AsyncRemoteServerProxy`` burst of concurrent in-flight requests
   over one connection.

4. **Indexed fleet** -- two ``repro serve`` subprocesses behind a
   ``cluster://...?index=1`` session: the session builds the encrypted
   inverted index through ``INDEX_PUT``/``INDEX_DELTA`` as it creates
   and mutates the table, exact selects are served by ``INDEX_LOOKUP``
   in ~O(result) provider work (asserted via the per-query ``examined``
   stat), every indexed result is compared against a plain scanning
   session on the same fleet, and the router's index counters must fire.

5. **Metrics plane** -- two ``repro serve`` subprocesses worked through a
   ``cluster://`` session, then scraped mid-workload over the ``metrics``
   control operation: every shard must expose a snapshot with non-zero
   latency-histogram counts and a parseable Prometheus text rendering,
   and the per-shard snapshots must merge into fleet-wide p50/p95/p99
   summaries.

6. **Coordinator cache** -- three ``repro serve`` subprocesses behind a
   ``cluster://...?cache=1`` session: a zipfian point-select burst must
   land a non-zero hit ratio on the coordinator cache (scraped from the
   ``coordinator-cache`` entry in ``cluster status``), then a fleet-wide
   delete followed by a full re-read sweep must serve *zero* stale rows
   and bump the cache's invalidation counter.

Usage::

    PYTHONPATH=src python tools/ci_smoke_cluster.py
"""

from __future__ import annotations

import re
import signal
import subprocess
import sys

STARTUP_TIMEOUT_S = 30
SHUTDOWN_TIMEOUT_S = 15
NUM_ROWS = 24  # enough that both shards hold tuples with overwhelming odds


def smoke_scatter_gather_crud() -> int:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "cluster", "spawn", "--shards", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        url = None
        for _ in range(10):
            banner = proc.stdout.readline()
            match = re.search(r"cluster ready: (cluster://\S+)", banner)
            if match:
                url = match.group(1)
                break
        if url is None:
            print("FAIL: no cluster-ready banner")
            return 1
        print(f"fleet up at {url}")

        from repro.api import EncryptedDatabase

        with EncryptedDatabase.connect(url, timeout=STARTUP_TIMEOUT_S) as db:
            db.create_table(
                "Smoke(name:string[10], value:int[4])",
                rows=[(f"row{i}", i % 3) for i in range(NUM_ROWS)],
            )
            counts = db.server.per_shard_tuple_counts("Smoke")
            if len(counts) != 2 or any(count == 0 for count in counts.values()):
                print(f"FAIL: traffic did not reach both shards: {counts}")
                return 1
            print(f"both shards store data: {counts}")

            outcome = db.select("SELECT * FROM Smoke WHERE value = 1")
            if len(outcome.relation) != NUM_ROWS // 3:
                print(f"FAIL: expected {NUM_ROWS // 3} rows, got {len(outcome.relation)}")
                return 1
            db.insert("Smoke", {"name": "extra", "value": 1})
            if len(db.select("SELECT * FROM Smoke WHERE value = 1").relation) != NUM_ROWS // 3 + 1:
                print("FAIL: insert did not land")
                return 1
            deleted = db.delete("SELECT * FROM Smoke WHERE value = 2")
            if deleted != NUM_ROWS // 3:
                print(f"FAIL: expected {NUM_ROWS // 3} deletions, got {deleted}")
                return 1
            status = db.server.cluster_status()
            for shard_id, entry in status.items():
                frames = entry.get("stats", {}).get("stats", {}).get("envelope_frames", 0)
                if not entry.get("ok") or frames == 0:
                    print(f"FAIL: shard {shard_id} served no envelopes: {entry}")
                    return 1
            print("scatter-gather CRUD round trip answered correctly on both shards")

        proc.send_signal(signal.SIGTERM)
        output, _ = proc.communicate(timeout=SHUTDOWN_TIMEOUT_S)
        if proc.returncode != 0:
            print(f"FAIL: fleet exited {proc.returncode}\n{output}")
            return 1
        if output.count("stopped") < 2:
            print(f"FAIL: missing graceful per-shard shutdown banners\n{output}")
            return 1
        print("fleet shut down cleanly")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def _spawn_provider() -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = proc.stdout.readline()
    match = re.search(r"tcp://([\d.]+):(\d+)", banner)
    if not match:
        proc.kill()
        proc.wait(timeout=10)
        raise RuntimeError(f"provider did not start: {banner!r}")
    return proc, f"{match.group(1)}:{match.group(2)}"


def smoke_replicated_failover() -> int:
    procs: list[subprocess.Popen] = []
    try:
        hosts = []
        for _ in range(3):
            proc, host = _spawn_provider()
            procs.append(proc)
            hosts.append(host)
        url = "cluster://" + ",".join(hosts) + "?replicas=2"
        print(f"replicated fleet up at {url}")

        from repro.api import EncryptedDatabase

        with EncryptedDatabase.connect(url, timeout=STARTUP_TIMEOUT_S) as db:
            db.create_table(
                "Smoke(name:string[10], value:int[4])",
                rows=[(f"row{i}", i % 3) for i in range(NUM_ROWS)],
            )
            counts = db.server.per_shard_tuple_counts("Smoke")
            if sum(counts.values()) != 2 * NUM_ROWS:
                print(f"FAIL: expected {2 * NUM_ROWS} physical copies: {counts}")
                return 1
            expected = NUM_ROWS // 3
            if len(db.select("SELECT * FROM Smoke WHERE value = 1").relation) != expected:
                print("FAIL: replicated query answered wrong multiplicities")
                return 1

            procs[0].send_signal(signal.SIGKILL)  # a provider dies, hard
            procs[0].wait(timeout=SHUTDOWN_TIMEOUT_S)
            print(f"SIGKILLed provider {hosts[0]}")

            outcome = db.select("SELECT * FROM Smoke WHERE value = 1")
            if len(outcome.relation) != expected:
                print(
                    f"FAIL: post-kill query degraded: {len(outcome.relation)} "
                    f"of {expected} rows"
                )
                return 1
            stats = db.server.stats.as_dict()
            if stats["degraded_reads"] != 0 or stats["failover_reads"] < 1:
                print(f"FAIL: read was not a clean failover: {stats}")
                return 1
            if db.count("Smoke") != NUM_ROWS:
                print(f"FAIL: post-kill count inflated/deflated: {db.count('Smoke')}")
                return 1
            print(
                "query stayed complete and non-degraded with 1/3 providers dead "
                f"(failover_reads={stats['failover_reads']})"
            )
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.communicate(timeout=SHUTDOWN_TIMEOUT_S)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10)


def smoke_async_transport() -> int:
    procs: list[subprocess.Popen] = []
    try:
        hosts = []
        for _ in range(2):
            proc, host = _spawn_provider()
            procs.append(proc)
            hosts.append(host)
        url = "cluster://" + ",".join(hosts) + "?async=1"
        print(f"async fleet up at {url}")

        from repro.api import EncryptedDatabase
        from repro.net import AsyncRemoteServerProxy

        with EncryptedDatabase.connect(url, timeout=STARTUP_TIMEOUT_S) as db:
            if not db.server.async_transport:
                print("FAIL: session did not pick the async transport")
                return 1
            db.create_table(
                "Smoke(name:string[10], value:int[4])",
                rows=[(f"row{i}", i % 3) for i in range(NUM_ROWS)],
            )
            expected = NUM_ROWS // 3
            if len(db.select("SELECT * FROM Smoke WHERE value = 1").relation) != expected:
                print("FAIL: async-transport query answered wrong multiplicities")
                return 1
            db.insert("Smoke", {"name": "extra", "value": 1})
            if db.count("Smoke") != NUM_ROWS + 1:
                print("FAIL: async-transport insert/count mismatch")
                return 1
            if db.delete("SELECT * FROM Smoke WHERE value = 2") != expected:
                print("FAIL: async-transport delete mismatch")
                return 1
            stats = db.server.stats.as_dict()
            if stats["loop_scatters"] < 3:
                print(f"FAIL: the event-loop scatter path never ran: {stats}")
                return 1
            print(
                f"async CRUD round trip ok ({stats['loop_scatters']} "
                "event-loop scatters)"
            )

        # One pipelined connection, a burst of concurrent in-flight pings.
        import asyncio

        host, port = hosts[0].rsplit(":", 1)
        proxy = AsyncRemoteServerProxy(host, int(port), timeout=STARTUP_TIMEOUT_S)
        try:
            async def burst():
                return await asyncio.gather(
                    *(proxy.call_control_async("ping") for _ in range(32))
                )

            responses = proxy.loop_thread.run(burst())
            if len(responses) != 32 or not all(r.get("ok") for r in responses):
                print("FAIL: pipelined burst lost responses")
                return 1
        finally:
            proxy.close()
        print("32 pipelined in-flight requests answered on one connection")
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.communicate(timeout=SHUTDOWN_TIMEOUT_S)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10)


def smoke_indexed_fleet() -> int:
    procs: list[subprocess.Popen] = []
    try:
        hosts = []
        for _ in range(2):
            proc, host = _spawn_provider()
            procs.append(proc)
            hosts.append(host)
        url = "cluster://" + ",".join(hosts) + "?index=1"
        print(f"indexed fleet up at {url}")

        from repro.api import EncryptedDatabase
        from repro.crypto.keys import SecretKey

        key = SecretKey.generate()
        with EncryptedDatabase.connect(url, key, timeout=STARTUP_TIMEOUT_S) as db:
            if not db.index_active:
                print("FAIL: session did not activate indexed serving")
                return 1
            db.create_table(
                "Smoke(name:string[10], value:int[4])",
                rows=[(f"row{i}", i % 3) for i in range(NUM_ROWS)],
            )
            db.insert("Smoke", {"name": "extra", "value": 1})
            if db.delete("SELECT * FROM Smoke WHERE name = 'row0'") != 1:
                print("FAIL: indexed delete mismatch")
                return 1

            expected = NUM_ROWS // 3 + 1
            outcome = db.select("SELECT * FROM Smoke WHERE value = 1")
            if len(outcome.relation) != expected:
                print(f"FAIL: indexed select answered {len(outcome.relation)} rows")
                return 1
            if not db.index_active:
                print("FAIL: the fleet pushed the session back to scans")
                return 1
            examined = outcome.evaluation.examined if outcome.evaluation else None
            if examined != expected:
                print(
                    f"FAIL: INDEX_LOOKUP examined {examined} tuples for "
                    f"{expected} results (expected ~O(result))"
                )
                return 1

            # Every indexed answer must equal what a scanning session sees.
            scan_url = "cluster://" + ",".join(hosts)
            with EncryptedDatabase.connect(
                scan_url, key, timeout=STARTUP_TIMEOUT_S
            ) as scan:
                scan.attach_table("Smoke(name:string[10], value:int[4])")
                for where in ("value = 0", "value = 1", "name = 'extra'"):
                    left = db.select(f"SELECT * FROM Smoke WHERE {where}")
                    right = scan.select(f"SELECT * FROM Smoke WHERE {where}")
                    left_names = sorted(t["name"] for t in left.relation)
                    right_names = sorted(t["name"] for t in right.relation)
                    if left_names != right_names:
                        print(f"FAIL: index/scan divergence on {where!r}")
                        return 1

            stats = db.server.stats.as_dict()
            if stats["index_lookups"] < 1 or stats["index_writes"] < 1:
                print(f"FAIL: the index serving path never ran: {stats}")
                return 1
            print(
                f"indexed fleet served {stats['index_lookups']} lookup(s) at "
                f"examined={examined} for {expected} results, scan-equivalent"
            )
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.communicate(timeout=SHUTDOWN_TIMEOUT_S)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10)


def smoke_metrics_plane() -> int:
    procs: list[subprocess.Popen] = []
    try:
        hosts = []
        for _ in range(2):
            proc, host = _spawn_provider()
            procs.append(proc)
            hosts.append(host)
        url = "cluster://" + ",".join(hosts)
        print(f"metrics fleet up at {url}")

        from repro.api import EncryptedDatabase
        from repro.net.client import RemoteServerProxy
        from repro.obs import histogram_summaries, merge_snapshots

        with EncryptedDatabase.connect(url, timeout=STARTUP_TIMEOUT_S) as db:
            db.create_table(
                "Smoke(name:string[10], value:int[4])",
                rows=[(f"row{i}", i % 3) for i in range(NUM_ROWS)],
            )
            for _ in range(3):
                db.select("SELECT * FROM Smoke WHERE value = 1")

            # Scrape every shard mid-workload, exactly like `repro stats`.
            snapshots = []
            for host in hosts:
                with RemoteServerProxy.connect(
                    f"tcp://{host}", pool_size=1, timeout=STARTUP_TIMEOUT_S
                ) as probe:
                    snapshot = probe.metrics().get("metrics")
                    if not snapshot:
                        print(f"FAIL: {host} exposed no metrics snapshot")
                        return 1
                    if not any(h["count"] > 0 for h in snapshot["histograms"]):
                        print(f"FAIL: {host} served traffic but every latency "
                              "histogram is empty")
                        return 1
                    text = probe.metrics(format="prometheus").get("prometheus", "")
                    if "# TYPE" not in text:
                        print(f"FAIL: {host} Prometheus rendering has no TYPE lines")
                        return 1
                    for line in text.splitlines():
                        if line.startswith("#") or not line:
                            continue
                        try:
                            float(line.rsplit(" ", 1)[1])
                        except (IndexError, ValueError):
                            print(f"FAIL: unparseable Prometheus line {line!r}")
                            return 1
                    snapshots.append(snapshot)

            merged = merge_snapshots(*snapshots)
            dispatch = [
                s for s in histogram_summaries(merged)
                if s["name"] == "server_dispatch_queue_seconds"
            ]
            if not dispatch or all(s["count"] == 0 for s in dispatch):
                print("FAIL: merged fleet snapshot lost the dispatch histograms")
                return 1
            worst = max(dispatch, key=lambda s: s["p99"])
            print(
                f"metrics plane ok: {len(snapshots)} shard snapshot(s) merged, "
                f"dispatch-queue p50={worst['p50']:.6f}s p99={worst['p99']:.6f}s "
                f"over {sum(s['count'] for s in dispatch)} request(s)"
            )
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.communicate(timeout=SHUTDOWN_TIMEOUT_S)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10)


def smoke_cache_tier() -> int:
    procs: list[subprocess.Popen] = []
    try:
        hosts = []
        for _ in range(3):
            proc, host = _spawn_provider()
            procs.append(proc)
            hosts.append(host)
        url = "cluster://" + ",".join(hosts) + "?cache=1"
        print(f"cached fleet up at {url}")

        from repro.api import EncryptedDatabase
        from repro.crypto.rng import DeterministicRng
        from repro.workloads.distributions import ZipfDistribution

        with EncryptedDatabase.connect(url, timeout=STARTUP_TIMEOUT_S) as db:
            db.create_table(
                "Smoke(name:string[10], value:int[4])",
                rows=[(f"row{i}", i % 3) for i in range(NUM_ROWS)],
            )
            # A skewed read burst: the hot keys repeat, so the coordinator
            # cache must absorb most of the scatter round trips.
            distribution = ZipfDistribution(range(NUM_ROWS), exponent=1.3)
            for index in distribution.sample_many(DeterministicRng(6), 40):
                hits = db.select(f"SELECT * FROM Smoke WHERE name = 'row{index}'")
                if len(hits.relation) != 1:
                    print(
                        f"FAIL: point select for row{index} answered "
                        f"{len(hits.relation)} rows"
                    )
                    return 1
            entry = db.server.cluster_status().get("coordinator-cache")
            if not entry or not entry.get("ok"):
                print(f"FAIL: cluster status does not report the cache: {entry}")
                return 1
            stats = entry["cache"]
            if stats["hits"] == 0 or stats["hit_ratio"] <= 0.0:
                print(f"FAIL: zipfian burst never hit the cache: {stats}")
                return 1
            print(
                f"zipfian burst hit ratio {stats['hit_ratio']:.2f} "
                f"({stats['hits']} hits / {stats['misses']} misses)"
            )

            # The write path must invalidate: after a fleet-wide delete,
            # a full re-read sweep may serve zero stale rows.
            if db.delete("SELECT * FROM Smoke WHERE value = 2") != NUM_ROWS // 3:
                print("FAIL: cached-fleet delete mismatch")
                return 1
            if len(db.select("SELECT * FROM Smoke WHERE value = 2").relation) != 0:
                print("FAIL: stale rows served after delete")
                return 1
            for index in range(NUM_ROWS):
                rows = db.select(
                    f"SELECT * FROM Smoke WHERE name = 'row{index}'"
                ).relation
                expected = 0 if index % 3 == 2 else 1
                if len(rows) != expected:
                    print(
                        f"FAIL: stale cached answer for row{index}: "
                        f"{len(rows)} rows (expected {expected})"
                    )
                    return 1
            after = db.server.cluster_status()["coordinator-cache"]["cache"]
            if after["invalidations"] <= stats["invalidations"]:
                print(f"FAIL: the delete did not bump invalidations: {after}")
                return 1
            print(
                "delete invalidated the coordinator cache "
                f"(invalidations={after['invalidations']}), zero stale re-reads"
            )
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.communicate(timeout=SHUTDOWN_TIMEOUT_S)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10)


def main() -> int:
    exit_code = smoke_scatter_gather_crud()
    if exit_code != 0:
        return exit_code
    exit_code = smoke_replicated_failover()
    if exit_code != 0:
        return exit_code
    exit_code = smoke_async_transport()
    if exit_code != 0:
        return exit_code
    exit_code = smoke_indexed_fleet()
    if exit_code != 0:
        return exit_code
    exit_code = smoke_metrics_plane()
    if exit_code != 0:
        return exit_code
    return smoke_cache_tier()


if __name__ == "__main__":
    sys.exit(main())
