"""CI smoke test of the sharded multi-provider deployment.

Starts ``repro cluster spawn --shards 2`` as a real subprocess (two
providers on ephemeral ports), routes a full CRUD round trip through the
``cluster://`` session -- which drives a
:class:`~repro.cluster.router.ShardRouter` -- and asserts that *both*
shards actually received traffic: each must store a non-empty slice of the
relation and answer the scatter-gathered queries.  The fleet is then shut
down with SIGTERM and must exit cleanly.  Every wait is bounded so a hung
provider fails the CI step instead of wedging it.

Usage::

    PYTHONPATH=src python tools/ci_smoke_cluster.py
"""

from __future__ import annotations

import re
import signal
import subprocess
import sys

STARTUP_TIMEOUT_S = 30
SHUTDOWN_TIMEOUT_S = 15
NUM_ROWS = 24  # enough that both shards hold tuples with overwhelming odds


def main() -> int:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "cluster", "spawn", "--shards", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        url = None
        for _ in range(10):
            banner = proc.stdout.readline()
            match = re.search(r"cluster ready: (cluster://\S+)", banner)
            if match:
                url = match.group(1)
                break
        if url is None:
            print("FAIL: no cluster-ready banner")
            return 1
        print(f"fleet up at {url}")

        from repro.api import EncryptedDatabase

        with EncryptedDatabase.connect(url, timeout=STARTUP_TIMEOUT_S) as db:
            db.create_table(
                "Smoke(name:string[10], value:int[4])",
                rows=[(f"row{i}", i % 3) for i in range(NUM_ROWS)],
            )
            counts = db.server.per_shard_tuple_counts("Smoke")
            if len(counts) != 2 or any(count == 0 for count in counts.values()):
                print(f"FAIL: traffic did not reach both shards: {counts}")
                return 1
            print(f"both shards store data: {counts}")

            outcome = db.select("SELECT * FROM Smoke WHERE value = 1")
            if len(outcome.relation) != NUM_ROWS // 3:
                print(f"FAIL: expected {NUM_ROWS // 3} rows, got {len(outcome.relation)}")
                return 1
            db.insert("Smoke", {"name": "extra", "value": 1})
            if len(db.select("SELECT * FROM Smoke WHERE value = 1").relation) != NUM_ROWS // 3 + 1:
                print("FAIL: insert did not land")
                return 1
            deleted = db.delete("SELECT * FROM Smoke WHERE value = 2")
            if deleted != NUM_ROWS // 3:
                print(f"FAIL: expected {NUM_ROWS // 3} deletions, got {deleted}")
                return 1
            status = db.server.cluster_status()
            for shard_id, entry in status.items():
                frames = entry.get("stats", {}).get("stats", {}).get("envelope_frames", 0)
                if not entry.get("ok") or frames == 0:
                    print(f"FAIL: shard {shard_id} served no envelopes: {entry}")
                    return 1
            print("scatter-gather CRUD round trip answered correctly on both shards")

        proc.send_signal(signal.SIGTERM)
        output, _ = proc.communicate(timeout=SHUTDOWN_TIMEOUT_S)
        if proc.returncode != 0:
            print(f"FAIL: fleet exited {proc.returncode}\n{output}")
            return 1
        if output.count("stopped") < 2:
            print(f"FAIL: missing graceful per-shard shutdown banners\n{output}")
            return 1
        print("fleet shut down cleanly")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
