"""CI smoke test of the benchmark orchestrator's regression gate.

Runs the checked-in quick-tier matrix twice through the real ``repro
bench`` CLI in subprocesses -- once clean, once with an injected
per-operation slowdown (``REPRO_BENCH_SLOWDOWN_S``) -- into a throwaway
result store, then asserts the gate machinery actually discriminates:

* ``repro bench gate`` PASSES (exit 0) when the candidate is the clean
  run itself (zero regression, p99 ceilings checked against real numbers);
* ``repro bench gate`` FAILS (exit 1) when the candidate is the degraded
  run, because the injected slowdown trips ``max_regression_pct``;
* ``repro bench report`` renders a markdown trend table spanning both
  recorded revisions.

Usage::

    PYTHONPATH=src python tools/ci_bench_gate.py
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
CONFIG = REPO_ROOT / "benchmarks" / "configs" / "quick.json"
STEP_TIMEOUT_S = 300

#: Large enough that even the noisiest CI runner sees >>20% regression.
INJECTED_SLOWDOWN_S = "0.05"


def _bench(args: list[str], *, env: dict | None = None) -> subprocess.CompletedProcess:
    merged = dict(os.environ)
    merged["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + merged.get("PYTHONPATH", "")
    )
    merged.pop("REPRO_BENCH_SLOWDOWN_S", None)
    if env:
        merged.update(env)
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "bench", *args],
        capture_output=True,
        text=True,
        timeout=STEP_TIMEOUT_S,
        env=merged,
        cwd=REPO_ROOT,
        check=False,
    )
    return completed


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-bench-gate-") as results_dir:
        common = ["--config", str(CONFIG), "--results-dir", results_dir]

        print("== clean run (rev ci-base) ==", flush=True)
        clean = _bench(["run", *common, "--rev", "ci-base"])
        if clean.returncode != 0:
            print(f"FAIL: clean bench run exited {clean.returncode}\n"
                  f"{clean.stdout}\n{clean.stderr}")
            return 1
        print(clean.stdout.strip().splitlines()[-1])

        print("== degraded run (rev ci-degraded, injected slowdown) ==", flush=True)
        degraded = _bench(
            ["run", *common, "--rev", "ci-degraded"],
            env={"REPRO_BENCH_SLOWDOWN_S": INJECTED_SLOWDOWN_S},
        )
        if degraded.returncode != 0:
            print(f"FAIL: degraded bench run exited {degraded.returncode}\n"
                  f"{degraded.stdout}\n{degraded.stderr}")
            return 1
        print(degraded.stdout.strip().splitlines()[-1])

        print("== gate: clean candidate vs clean baseline must pass ==", flush=True)
        gate_clean = _bench(
            ["gate", *common, "--baseline", "ci-base", "--candidate", "ci-base"]
        )
        print(gate_clean.stdout.strip())
        if gate_clean.returncode != 0:
            print(f"FAIL: clean gate exited {gate_clean.returncode}, expected 0\n"
                  f"{gate_clean.stderr}")
            return 1

        print("== gate: degraded candidate must fail ==", flush=True)
        gate_bad = _bench(
            ["gate", *common, "--baseline", "ci-base", "--candidate", "ci-degraded"]
        )
        print(gate_bad.stdout.strip())
        if gate_bad.returncode != 1:
            print(f"FAIL: degraded gate exited {gate_bad.returncode}, expected 1\n"
                  f"{gate_bad.stderr}")
            return 1
        if "max_regression_pct" not in gate_bad.stdout:
            print("FAIL: degraded gate did not report a regression violation")
            return 1

        print("== report: trend table must span both revisions ==", flush=True)
        report = _bench(
            ["report", "--experiment", "quick", "--results-dir", results_dir]
        )
        if report.returncode != 0:
            print(f"FAIL: report exited {report.returncode}\n{report.stderr}")
            return 1
        if "ci-base" not in report.stdout or "ci-degrade" not in report.stdout:
            print(f"FAIL: report does not span both revisions\n{report.stdout}")
            return 1
        print(report.stdout.strip())
        print("bench gate smoke: OK")
        return 0


if __name__ == "__main__":
    sys.exit(main())
