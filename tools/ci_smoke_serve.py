"""CI smoke test of the standalone provider.

Starts ``repro serve`` as a real subprocess, runs one remote query through
``EncryptedDatabase.connect("tcp://...")``, then shuts the provider down
with SIGTERM and checks it exits cleanly.  Every wait is bounded so a hung
provider fails the CI step instead of wedging it (the workflow additionally
wraps the whole script in ``timeout``).

Usage::

    PYTHONPATH=src python tools/ci_smoke_serve.py
"""

from __future__ import annotations

import re
import signal
import subprocess
import sys
import tempfile

STARTUP_TIMEOUT_S = 30
SHUTDOWN_TIMEOUT_S = 15


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as data_dir:
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--data-dir", data_dir, "--max-audit-events", "100",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"tcp://([\d.]+):(\d+)", banner)
            if not match:
                print(f"FAIL: no listening banner, got {banner!r}")
                return 1
            url = f"tcp://{match.group(1)}:{match.group(2)}"
            print(f"provider up at {url}")

            from repro.api import EncryptedDatabase

            with EncryptedDatabase.connect(url, timeout=STARTUP_TIMEOUT_S) as db:
                db.create_table(
                    "Smoke(name:string[10], value:int[4])",
                    rows=[("a", 1), ("b", 2), ("c", 1)],
                )
                outcome = db.select("SELECT * FROM Smoke WHERE value = 1")
                if len(outcome.relation) != 2:
                    print(f"FAIL: expected 2 rows, got {len(outcome.relation)}")
                    return 1
                print("remote query answered correctly")

            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=SHUTDOWN_TIMEOUT_S)
            if proc.returncode != 0:
                print(f"FAIL: provider exited {proc.returncode}\n{output}")
                return 1
            if "stopped" not in output:
                print(f"FAIL: no graceful-shutdown banner\n{output}")
                return 1
            print(f"provider shut down cleanly: {output.strip().splitlines()[-1]}")
            return 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
