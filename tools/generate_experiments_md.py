"""Generate EXPERIMENTS.md from the tables written by the benchmark harness.

Usage::

    python tools/generate_experiments_md.py

Reads ``benchmarks/results/*.txt`` (produced by ``pytest benchmarks/
--benchmark-only``) and writes ``EXPERIMENTS.md`` with, for every experiment,
the paper's claim, the expected shape, and the measured table.  Keeping the
document generated guarantees it never drifts from what the harness actually
produces.
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS = ROOT / "benchmarks" / "results"

PREAMBLE = """\
# EXPERIMENTS — paper claims vs. measured results

The ICDE 2006 poster contains no numbered tables or figures; its evaluation is
a set of worked attack examples and qualitative claims about the construction.
`DESIGN.md` (section 5) maps each claim to an experiment id (E1–E10, plus the
ablation A1); this file records, for each one, the paper's claim, the expected
shape of the result, and the table measured in this repository.

*How these numbers were produced.* `pytest benchmarks/ --benchmark-only`
regenerates every table below; each benchmark writes its table to
`benchmarks/results/<id>.txt` (the files embedded here) and asserts the
qualitative shape, so a regression in the library fails the harness rather
than silently changing the story. Absolute timings are from a single
container-class CPU core and are only meaningful relative to each other.
Game-based probabilities use 40–150 fresh-key trials per row; the statistical
resolution is therefore roughly ±0.1 on success probabilities (Wilson 95%).

This reproduction substitutes laptop-scale simulation for the paper's (never
reported) testbed, so the comparison is about *shape*: who wins each game, by
roughly what factor, and how costs scale. See DESIGN.md §4 for substitutions.
"""

SECTIONS = [
    (
        "E1",
        "e1_bucketization_attack",
        "Salary-pair attack vs bucketization (paper §1)",
        "Paper claim: the two-salary-table adversary determines \"with high probability\" "
        "which table was encrypted under the Hacıgümüş bucketization scheme, because bucket "
        "identifiers are encrypted deterministically.",
        "Expected shape: success probability ≈ 1 for every reasonable bucket count; the paper's "
        "own construction reduces the same adversary to a coin flip (advantage ≈ 0).",
        "Measured: matches. Bucketization is broken outright for 4–256 buckets; the SWP-backed "
        "construction shows advantage statistically indistinguishable from 0.",
    ),
    (
        "E2",
        "e2_damiani_attack",
        "Salary-pair attack vs the Damiani hashed index (paper §1)",
        "Paper claim: \"Similar attacks work on the scheme of Damiani et al.\" — the truncated "
        "keyed-hash index is deterministic, so equality of values leaks.",
        "Expected shape: success ≈ 1 − 1/(2·num_hash_values)·… i.e. near-perfect once the two "
        "salaries are unlikely to collide in the index (≥16 hash values); still well above 1/2 even "
        "for the coarsest index.",
        "Measured: matches. Success grows from ≈0.78 at 2 hash values to 1.0 at 256; plain "
        "deterministic encryption (no collisions) is broken with probability 1.",
    ),
    (
        "E3",
        "e3_dph_indistinguishability",
        "Indistinguishability of the construction at q = 0 (paper §3)",
        "Paper claim: under the relaxation q = 0 (Eve stores data but never sees live queries), the "
        "searchable-encryption construction is secure in a rigorous sense.",
        "Expected shape: every implemented q = 0 distinguisher — including the one that breaks "
        "bucketization — ends with advantage ≈ 0 against both backends.",
        "Measured: matches. All advantages lie within sampling noise of 0 (|adv| ≤ ~0.2 at 150 "
        "trials) and none of the adversaries crosses the 'broken' threshold.",
    ),
    (
        "E4",
        "e4_theorem21",
        "Theorem 2.1: every database PH falls once q > 0",
        "Paper claim: \"Any database PH (K, E, Eq, D) is insecure in the sense of Definition 2.1 if "
        "q > 0\", actively or passively.",
        "Expected shape: the generic result-size adversaries win with probability ≈ 1 against every "
        "scheme (including the paper's construction) at q = 1, and degrade to guessing at q = 0.",
        "Measured: matches exactly — success 1.0 for every scheme at q = 1 (active and passive), "
        "0.5 at q = 0.",
    ),
    (
        "E5",
        "e5_hospital_inference",
        "Passive hospital inference (paper §2)",
        "Paper claim: from the sizes of four query results and their intersections, Eve \"can infer "
        "the ratio of lethal to successful outcomes in hospital 1\", knowing only the schema and "
        "rough priors (flows 0.2/0.3/0.5, outcomes 0.08/0.92).",
        "Expected shape: query identification succeeds essentially always once the database has a few "
        "hundred patients, and the recovered fatality ratios equal the ground truth (the construction "
        "introduces no false positives at default parameters).",
        "Measured: matches — identification rate 1.0 and zero error at 500–8000 patients, against the "
        "paper's own (q = 0 secure) construction.",
    ),
    (
        "E6",
        "e6_active_adversary",
        "Active adversary locates a known patient (\"John\", paper §2)",
        "Paper claim: with a query-encryption oracle, Eve determines John's hospital by intersecting "
        "four query results, and \"analogously, she can find his status\".",
        "Expected shape: success probability 1 with a single-digit number of oracle queries, "
        "independent of the database size.",
        "Measured: matches — hospital and outcome recovered in every trial with 3–6 oracle queries.",
    ),
    (
        "E7",
        "e7_false_positives",
        "False positives of the searchable scheme (paper §3)",
        "Paper claim: the SWP scheme \"sometimes return[s] false positives … As the error rate is "
        "relatively small for all practical purposes, this does not affect the efficiency of our "
        "construction.\"",
        "Expected shape: observed false-positive rate ≈ 2^(−8m) for an m-byte check value; already at "
        "m = 2 bytes no false positives are observed at this sample size.",
        "Measured: matches — 127 false positives in 30 000 words at m = 1 (0.0042 ≈ 1/256), none at "
        "m ≥ 2. The client-side filter removes them without affecting result correctness (E8's 'fps' "
        "column and the homomorphism tests).",
    ),
    (
        "E8",
        "e8_throughput",
        "End-to-end cost of an outsourced exact select",
        "Paper claim (implicit): the construction's overhead is a constant factor — encryption, query "
        "encryption, server search and client decryption all scale linearly in the table size.",
        "Expected shape: linear growth for every phase and every scheme; the searchable backends cost "
        "a constant factor more than the weakly-protected baselines; the lossy baselines pay instead "
        "with false positives the client must filter.",
        "Measured: matches — e.g. SWP encryption 27 ms → 1.9 s from 100 → 5000 tuples (linear), server "
        "scan 4.5 ms → 169 ms; bucketization/hashing are ~5–7× cheaper but return hundreds of false "
        "positives at n = 5000, while the construction returns none.",
    ),
    (
        "E9",
        "e9_storage_overhead",
        "Ciphertext expansion",
        "Paper claim (implicit in the construction): storage overhead is a per-tuple constant — fixed-"
        "width searchable words plus an authenticated payload.",
        "Expected shape: expansion factors independent of table size; plaintext passthrough is the "
        "floor; the index backend pays extra for its per-document secure index.",
        "Measured: matches — expansion ≈ 6.6–7.0× (SWP), ≈ 10.4–10.9× (index), ≈ 4.9–5.2× "
        "(bucketization / hashed index), ≈ 2.5× (plaintext, dominated by the tuple-id and field "
        "duplication), constant across 200 vs 2000 tuples.",
    ),
    (
        "E10",
        "e10_index_vs_scan",
        "Secure-index backend vs SWP linear scan (full-version optimization)",
        "Paper claim: the construction is generic over the searchable scheme, so \"others can be used "
        "instead\" of SWP; the full version mentions straightforward optimizations.",
        "Expected shape: both backends do linear server work (one token evaluation per document), but "
        "the index backend's per-document check is several times cheaper; correctness and q = 0 "
        "security are unchanged (E3).",
        "Measured: matches — the index backend answers the same queries ~4–10× faster at the server "
        "for both high- and low-selectivity queries.",
    ),
    (
        "A1",
        "a1_variable_length",
        "Ablation: variable-length attribute words (full-version optimization)",
        "Paper claim: the full version describes \"straight-forward optimizations such as attributes "
        "of variable length\" over the poster's single global word width.",
        "Expected shape: identical homomorphism behaviour with meaningfully smaller ciphertext and "
        "faster server scans on schemas with one wide attribute.",
        "Measured: matches — on a Doc(title[40], category[6], year[4]) schema the variable layout "
        "stores ~30% fewer bytes and scans ~3× faster, with the homomorphism property preserved.",
    ),
]

CLOSING = """\
## Reading the results against the paper

Putting E1–E6 side by side reproduces the paper's overall argument:

1. the deployed-in-practice baselines (bucketization, hashed indexes) fail the
   classical indistinguishability game even with **zero** observed queries
   (E1, E2), exactly as argued in Section 1;
2. the paper's construction repairs that: at q = 0 no implemented adversary
   gains non-negligible advantage (E3), and its price is a constant-factor
   overhead (E7–E10, A1);
3. but the moment queries flow, *nothing* helps: the generic Theorem 2.1
   adversaries (E4) and the concrete hospital/John attacks (E5, E6) succeed
   against every scheme, including the construction — which is precisely the
   paper's impossibility message and the reason it restricts its positive
   result to the q = 0 setting.
"""


def main() -> int:
    if not RESULTS.exists():
        print("run `pytest benchmarks/ --benchmark-only` first", file=sys.stderr)
        return 1
    parts = [PREAMBLE]
    for identifier, stem, title, claim, expected, measured in SECTIONS:
        table_path = RESULTS / f"{stem}.txt"
        table = table_path.read_text(encoding="utf-8").rstrip() if table_path.exists() else "(table not generated yet)"
        claim = claim.removeprefix("Paper claim: ")
        expected = expected.removeprefix("Expected shape: ")
        measured = measured.removeprefix("Measured: ")
        parts.append(f"\n## {identifier} — {title}\n")
        parts.append(f"**Paper claim.** {claim}\n")
        parts.append(f"**Expected shape.** {expected}\n")
        parts.append(f"**Measured.** {measured}\n")
        parts.append("```text\n" + table + "\n```\n")
        parts.append(f"Regenerate with `pytest benchmarks/bench_{stem}.py --benchmark-only`.\n")
    parts.append("\n" + CLOSING)
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(parts), encoding="utf-8")
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
