"""Searchable symmetric encryption substrates.

Section 3 of the paper gives "a general construction of a database PH based on
searchable encryption schemes" and instantiates it with the scheme of Song,
Wagner and Perrig (IEEE S&P 2000), noting that "others can be used instead".
This package provides both:

* :class:`repro.searchable.swp.SwpScheme` -- a faithful reimplementation of the
  SWP *hidden search* scheme: fixed-length words are pre-encrypted with a
  deterministic permutation, then XOR-masked with a position-dependent
  keystream carrying an embedded PRF check value.  Searching requires a linear
  scan of the ciphertext and may return **false positives** with probability
  about ``2^{-8m}`` per word for an ``m``-byte check value -- exactly the
  behaviour the paper tells the client to filter out.
* :class:`repro.searchable.index_sse.IndexSseScheme` -- an index-based scheme
  in the style of Goh's secure indexes: each document stores salted hashes of
  per-word PRF labels.  Same interface, no false negatives, false positives
  only from hash truncation, and a much cheaper per-document search check.
  This plays the role of the "straight-forward optimizations" mentioned for
  the full version of the paper.

Both schemes implement :class:`repro.searchable.interfaces.SearchableEncryptionScheme`,
which is the only interface the database-PH construction in
:mod:`repro.core.construction` relies on.
"""

from repro.searchable.interfaces import (
    EncryptedDocument,
    SearchableEncryptionScheme,
    SearchMatch,
)
from repro.searchable.index_sse import IndexSseScheme
from repro.searchable.swp import SwpScheme
from repro.searchable.tokens import IndexToken, SwpToken
from repro.searchable.words import Word, WordCodec

__all__ = [
    "EncryptedDocument",
    "SearchableEncryptionScheme",
    "SearchMatch",
    "IndexSseScheme",
    "SwpScheme",
    "IndexToken",
    "SwpToken",
    "Word",
    "WordCodec",
]
