"""Word and document model for searchable encryption.

The paper maps every tuple of a relation to a *document*, i.e. a set of
fixed-length *words*.  Each word is the padded attribute value followed by a
short attribute identifier::

    <name:"Montgomery", dept:"HR", sal:7500>
        |-> {"MontgomeryN", "HR########D", "7500######S"}

The "globally fixed word length is the length of the longest attribute value
plus the length of an attribute identifier (required for decryption)".

:class:`WordCodec` implements that mapping between ``(attribute id, value
bytes)`` pairs and fixed-length words; :class:`Word` is a thin value wrapper
that validates the length invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.errors import PaddingError
from repro.crypto.padding import hash_pad, hash_unpad


class WordError(ValueError):
    """A word or word layout constraint was violated."""


@dataclass(frozen=True)
class Word:
    """A fixed-length word of a document."""

    data: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.data, (bytes, bytearray)):
            raise WordError("word data must be bytes")
        object.__setattr__(self, "data", bytes(self.data))

    def __len__(self) -> int:
        return len(self.data)

    def __bytes__(self) -> bytes:
        return self.data


class WordCodec:
    """Encode ``(attribute identifier, value)`` pairs as fixed-length words.

    Parameters
    ----------
    value_width:
        Width in bytes reserved for the (padded) attribute value; the paper
        fixes it to the length of the longest attribute value in the schema.
    id_width:
        Width in bytes of the attribute identifier appended to the value
        (1 byte in the paper's example: ``"N"``, ``"D"``, ``"S"``).
    """

    def __init__(self, value_width: int, id_width: int = 1) -> None:
        if value_width < 1:
            raise WordError("value width must be at least 1 byte")
        if id_width < 1:
            raise WordError("attribute id width must be at least 1 byte")
        self._value_width = value_width
        self._id_width = id_width

    @property
    def value_width(self) -> int:
        """Bytes reserved for the padded attribute value."""
        return self._value_width

    @property
    def id_width(self) -> int:
        """Bytes reserved for the attribute identifier."""
        return self._id_width

    @property
    def word_length(self) -> int:
        """Total word length: ``value_width + id_width``."""
        return self._value_width + self._id_width

    def encode(self, attribute_id: bytes, value: bytes) -> Word:
        """Build the word ``pad(value) | attribute_id``."""
        if len(attribute_id) != self._id_width:
            raise WordError(
                f"attribute id must be exactly {self._id_width} bytes, got {len(attribute_id)}"
            )
        try:
            padded = hash_pad(value, self._value_width)
        except PaddingError as exc:
            raise WordError(str(exc)) from exc
        return Word(padded + attribute_id)

    def decode(self, word: Word | bytes) -> tuple[bytes, bytes]:
        """Split a word back into ``(attribute_id, value)``, removing padding."""
        data = bytes(word) if isinstance(word, Word) else word
        if len(data) != self.word_length:
            raise WordError(
                f"word must be exactly {self.word_length} bytes, got {len(data)}"
            )
        padded_value = data[: self._value_width]
        attribute_id = data[self._value_width:]
        try:
            value = hash_unpad(padded_value)
        except PaddingError as exc:
            raise WordError(str(exc)) from exc
        return attribute_id, value

    def attribute_id_of(self, word: Word | bytes) -> bytes:
        """Return only the attribute identifier of a word."""
        return self.decode(word)[0]

    def value_of(self, word: Word | bytes) -> bytes:
        """Return only the (unpadded) value of a word."""
        return self.decode(word)[1]


def max_value_width(values: list[bytes]) -> int:
    """Return the width a :class:`WordCodec` needs to hold all ``values``."""
    if not values:
        return 1
    return max(1, max(len(v) for v in values))
