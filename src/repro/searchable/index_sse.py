"""Index-based searchable encryption (Goh-style secure index).

The paper notes that its construction works with *any* secure searchable
encryption scheme, and the full version mentions "straight-forward
optimizations".  This module provides such an optimization: instead of the SWP
per-word linear scan, every document carries a small *secure index* and the
server answers a trapdoor with a constant number of hash evaluations per
document.

Construction (a set-based variant of Goh's Z-IDX):

* per word ``W``: label ``ell = F_{k_label}(W)`` (computable only with the key);
* per document with public nonce ``nid``: the index stores, for every word,
  the truncated hash ``H(ell || nid)[:entry_len]``, sorted to hide word order;
* trapdoor for ``W``: the label ``ell``;
* server-side search: recompute ``H(ell || nid)[:entry_len]`` and test set
  membership.

Because each entry is salted with the per-document nonce, identical values in
different documents produce unrelated index entries -- the at-rest ciphertext
therefore leaks nothing beyond sizes, exactly like SWP.  False positives occur
only through ``entry_len``-byte hash collisions, with probability about
``words_per_document * 2^{-8 * entry_len}`` per document.

Word recovery (needed by the database PH for decryption) is provided by an
authenticated encryption of the concatenated words stored alongside the index.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.crypto.errors import DecryptionError, ParameterError
from repro.crypto.kdf import derive_key
from repro.crypto.prf import Prf
from repro.crypto.rng import RandomSource, SystemRng
from repro.crypto.symmetric import SymmetricCipher
from repro.searchable.interfaces import (
    EncryptedDocument,
    SearchableEncryptionScheme,
    SearchMatch,
)
from repro.searchable.tokens import IndexToken
from repro.searchable.words import Word

#: Length in bytes of the public per-document nonce.
DOCUMENT_ID_LEN = 16

#: Length in bytes of each per-word label (PRF output).
LABEL_LEN = 32

#: Default length in bytes of each truncated index entry.
DEFAULT_ENTRY_LEN = 8


def index_search(
    document: EncryptedDocument, token: IndexToken, entry_length: int
) -> SearchMatch:
    """Server-side index search: salted-hash membership test, no key needed."""
    if entry_length < 1:
        raise ParameterError("entry length must be at least 1 byte")
    index = document.index
    if len(index) % entry_length != 0:
        raise DecryptionError("index length is not a multiple of the entry length")
    entry = hashlib.sha256(token.label + document.document_id).digest()[:entry_length]
    entries = {
        index[i: i + entry_length] for i in range(0, len(index), entry_length)
    }
    return SearchMatch(matched=entry in entries)


class IndexSseScheme(SearchableEncryptionScheme):
    """Secure-index searchable encryption with per-document salted entries."""

    def __init__(
        self,
        key: bytes,
        word_length: int,
        entry_length: int = DEFAULT_ENTRY_LEN,
        rng: RandomSource | None = None,
    ) -> None:
        if word_length < 1:
            raise ParameterError("word length must be at least 1 byte")
        if not 1 <= entry_length <= 32:
            raise ParameterError("entry length must be between 1 and 32 bytes")
        self._word_length = word_length
        self._entry_length = entry_length
        self._label_prf = Prf(derive_key(key, "idx/label"))
        self._payload_cipher = SymmetricCipher(derive_key(key, "idx/payload"), rng=rng)
        self._rng = rng if rng is not None else SystemRng()
        self._typical_words_per_document = 8  # refined per call in false_positive_rate()

    # ------------------------------------------------------------------ #
    # SearchableEncryptionScheme interface
    # ------------------------------------------------------------------ #

    @property
    def word_length(self) -> int:
        """Length in bytes of every word."""
        return self._word_length

    @property
    def entry_length(self) -> int:
        """Length in bytes of each truncated index entry."""
        return self._entry_length

    def encrypt_document(self, words: Sequence[Word]) -> EncryptedDocument:
        """Build the salted index and the recoverable word payload."""
        for word in words:
            if len(word) != self._word_length:
                raise ParameterError(
                    f"word must be exactly {self._word_length} bytes, got {len(word)}"
                )
        document_id = self._rng.bytes(DOCUMENT_ID_LEN)
        entries = sorted(
            self._index_entry(self._label(bytes(word)), document_id) for word in words
        )
        index = b"".join(entries)
        payload = self._payload_cipher.encrypt_bytes(
            b"".join(bytes(word) for word in words), associated_data=document_id
        )
        self._typical_words_per_document = max(1, len(words))
        return EncryptedDocument(
            document_id=document_id,
            encrypted_words=(payload,),
            index=index,
        )

    def decrypt_document(self, document: EncryptedDocument) -> list[Word]:
        """Decrypt the word payload and split it into fixed-length words."""
        if len(document.encrypted_words) != 1:
            raise DecryptionError("index-SSE documents carry exactly one word payload")
        raw = self._payload_cipher.decrypt_bytes(
            document.encrypted_words[0], associated_data=document.document_id
        )
        if len(raw) % self._word_length != 0:
            raise DecryptionError("word payload length is not a multiple of the word length")
        return [
            Word(raw[i: i + self._word_length])
            for i in range(0, len(raw), self._word_length)
        ]

    def trapdoor(self, word: Word) -> IndexToken:
        """Produce the per-word label token."""
        data = bytes(word)
        if len(data) != self._word_length:
            raise ParameterError(
                f"word must be exactly {self._word_length} bytes, got {len(data)}"
            )
        return IndexToken(label=self._label(data))

    def search(self, document: EncryptedDocument, token: IndexToken) -> SearchMatch:
        """Constant-work membership test against the document's index."""
        return index_search(document, token, self._entry_length)

    def false_positive_rate(self) -> float:
        """Union bound over index entries of the truncation collision probability."""
        per_entry = 2.0 ** (-8 * self._entry_length)
        return min(1.0, self._typical_words_per_document * per_entry)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _label(self, word: bytes) -> bytes:
        return self._label_prf.evaluate(word, LABEL_LEN)

    def _index_entry(self, label: bytes, document_id: bytes) -> bytes:
        return hashlib.sha256(label + document_id).digest()[: self._entry_length]

    def _parse_index(self, index: bytes) -> set[bytes]:
        if len(index) % self._entry_length != 0:
            raise DecryptionError("index length is not a multiple of the entry length")
        return {
            index[i: i + self._entry_length]
            for i in range(0, len(index), self._entry_length)
        }
