"""Abstract interface every searchable encryption scheme implements.

The database-PH construction (:mod:`repro.core.construction`) is generic over
this interface -- which is the precise sense in which the paper's construction
is "general": any scheme offering (document encryption, trapdoor generation,
ciphertext-only search, document decryption) can be plugged in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

from repro.searchable.words import Word


@dataclass(frozen=True)
class EncryptedDocument:
    """An encrypted document as stored on the untrusted server.

    Attributes
    ----------
    document_id:
        A public, per-document nonce.  It plays the role of the stream
        position in SWP (so that identical words in different documents
        encrypt differently) and of the index salt in the index-based scheme.
    encrypted_words:
        The per-word ciphertexts (SWP) -- empty for pure index schemes.
    index:
        Opaque per-document search index bytes (index scheme) -- empty for SWP.
    payload:
        Optional additional opaque payload attached by higher layers (the
        database-PH construction stores the authenticated tuple ciphertext
        here so that decryption does not depend on word recovery alone).
    """

    document_id: bytes
    encrypted_words: tuple[bytes, ...] = ()
    index: bytes = b""
    payload: bytes = b""

    def size_in_bytes(self) -> int:
        """Total storage footprint of the encrypted document."""
        return (
            len(self.document_id)
            + sum(len(w) for w in self.encrypted_words)
            + len(self.index)
            + len(self.payload)
        )

    def with_payload(self, payload: bytes) -> "EncryptedDocument":
        """Return a copy carrying ``payload``."""
        return EncryptedDocument(
            document_id=self.document_id,
            encrypted_words=self.encrypted_words,
            index=self.index,
            payload=payload,
        )


@dataclass(frozen=True)
class SearchMatch:
    """The result of testing one encrypted document against one trapdoor."""

    matched: bool
    #: Word positions inside the document that matched (empty for index schemes).
    positions: tuple[int, ...] = field(default_factory=tuple)


class SearchableEncryptionScheme(ABC):
    """Interface of a searchable symmetric encryption scheme.

    Implementations must guarantee:

    * **Correctness** -- a trapdoor for word ``w`` matches every document that
      contains ``w`` (no false negatives).
    * **Controlled false positives** -- a trapdoor for ``w`` may match a
      document not containing ``w`` only with small, quantified probability
      (see :meth:`false_positive_rate`).
    * **Decryptability** -- the key holder can recover the exact multiset of
      words from an encrypted document.
    """

    @property
    @abstractmethod
    def word_length(self) -> int:
        """Length in bytes of the fixed-size words this instance handles."""

    @abstractmethod
    def encrypt_document(self, words: Sequence[Word]) -> EncryptedDocument:
        """Encrypt an (ordered) sequence of words into one document."""

    @abstractmethod
    def decrypt_document(self, document: EncryptedDocument) -> list[Word]:
        """Recover the plaintext words of a document."""

    @abstractmethod
    def trapdoor(self, word: Word):
        """Produce the search token for ``word`` (requires the secret key)."""

    @abstractmethod
    def search(self, document: EncryptedDocument, token) -> SearchMatch:
        """Test a document against a token using public information only."""

    @abstractmethod
    def false_positive_rate(self) -> float:
        """Upper bound on the per-word false positive probability of :meth:`search`."""
