"""The Song--Wagner--Perrig searchable encryption scheme ("hidden search").

This is the scheme the paper instantiates its construction with ([7] in the
paper: Song, Wagner, Perrig, *Practical Techniques for Searches on Encrypted
Data*, IEEE S&P 2000).  For a fixed word length ``w`` and check length ``m``:

**Encryption** of the ``i``-th word ``W`` of a document with public nonce
``nid``::

    X   = P_{k_word}(W)                       # deterministic pre-encryption
    L,R = X[:w-m], X[w-m:]
    S_i = G_{k_stream}(nid, i)                # w-m pseudorandom bytes
    k_i = f_{k_check}(L)                      # per-word check key
    C_i = X  XOR  ( S_i || F_{k_i}(S_i) )     # F outputs m bytes

**Trapdoor** for a word ``W``: the pair ``(X, k)`` with ``X = P_{k_word}(W)``
and ``k = f_{k_check}(X[:w-m])``.

**Search** (server side, no key): for every stored ``C_i`` compute
``T = C_i XOR X`` and accept iff ``F_k(T[:w-m]) == T[w-m:]``.  For words other
than ``W`` the check succeeds only by accident, with probability about
``2^{-8m}`` -- these are the *false positives* the paper says the client must
filter out.

**Decryption**: the key holder regenerates ``S_i``, recovers ``L``, derives
``k_i``, recovers ``R`` and inverts the pre-encryption.

The per-document nonce replaces SWP's global stream position so that the
scheme composes with the tuple-by-tuple encryption required by Definition 1.1:
two tuples containing the same value still produce independent-looking
ciphertexts.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.errors import DecryptionError, ParameterError
from repro.crypto.kdf import derive_key
from repro.crypto.prf import Prf
from repro.crypto.prg import xor_bytes
from repro.crypto.prp import UnbalancedFeistelPrp
from repro.crypto.rng import RandomSource, SystemRng
from repro.searchable.interfaces import (
    EncryptedDocument,
    SearchableEncryptionScheme,
    SearchMatch,
)
from repro.searchable.tokens import SwpToken
from repro.searchable.words import Word

#: Length in bytes of the public per-document nonce.
DOCUMENT_ID_LEN = 16

#: Default check length in bytes (false positive probability ~ 2^-48 per word).
DEFAULT_CHECK_LEN = 6


def swp_search(
    document: EncryptedDocument,
    token: SwpToken,
    word_length: int,
    check_length: int,
) -> SearchMatch:
    """Server-side SWP search: requires only the trapdoor and public parameters.

    This free function is what the untrusted server actually runs -- it is
    deliberately independent of :class:`SwpScheme` so that no code path on the
    server side ever has access to key material.
    """
    left_length = word_length - check_length
    positions = []
    check_prf = Prf(token.check_key)
    for index, ciphertext in enumerate(document.encrypted_words):
        if len(ciphertext) != word_length:
            continue
        masked = xor_bytes(ciphertext, token.pre_encrypted_word)
        stream_part = masked[:left_length]
        check_part = masked[left_length:]
        if check_prf.evaluate(stream_part, check_length) == check_part:
            positions.append(index)
    return SearchMatch(matched=bool(positions), positions=tuple(positions))


class SwpScheme(SearchableEncryptionScheme):
    """Song--Wagner--Perrig searchable encryption over fixed-length words.

    Parameters
    ----------
    key:
        Master secret; sub-keys for the pre-encryption permutation, the
        keystream and the check PRF are derived from it.
    word_length:
        Length ``w`` in bytes of every word.
    check_length:
        Length ``m`` in bytes of the embedded check value (``1 <= m < w``).
        Smaller values are faster and smaller but raise the false-positive
        rate to ``~2^{-8m}`` -- experiment E7 sweeps this parameter.
    rng:
        Randomness source for document nonces.
    """

    def __init__(
        self,
        key: bytes,
        word_length: int,
        check_length: int = DEFAULT_CHECK_LEN,
        rng: RandomSource | None = None,
    ) -> None:
        if word_length < 2:
            raise ParameterError("word length must be at least 2 bytes")
        if not 1 <= check_length < word_length:
            raise ParameterError(
                "check length must satisfy 1 <= m < word_length "
                f"(got m={check_length}, w={word_length})"
            )
        self._word_length = word_length
        self._check_length = check_length
        self._left_length = word_length - check_length
        self._pre_prp = UnbalancedFeistelPrp(derive_key(key, "swp/word"), word_length)
        self._stream_prf = Prf(derive_key(key, "swp/stream"))
        self._check_prf = Prf(derive_key(key, "swp/check"))
        self._rng = rng if rng is not None else SystemRng()

    # ------------------------------------------------------------------ #
    # SearchableEncryptionScheme interface
    # ------------------------------------------------------------------ #

    @property
    def word_length(self) -> int:
        """Length ``w`` in bytes of every word."""
        return self._word_length

    @property
    def check_length(self) -> int:
        """Length ``m`` in bytes of the embedded check value."""
        return self._check_length

    def encrypt_document(
        self, words: Sequence[Word], document_id: bytes | None = None
    ) -> EncryptedDocument:
        """Encrypt a sequence of words under a fresh (or caller-supplied) document nonce.

        Passing ``document_id`` explicitly is safe as long as the caller never
        reuses a nonce *under the same key*; the variable-width construction
        uses it to share one nonce across its independently keyed
        per-attribute schemes.
        """
        if document_id is None:
            document_id = self._rng.bytes(DOCUMENT_ID_LEN)
        if len(document_id) != DOCUMENT_ID_LEN:
            raise ParameterError(f"document id must be {DOCUMENT_ID_LEN} bytes")
        encrypted = tuple(
            self._encrypt_word(bytes(word), document_id, index)
            for index, word in enumerate(words)
        )
        return EncryptedDocument(document_id=document_id, encrypted_words=encrypted)

    def decrypt_document(self, document: EncryptedDocument) -> list[Word]:
        """Recover the plaintext words of a document."""
        return [
            Word(self._decrypt_word(ciphertext, document.document_id, index))
            for index, ciphertext in enumerate(document.encrypted_words)
        ]

    def trapdoor(self, word: Word) -> SwpToken:
        """Produce the search token ``(X, k)`` for ``word``."""
        data = bytes(word)
        if len(data) != self._word_length:
            raise ParameterError(
                f"word must be exactly {self._word_length} bytes, got {len(data)}"
            )
        pre_encrypted = self._pre_prp.permute(data)
        check_key = self._derive_check_key(pre_encrypted[: self._left_length])
        return SwpToken(pre_encrypted_word=pre_encrypted, check_key=check_key)

    def search(self, document: EncryptedDocument, token: SwpToken) -> SearchMatch:
        """Linear scan of the document's word ciphertexts (server-side, keyless)."""
        return swp_search(document, token, self._word_length, self._check_length)

    def false_positive_rate(self) -> float:
        """Per-word false positive probability, ``2^{-8m}``."""
        return 2.0 ** (-8 * self._check_length)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _derive_check_key(self, left_part: bytes) -> bytes:
        return self._check_prf.evaluate(left_part, 32)

    def _stream_block(self, document_id: bytes, index: int) -> bytes:
        return self._stream_prf.evaluate(
            document_id + index.to_bytes(4, "big"), self._left_length
        )

    def _encrypt_word(self, word: bytes, document_id: bytes, index: int) -> bytes:
        if len(word) != self._word_length:
            raise ParameterError(
                f"word must be exactly {self._word_length} bytes, got {len(word)}"
            )
        pre_encrypted = self._pre_prp.permute(word)
        left = pre_encrypted[: self._left_length]
        stream = self._stream_block(document_id, index)
        check_key = self._derive_check_key(left)
        check_value = Prf(check_key).evaluate(stream, self._check_length)
        return xor_bytes(pre_encrypted, stream + check_value)

    def _decrypt_word(self, ciphertext: bytes, document_id: bytes, index: int) -> bytes:
        if len(ciphertext) != self._word_length:
            raise DecryptionError(
                f"word ciphertext must be {self._word_length} bytes, got {len(ciphertext)}"
            )
        stream = self._stream_block(document_id, index)
        left = xor_bytes(ciphertext[: self._left_length], stream)
        check_key = self._derive_check_key(left)
        check_value = Prf(check_key).evaluate(stream, self._check_length)
        right = xor_bytes(ciphertext[self._left_length:], check_value)
        return self._pre_prp.invert(left + right)
