"""Search token (trapdoor) types.

A trapdoor is what the client hands to the server in order to search for one
specific word without revealing the word itself.  In the database-PH
construction of the paper, the *encrypted query* ``Eq_k(sigma_attr=v)`` is
exactly such a trapdoor for the word ``pad(v) | attr-id``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SwpToken:
    """Trapdoor of the Song--Wagner--Perrig scheme.

    Attributes
    ----------
    pre_encrypted_word:
        ``X = E_{k_word}(W)``, the deterministic pre-encryption of the word.
    check_key:
        ``k_i = f_{k_check}(L)``, the key the server uses to verify the
        embedded check value, where ``L`` is the left part of ``X``.
    """

    pre_encrypted_word: bytes
    check_key: bytes

    def to_bytes(self) -> bytes:
        """Serialize for transport: ``len(X) || X || k``."""
        return (
            len(self.pre_encrypted_word).to_bytes(2, "big")
            + self.pre_encrypted_word
            + self.check_key
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "SwpToken":
        """Parse the serialization produced by :meth:`to_bytes`."""
        if len(raw) < 2:
            raise ValueError("token too short")
        word_len = int.from_bytes(raw[:2], "big")
        if len(raw) < 2 + word_len:
            raise ValueError("token truncated")
        return cls(
            pre_encrypted_word=raw[2: 2 + word_len],
            check_key=raw[2 + word_len:],
        )


@dataclass(frozen=True)
class IndexToken:
    """Trapdoor of the index-based scheme: the per-word PRF label."""

    label: bytes

    def to_bytes(self) -> bytes:
        """Serialize for transport."""
        return self.label

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IndexToken":
        """Parse the serialization produced by :meth:`to_bytes`."""
        return cls(label=raw)
