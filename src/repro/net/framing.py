"""Length-prefixed framing of protocol envelopes on a byte stream.

TCP delivers a byte stream, the outsourcing protocol exchanges discrete
envelopes; this module is the (deliberately tiny) layer in between.  Each
frame is::

    +----------------+---------------+---------------------+----------------------+
    | length (4, BE) | channel (1 B) | correlation (4, BE) | payload (length-5 B) |
    +----------------+---------------+---------------------+----------------------+

where ``length`` counts the channel byte, the correlation id and the
payload.  The channel byte multiplexes two kinds of traffic over one
connection:

* :data:`CHANNEL_ENVELOPE` -- the payload is a protocol envelope exactly as
  :func:`repro.outsourcing.protocol.parse_message` consumes it (v1 or v2);
  the transport never inspects it.
* :data:`CHANNEL_CONTROL` -- the payload is a JSON control message of the
  session layer: the hello/version handshake and the management operations
  (evaluator deployment, relation listing, drops) that the in-process API
  performs as direct method calls.

The **correlation id** is what makes the connection pipelinable: a client
may keep many requests in flight, the server answers each in whatever order
dispatch completes, and every response frame echoes the correlation id of
the request it answers.  The id is transport-local (allocated per
connection, wrapping at 32 bits) and never reaches the protocol layer --
envelopes stay byte-identical to the in-process path.

Framing is strict by design: a frame announcing more than
``max_frame_size`` bytes kills the connection before any allocation happens
(a four-byte header must never make the provider reserve gigabytes), a
frame too short to carry its channel byte and correlation id is malformed,
and a stream that ends mid-frame raises :class:`TruncatedFrameError` so
callers can distinguish a clean EOF between frames from a peer dying
mid-send.

:class:`FrameDecoder` is sans-IO (fed bytes, yields frames) so the asyncio
server, the blocking client and the asyncio client share one tested
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes of the big-endian length prefix.
LENGTH_PREFIX_SIZE = 4

#: Bytes of the per-frame header inside the length-counted body:
#: the channel byte plus the 4-byte correlation id.
FRAME_HEADER_SIZE = 5

#: The correlation id is an unsigned 32-bit counter (wrapping).
MAX_CORRELATION_ID = 2**32 - 1

#: Default ceiling on ``channel byte + correlation id + payload``.  Generous
#: enough for a whole encrypted relation in one STORE_RELATION frame, small
#: enough that a hostile length prefix cannot make the peer allocate without
#: bound.
DEFAULT_MAX_FRAME_SIZE = 64 * 1024 * 1024

#: Channel tags (the byte after the length prefix).
CHANNEL_ENVELOPE = 0x00
CHANNEL_CONTROL = 0x01
KNOWN_CHANNELS = (CHANNEL_ENVELOPE, CHANNEL_CONTROL)


class FramingError(Exception):
    """A frame violated the transport's byte-level rules."""


class OversizedFrameError(FramingError):
    """A length prefix announced more than the configured maximum."""


class TruncatedFrameError(FramingError):
    """The stream ended in the middle of a frame."""


@dataclass(frozen=True)
class Frame:
    """One decoded frame: its channel tag, opaque payload and correlation id."""

    channel: int
    payload: bytes
    correlation: int = 0


def encode_frame(
    payload: bytes,
    channel: int = CHANNEL_ENVELOPE,
    correlation: int = 0,
    max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
) -> bytes:
    """Wrap a payload into one wire frame."""
    if channel not in KNOWN_CHANNELS:
        raise FramingError(f"unknown frame channel {channel:#x}")
    if not 0 <= correlation <= MAX_CORRELATION_ID:
        raise FramingError(f"correlation id {correlation} does not fit 32 bits")
    body_size = FRAME_HEADER_SIZE + len(payload)
    if body_size > max_frame_size:
        raise OversizedFrameError(
            f"frame of {body_size} bytes exceeds the {max_frame_size}-byte limit"
        )
    return (
        body_size.to_bytes(LENGTH_PREFIX_SIZE, "big")
        + bytes([channel])
        + correlation.to_bytes(4, "big")
        + payload
    )


class FrameDecoder:
    """Incremental frame parser over an unbounded byte stream (sans-IO).

    Feed it whatever chunks the socket produces; it yields complete frames
    and buffers partial ones.  Errors are raised eagerly: an oversized or
    malformed length prefix fails at header time, before the body arrives.
    """

    def __init__(self, max_frame_size: int = DEFAULT_MAX_FRAME_SIZE) -> None:
        self._max_frame_size = max_frame_size
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Frame]:
        """Absorb a chunk and return every frame it completes."""
        self._buffer.extend(data)
        frames = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def finish(self) -> None:
        """Signal EOF; raises if the stream died inside a frame."""
        if self._buffer:
            raise TruncatedFrameError(
                f"stream ended with {len(self._buffer)} bytes of an unfinished frame"
            )

    def _next_frame(self) -> Frame | None:
        if len(self._buffer) < LENGTH_PREFIX_SIZE:
            return None
        body_size = int.from_bytes(self._buffer[:LENGTH_PREFIX_SIZE], "big")
        if body_size > self._max_frame_size:
            raise OversizedFrameError(
                f"frame of {body_size} bytes exceeds the "
                f"{self._max_frame_size}-byte limit"
            )
        if body_size < FRAME_HEADER_SIZE:
            raise FramingError(
                f"frame body of {body_size} byte(s) cannot carry the "
                f"{FRAME_HEADER_SIZE}-byte channel/correlation header"
            )
        if len(self._buffer) < LENGTH_PREFIX_SIZE + body_size:
            return None
        channel = self._buffer[LENGTH_PREFIX_SIZE]
        if channel not in KNOWN_CHANNELS:
            raise FramingError(f"unknown frame channel {channel:#x}")
        correlation = int.from_bytes(
            self._buffer[LENGTH_PREFIX_SIZE + 1: LENGTH_PREFIX_SIZE + FRAME_HEADER_SIZE],
            "big",
        )
        payload = bytes(
            self._buffer[
                LENGTH_PREFIX_SIZE + FRAME_HEADER_SIZE: LENGTH_PREFIX_SIZE + body_size
            ]
        )
        del self._buffer[: LENGTH_PREFIX_SIZE + body_size]
        return Frame(channel=channel, payload=payload, correlation=correlation)


# --------------------------------------------------------------------------- #
# Blocking-socket helpers (tests and simple tooling)
# --------------------------------------------------------------------------- #

def send_frame(
    sock,
    payload: bytes,
    channel: int = CHANNEL_ENVELOPE,
    correlation: int = 0,
    max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
) -> None:
    """Send one frame over a connected blocking socket."""
    sock.sendall(
        encode_frame(
            payload,
            channel=channel,
            correlation=correlation,
            max_frame_size=max_frame_size,
        )
    )


def recv_frame(sock, max_frame_size: int = DEFAULT_MAX_FRAME_SIZE) -> Frame | None:
    """Read exactly one frame from a blocking socket.

    Returns ``None`` on a clean EOF *between* frames; raises
    :class:`TruncatedFrameError` when the peer disappears mid-frame.
    """
    header = _recv_exactly(sock, LENGTH_PREFIX_SIZE, eof_ok=True)
    if header is None:
        return None
    body_size = int.from_bytes(header, "big")
    if body_size > max_frame_size:
        raise OversizedFrameError(
            f"frame of {body_size} bytes exceeds the {max_frame_size}-byte limit"
        )
    if body_size < FRAME_HEADER_SIZE:
        raise FramingError(
            f"frame body of {body_size} byte(s) cannot carry the "
            f"{FRAME_HEADER_SIZE}-byte channel/correlation header"
        )
    body = _recv_exactly(sock, body_size, eof_ok=False)
    channel = body[0]
    if channel not in KNOWN_CHANNELS:
        raise FramingError(f"unknown frame channel {channel:#x}")
    return Frame(
        channel=channel,
        payload=bytes(body[FRAME_HEADER_SIZE:]),
        correlation=int.from_bytes(body[1:FRAME_HEADER_SIZE], "big"),
    )


def _recv_exactly(sock, size: int, eof_ok: bool) -> bytes | None:
    chunks = bytearray()
    while len(chunks) < size:
        chunk = sock.recv(size - len(chunks))
        if not chunk:
            if eof_ok and not chunks:
                return None
            raise TruncatedFrameError(
                f"peer closed the connection {len(chunks)}/{size} bytes into a frame"
            )
        chunks.extend(chunk)
    return bytes(chunks)
