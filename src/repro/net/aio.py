"""Pipelined asyncio client of the TCP transport.

The blocking :class:`~repro.net.client.RemoteServerProxy` admits one
request per pooled connection; at fleet scale that model burns a thread
and a full TCP round trip per in-flight request.  This module is the
other frontend over the same sans-IO core
(:class:`~repro.net.wire.ClientChannel`):
:class:`AsyncRemoteServerProxy` multiplexes *many* in-flight requests over
**one** connection -- each tagged with a correlation id, answered by the
provider in whatever order dispatch completes -- driven by a single event
loop instead of a thread per call.

The proxy serves two worlds at once:

* **Synchronous callers** get the exact
  :class:`~repro.outsourcing.server.OutsourcedDatabaseServer` duck-type
  (inherited from :class:`~repro.net.client.RemoteProxyBase`, so the sync
  surface is byte-for-byte the blocking proxy's).  Each call posts a
  coroutine to the proxy's :class:`EventLoopThread` and blocks for its own
  result only -- N threads calling concurrently become N requests
  pipelined on one socket.
* **The event loop itself** (the cluster's scatter path, benchmarks) calls
  the ``*_async`` surface directly and keeps hundreds of round trips in
  flight from one coordinator thread.

Failure semantics mirror the blocking proxy exactly: a call that hits a
dead connection is retried once on a fresh one, but a non-idempotent
operation is retried only when its request never reached the wire
(at-most-once).  When a multiplexed connection dies, every in-flight
request fails with ``request_delivered=True`` -- the provider may have
processed any of them -- and each caller applies that same rule
individually.  A request cancelled mid-flight (a scatter timeout) orphans
its correlation id: the connection stays healthy and the provider's late
answer is counted and dropped, never delivered to the wrong caller.
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import threading
import time
from typing import Sequence

from repro.net import wire
from repro.net.client import (
    ConnectionLostError,
    RemoteError,
    RemoteProxyBase,
    parse_tcp_options,
)
from repro.net.framing import (
    CHANNEL_CONTROL,
    CHANNEL_ENVELOPE,
    DEFAULT_MAX_FRAME_SIZE,
    Frame,
    FramingError,
)
from repro.obs import current_trace
from repro.outsourcing import protocol
from repro.outsourcing.protocol import PROTOCOL_V3, SUPPORTED_VERSIONS


class EventLoopThread:
    """A dedicated asyncio event loop on a daemon thread.

    One of these drives every async proxy opened from blocking code; a
    cluster router shares a single instance across all its shard proxies,
    which is what lets one coordinator thread keep every shard's round
    trips in flight simultaneously.
    """

    def __init__(self, name: str = "repro-aio") -> None:
        self._name = name
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The running loop; only valid between :meth:`start` and :meth:`stop`."""
        if self._loop is None:
            raise RuntimeError("the event loop thread is not running")
        return self._loop

    def is_current(self) -> bool:
        """True when called from the loop thread itself."""
        return self._thread is not None and threading.current_thread() is self._thread

    def start(self) -> "EventLoopThread":
        """Start the loop thread (idempotent)."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._run, name=self._name, daemon=True)
        self._thread.start()
        self._started.wait()
        return self

    def run(self, coroutine, timeout: float | None = None):
        """Run a coroutine on the loop and block for its result.

        Must not be called from the loop thread itself (that would block
        the loop waiting on itself); use ``await`` there instead.
        """
        if self.is_current():
            raise RuntimeError(
                "EventLoopThread.run called from the loop thread; await the "
                "coroutine instead"
            )
        future = asyncio.run_coroutine_threadsafe(coroutine, self.loop)
        return future.result(timeout)

    def stop(self) -> None:
        """Stop the loop and join the thread (idempotent)."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        self._loop = None
        self._thread = None
        self._started.clear()
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def __enter__(self) -> "EventLoopThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class AsyncRemoteConnection:
    """One pipelined framed connection, confined to its event loop.

    Any number of :meth:`request` coroutines may be in flight at once; a
    background reader task pairs incoming frames to their awaiting futures
    through the shared sans-IO :class:`~repro.net.wire.ClientChannel`.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame_size: int,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._channel = wire.ClientChannel(max_frame_size)
        self._failed: BaseException | None = None
        self._closed = False
        self._reader_task: asyncio.Task | None = None
        self.server_versions: tuple[int, ...] = ()
        self.negotiated_version: int = 0
        self.server_software: str = "unknown"
        self.server_max_frame_size: int = max_frame_size

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        *,
        timeout: float | None = 30.0,
        max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
        client_versions: Sequence[int] = SUPPORTED_VERSIONS,
    ) -> "AsyncRemoteConnection":
        """Connect, start the reader, and perform the hello handshake."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise ConnectionLostError(
                f"cannot connect to provider at {host}:{port}: {exc}"
            ) from exc
        raw_socket = writer.get_extra_info("socket")
        if raw_socket is not None:
            with contextlib.suppress(OSError):
                raw_socket.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        connection = cls(reader, writer, max_frame_size)
        connection._reader_task = asyncio.ensure_future(connection._read_loop())
        try:
            frame = await asyncio.wait_for(
                connection.request(wire.encode_hello(client_versions), CHANNEL_CONTROL),
                timeout,
            )
            response = wire.decode_control_response(frame.payload)
            if not response.get("ok"):
                raise RemoteError(wire.control_error(response))
            hello = wire.decode_hello(response, max_frame_size)
        except asyncio.TimeoutError as exc:
            await connection.close()
            raise ConnectionLostError(
                f"provider at {host}:{port} did not answer the hello"
            ) from exc
        except (wire.WireProtocolError, FramingError) as exc:
            await connection.close()
            raise RemoteError(str(exc)) from exc
        except BaseException:
            await connection.close()
            raise
        connection.server_versions = hello.versions
        connection.negotiated_version = hello.version
        connection.server_software = hello.software
        connection.server_max_frame_size = hello.max_frame_size
        return connection

    @property
    def healthy(self) -> bool:
        """True while the connection can carry new requests."""
        return self._failed is None and not self._closed

    @property
    def in_flight(self) -> int:
        """Requests awaiting their response right now."""
        return self._channel.pending_count

    @property
    def orphan_frames(self) -> int:
        """Late responses to cancelled requests, counted and dropped."""
        return self._channel.orphan_frames

    async def request(self, payload: bytes, channel: int) -> Frame:
        """One correlated round trip; any number may be in flight at once."""
        if self._closed:
            raise ConnectionLostError("the connection is closed")
        if self._failed is not None:
            raise ConnectionLostError(
                f"the connection already failed: {self._failed}"
            )
        future = asyncio.get_running_loop().create_future()
        correlation, wire_bytes = self._channel.send(payload, channel, context=future)
        delivered = False
        try:
            self._writer.write(wire_bytes)
            # Handed to the transport: the provider may observe it even if
            # drain() fails, so at-most-once must assume delivery from here.
            delivered = True
            await self._writer.drain()
        except (OSError, ConnectionError) as exc:
            self._channel.cancel(correlation)
            self._fail(exc)
            raise ConnectionLostError(
                f"provider connection failed: {exc}", request_delivered=delivered
            ) from exc
        try:
            return await future
        except asyncio.CancelledError:
            # Caller gave up (scatter timeout): orphan the correlation id so
            # the provider's late answer is dropped, not misdelivered.
            self._channel.cancel(correlation)
            raise

    async def close(self) -> None:
        """Tear the connection down; in-flight requests fail as undeliverable."""
        if self._closed:
            return
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reader_task
        self._fail_pending(ConnectionLostError("the connection is closed",
                                               request_delivered=True))
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    async def _read_loop(self) -> None:
        try:
            while True:
                chunk = await self._reader.read(65536)
                if not chunk:
                    self._fail(ConnectionError(
                        "provider closed the connection"
                        if self._channel.fault is None
                        else f"provider closed the connection: {self._channel.fault}"
                    ))
                    return
                for future, frame in self._channel.receive(chunk):
                    if future is not None and not future.done():
                        future.set_result(frame)
                if self._channel.fault is not None:
                    # The server broadcast a connection-fatal diagnostic
                    # (correlation 0) and is about to hang up: fail every
                    # in-flight request with the reason, not a bare EOF.
                    self._fail(ConnectionError(self._channel.fault))
                    return
        except (OSError, ConnectionError, FramingError) as exc:
            self._fail(exc)

    def _fail(self, exc: BaseException) -> None:
        if self._failed is not None or self._closed:
            return
        self._failed = exc
        self._fail_pending(
            ConnectionLostError(
                f"provider connection failed: {exc}", request_delivered=True
            )
        )
        self._writer.close()

    def _fail_pending(self, error: ConnectionLostError) -> None:
        for future in self._channel.fail_all():
            if future is not None and not future.done():
                future.set_exception(error)


class AsyncRemoteServerProxy(RemoteProxyBase):
    """A remote provider behind one pipelined asyncio connection.

    Drop-in for :class:`~repro.net.client.RemoteServerProxy` (same sync
    duck-type, same constructor shape apart from ``loop`` replacing
    ``pool_size``), plus the ``*_async`` surface for callers that live on
    the event loop -- :meth:`handle_message_async` is also what the
    cluster router keys on to route a scatter over the event loop.
    Opened by ``EncryptedDatabase.connect`` for ``tcp://host:port?async=1``
    URLs.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        loop: EventLoopThread | None = None,
        timeout: float | None = 30.0,
        max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
        client_versions: Sequence[int] = SUPPORTED_VERSIONS,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._max_frame_size = max_frame_size
        self._client_versions = tuple(client_versions)
        self._owns_loop = loop is None
        self._loop_thread = loop if loop is not None else EventLoopThread().start()
        self._conn: AsyncRemoteConnection | None = None
        self._conn_lock: asyncio.Lock | None = None
        self._closed = False
        try:
            connection = self._loop_thread.run(self._async_setup())
        except BaseException:
            if self._owns_loop:
                self._loop_thread.stop()
            raise
        self._server_versions = connection.server_versions
        self._negotiated_version = connection.negotiated_version
        self._server_software = connection.server_software

    @classmethod
    def connect(
        cls, url: str, *, loop: EventLoopThread | None = None, **kwargs
    ) -> "AsyncRemoteServerProxy":
        """Open a proxy from a ``tcp://host:port[?async=1]`` URL."""
        host, port, _ = parse_tcp_options(url)  # the async option selects this class
        return cls(host, port, loop=loop, **kwargs)

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #

    @property
    def address(self) -> tuple[str, int]:
        """The provider's ``(host, port)``."""
        return self._host, self._port

    @property
    def loop_thread(self) -> EventLoopThread:
        """The event loop driving this proxy's connection."""
        return self._loop_thread

    @property
    def orphan_frames(self) -> int:
        """Late responses dropped after request cancellation (diagnostics)."""
        connection = self._conn
        return connection.orphan_frames if connection is not None else 0

    def close(self) -> None:
        """Close the connection (and the loop thread when this proxy owns it)."""
        if self._closed:
            return
        self._closed = True
        with contextlib.suppress(Exception):
            self._loop_thread.run(self._async_close(), timeout=10.0)
        if self._owns_loop:
            self._loop_thread.stop()

    async def _async_setup(self) -> AsyncRemoteConnection:
        self._conn_lock = asyncio.Lock()
        self._conn = await self._open_connection()
        return self._conn

    async def _open_connection(self) -> AsyncRemoteConnection:
        return await AsyncRemoteConnection.open(
            self._host,
            self._port,
            timeout=self._timeout,
            max_frame_size=self._max_frame_size,
            client_versions=self._client_versions,
        )

    async def _async_close(self) -> None:
        async with self._conn_lock:
            if self._conn is not None:
                await self._conn.close()
                self._conn = None

    async def _connection(
        self, *, replacing: AsyncRemoteConnection | None = None
    ) -> AsyncRemoteConnection:
        """The live connection, reconnecting (once, under the lock) if dead.

        Concurrent requests failing together race here; the lock makes the
        first one reconnect and the rest adopt the replacement.
        """
        async with self._conn_lock:
            if self._closed:
                raise RemoteError("the proxy is closed")
            if replacing is not None and self._conn is replacing:
                await self._conn.close()
                self._conn = None
            if self._conn is not None and not self._conn.healthy:
                await self._conn.close()
                self._conn = None
            if self._conn is None:
                self._conn = await self._open_connection()
            return self._conn

    # ------------------------------------------------------------------ #
    # The async call surface (what the cluster's event-loop scatter drives)
    # ------------------------------------------------------------------ #

    async def handle_message_async(
        self, raw: bytes, trace_id: bytes | None = None
    ) -> bytes:
        """Async twin of :meth:`handle_message`, same retry semantics."""
        _, kind, _ = protocol.peek_envelope(raw)  # O(header) on the loop thread
        return await self.call_envelope_async(
            raw, idempotent=kind not in self.NON_IDEMPOTENT_KINDS, trace_id=trace_id
        )

    async def call_envelope_async(
        self, raw: bytes, idempotent: bool = True, trace_id: bytes | None = None
    ) -> bytes:
        """Ship one envelope over the pipelined connection.

        ``trace_id`` is attached (rewriting the envelope to protocol v3)
        only when this session negotiated v3; older providers never see
        trace bytes.  Coroutines cannot rely on the ambient trace -- the
        caller captured it on its own thread -- so the id arrives here as
        an explicit argument.
        """
        if trace_id is not None and self._negotiated_version >= PROTOCOL_V3:
            raw = protocol.attach_trace(raw, trace_id)
        frame = await self._acall(raw, CHANNEL_ENVELOPE, idempotent)
        if frame.channel == CHANNEL_CONTROL:
            # The server only answers an envelope with a control frame to
            # report a fatal transport-level failure before closing.
            try:
                error = wire.control_error(wire.decode_control_response(frame.payload))
            except wire.WireProtocolError:
                error = "unreadable provider error"
            raise RemoteError(error)
        return frame.payload

    async def call_control_async(
        self, op: str, *, idempotent: bool = True, **fields
    ) -> dict:
        """Run one management operation over the pipelined connection."""
        frame = await self._acall(
            wire.encode_control_request(op, **fields), CHANNEL_CONTROL, idempotent
        )
        if frame.channel != CHANNEL_CONTROL:
            raise RemoteError(f"provider answered control op {op!r} on the wrong channel")
        try:
            response = wire.decode_control_response(frame.payload)
        except wire.WireProtocolError as exc:
            raise RemoteError(str(exc)) from exc
        if not response.get("ok"):
            raise RemoteError(wire.control_error(response))
        return response

    async def _acall(self, payload: bytes, channel: int, idempotent: bool) -> Frame:
        """One request with the shared retry contract: retry a dead
        connection once, and never replay a non-idempotent request that may
        have reached the provider."""
        connection = await self._connection()
        try:
            return await self._bounded(connection.request(payload, channel))
        except ConnectionLostError as exc:
            if exc.request_delivered and not idempotent:
                raise
            connection = await self._connection(replacing=connection)
            return await self._bounded(connection.request(payload, channel))

    async def _bounded(self, awaitable):
        if self._timeout is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, self._timeout)
        except asyncio.TimeoutError as exc:
            # The connection is healthy, the provider just has not answered
            # this request; its eventual response is orphaned, not misrouted.
            raise RemoteError(
                f"provider did not answer within {self._timeout}s"
            ) from exc

    # ------------------------------------------------------------------ #
    # Transport primitives for the inherited sync duck-type
    # ------------------------------------------------------------------ #

    def _transport_envelope(self, raw: bytes, idempotent: bool) -> bytes:
        # The ambient trace is captured *here*, on the caller's thread --
        # the coroutine runs on the loop thread where the contextvar is
        # unset -- and the span is recorded into the captured Trace object
        # (which is thread-safe) once the round trip completes.
        trace = current_trace()
        trace_id = trace.trace_id if trace is not None else None
        started = time.time()
        mono = time.monotonic()
        try:
            return self._loop_thread.run(
                self.call_envelope_async(raw, idempotent, trace_id=trace_id)
            )
        finally:
            if trace is not None:
                trace.record(
                    "proxy.request",
                    started,
                    time.monotonic() - mono,
                    transport="tcp-async",
                    host=self._host,
                    port=self._port,
                )

    def _control(self, op: str, *, idempotent: bool = True, **fields) -> dict:
        return self._loop_thread.run(
            self.call_control_async(op, idempotent=idempotent, **fields)
        )
