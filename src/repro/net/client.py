"""Client side of the TCP transport: connections, pool, and the proxies.

:class:`RemoteServerProxy` is the piece that makes the network transparent:
it exposes the same duck-type as
:class:`~repro.outsourcing.server.OutsourcedDatabaseServer` -- the
byte-level :meth:`~RemoteProxyBase.handle_message` plus the management
calls (:meth:`~RemoteProxyBase.register_evaluator`,
:attr:`~RemoteProxyBase.relation_names`,
:meth:`~RemoteProxyBase.stored_relation`, ...) -- so
:class:`~repro.api.EncryptedDatabase` and
:class:`~repro.outsourcing.client.OutsourcingClient` drive a remote
provider with the code paths they already use in-process.

That whole surface lives in :class:`RemoteProxyBase`, expressed in terms of
two transport primitives (ship an envelope, run a control operation), so
the blocking proxy here and the pipelined
:class:`~repro.net.aio.AsyncRemoteServerProxy` share every line of
protocol logic and differ only in how bytes move.

Connections are blocking sockets behind a bounded :class:`ConnectionPool`,
so several threads can issue queries concurrently, each on its own
connection.  Every new connection performs the hello handshake (the server's
advertised protocol versions feed the session's
:func:`~repro.outsourcing.protocol.negotiate_version`).  A call that hits a
dead connection -- the provider restarted, an idle socket timed out -- is
retried once on a fresh connection before the error surfaces.

Errors raised here subclass
:class:`~repro.outsourcing.server.ServerError`, so the facade's existing
error translation applies unchanged to remote sessions.
"""

from __future__ import annotations

import base64
import contextlib
import socket
import threading
import time
from typing import Sequence
from urllib.parse import urlsplit

from repro.core.dph import (
    EncryptedQuery,
    EncryptedRelation,
    EncryptedTuple,
    EvaluationResult,
    ServerEvaluator,
)
from repro.net.evaluators import describe_evaluator
from repro.net.framing import (
    CHANNEL_CONTROL,
    CHANNEL_ENVELOPE,
    DEFAULT_MAX_FRAME_SIZE,
    Frame,
    FramingError,
)
from repro.net import wire
from repro.obs import current_trace
from repro.outsourcing import protocol
from repro.outsourcing.protocol import (
    Message,
    MessageKind,
    MessageV2,
    PROTOCOL_V1,
    PROTOCOL_V2,
    PROTOCOL_V3,
    SUPPORTED_VERSIONS,
)
from repro.outsourcing.server import ServerError


class RemoteError(ServerError):
    """A remote provider operation failed (subclasses the in-process error)."""


class ConnectionLostError(RemoteError):
    """The transport died mid-call; callers may retry on a fresh socket.

    ``request_delivered`` distinguishes failures where the request frame had
    already been handed to the kernel (the provider *may* have processed it)
    from failures before any byte left -- the proxy only auto-retries
    non-idempotent operations in the latter case.
    """

    def __init__(self, message: str, request_delivered: bool = False) -> None:
        super().__init__(message)
        self.request_delivered = request_delivered


#: Truthy / falsy spellings accepted by boolean URL options.
_TRUE_OPTION_VALUES = frozenset({"1", "true", "yes", "on"})
_FALSE_OPTION_VALUES = frozenset({"0", "false", "no", "off"})


def parse_bool_option(key: str, value: str) -> bool:
    """Parse a boolean URL query value, strictly."""
    lowered = value.strip().lower()
    if lowered in _TRUE_OPTION_VALUES:
        return True
    if lowered in _FALSE_OPTION_VALUES:
        return False
    raise RemoteError(
        f"URL option {key} must be a boolean (0/1/true/false), got {value!r}"
    )


def parse_tcp_options(url: str) -> tuple[str, int, dict]:
    """Split ``tcp://host:port[?async=1&index=1]`` into its parts, strictly.

    Returns ``(host, port, options)``; the supported options are ``async``
    (picks the pipelined asyncio transport, see
    :class:`~repro.net.aio.AsyncRemoteServerProxy`), ``index`` (the
    session maintains encrypted inverted indexes and serves exact selects
    through ``INDEX_LOOKUP``) and ``cache`` (the session keeps a
    client-side result cache of its reads, see :mod:`repro.cache`).
    Unknown options are rejected, not ignored: a silently dropped typo
    like ``?asnyc=1`` would quietly run the session on the wrong
    transport.
    """
    parts = urlsplit(url)
    if parts.scheme != "tcp":
        raise RemoteError(f"unsupported provider URL scheme {parts.scheme!r} (want tcp://)")
    try:
        hostname, port = parts.hostname, parts.port
    except ValueError as exc:  # non-numeric or out-of-range port
        raise RemoteError(f"provider URL {url!r}: {exc}") from exc
    if not hostname or port is None:
        raise RemoteError(f"provider URL {url!r} needs both a host and a port")
    if parts.path or parts.fragment:
        raise RemoteError(f"provider URL {url!r} carries an unexpected path")
    options: dict = {}
    if parts.query:
        for item in parts.query.split("&"):
            if not item:
                continue
            key, _, value = item.partition("=")
            if key not in ("async", "index", "cache"):
                raise RemoteError(
                    f"unknown provider URL option {key!r} "
                    "(supported: async, index, cache)"
                )
            options[key] = parse_bool_option(key, value)
    return hostname, port, options


def parse_tcp_url(url: str) -> tuple[str, int]:
    """Split a bare ``tcp://host:port`` into its parts (no options allowed)."""
    hostname, port, options = parse_tcp_options(url)
    if options:
        raise RemoteError(f"provider URL {url!r} carries unexpected options")
    return hostname, port


class RemoteConnection:
    """One blocking framed connection, hello-negotiated at construction.

    The wire work -- correlation ids, response pairing, hello -- lives in
    the sans-IO :class:`~repro.net.wire.ClientChannel`; this class only
    moves bytes through a blocking socket, one request at a time
    (concurrency comes from the pool, pipelining from the asyncio
    frontend over the very same channel core).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 30.0,
        max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
        client_versions: Sequence[int] = SUPPORTED_VERSIONS,
    ) -> None:
        self._max_frame_size = max_frame_size
        self._channel = wire.ClientChannel(max_frame_size)
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ConnectionLostError(
                f"cannot connect to provider at {host}:{port}: {exc}"
            ) from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            hello = self.call_control("hello", versions=list(client_versions))
        except RemoteError:
            self.close()
            raise
        parsed = wire.decode_hello(hello, max_frame_size)
        self.server_versions: tuple[int, ...] = parsed.versions
        self.negotiated_version: int = parsed.version
        self.server_software: str = parsed.software
        self.server_max_frame_size: int = parsed.max_frame_size

    def call_envelope(self, raw: bytes, trace_id: bytes | None = None) -> bytes:
        """One protocol round trip: envelope bytes out, envelope bytes back.

        ``trace_id`` is attached to the envelope (rewriting it to protocol
        v3, an O(1) byte splice) only when this connection negotiated v3 --
        older providers never see trace bytes they could not parse.
        """
        if trace_id is not None and self.negotiated_version >= PROTOCOL_V3:
            raw = protocol.attach_trace(raw, trace_id)
        frame = self._round_trip(raw, CHANNEL_ENVELOPE)
        if frame.channel == CHANNEL_CONTROL:
            # The server only answers an envelope with a control frame to
            # report a fatal transport-level failure before closing.
            raise RemoteError(self._control_error(frame.payload))
        return frame.payload

    def call_control(self, op: str, **fields) -> dict:
        """One control round trip; returns the response object on ``ok``."""
        frame = self._round_trip(
            wire.encode_control_request(op, **fields), CHANNEL_CONTROL
        )
        if frame.channel != CHANNEL_CONTROL:
            raise RemoteError(f"provider answered control op {op!r} on the wrong channel")
        try:
            response = wire.decode_control_response(frame.payload)
        except wire.WireProtocolError as exc:
            raise RemoteError(str(exc)) from exc
        if not response.get("ok"):
            raise RemoteError(wire.control_error(response))
        return response

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        with contextlib.suppress(OSError):
            self._sock.close()

    def _round_trip(self, payload: bytes, channel: int) -> Frame:
        delivered = False
        correlation = None
        try:
            correlation, wire_bytes = self._channel.send(payload, channel)
            self._sock.sendall(wire_bytes)
            delivered = True
            while True:
                chunk = self._sock.recv(65536)
                if not chunk:
                    raise ConnectionLostError(
                        self._connection_lost_message(), request_delivered=True
                    )
                matched = self._channel.receive(chunk)
                if matched:
                    # One request in flight at a time: the first (and only)
                    # matched response is ours.
                    return matched[0][1]
                if self._channel.fault is not None:
                    # The server broadcast why it is hanging up (e.g. our
                    # frame exceeded its size limit); surface that instead
                    # of the bare EOF that follows.
                    raise ConnectionLostError(
                        self._connection_lost_message(), request_delivered=True
                    )
        except (OSError, FramingError) as exc:
            if correlation is not None:
                self._channel.cancel(correlation)
            raise ConnectionLostError(
                f"provider connection failed: {exc}", request_delivered=delivered
            ) from exc

    def _connection_lost_message(self) -> str:
        if self._channel.fault is not None:
            return f"provider closed the connection: {self._channel.fault}"
        return "provider closed the connection"

    @staticmethod
    def _control_error(payload: bytes) -> str:
        try:
            return wire.control_error(wire.decode_control_response(payload))
        except wire.WireProtocolError:
            return "unreadable provider error"


class ConnectionPool:
    """A bounded pool of :class:`RemoteConnection` for concurrent callers.

    ``max_size`` caps *concurrent* checkouts (a semaphore); idle connections
    are reused most-recently-returned first.  A connection that fails inside
    :meth:`checkout` is discarded, never returned to the pool.
    """

    def __init__(self, factory, max_size: int = 4) -> None:
        if max_size < 1:
            raise ValueError("a connection pool needs max_size >= 1")
        self._factory = factory
        self._slots = threading.Semaphore(max_size)
        self._lock = threading.Lock()
        self._idle: list[RemoteConnection] = []
        self._closed = False

    @contextlib.contextmanager
    def checkout(self):
        """Borrow a connection; broken ones are dropped on the way out.

        A :class:`RemoteError` that is not a :class:`ConnectionLostError`
        means a round trip *completed* and the provider answered ``ok:
        false`` -- the connection is healthy and goes back to the pool.
        Anything else (transport failure, unexpected caller error) leaves
        the connection in an unknown state, so it is closed instead.
        """
        self._slots.acquire()
        connection = None
        reusable = False
        try:
            with self._lock:
                if self._closed:
                    raise RemoteError("the connection pool is closed")
                if self._idle:
                    connection = self._idle.pop()
            if connection is None:
                connection = self._factory()
            yield connection
            reusable = True
        except ConnectionLostError:
            raise
        except RemoteError:
            reusable = connection is not None
            raise
        finally:
            if connection is not None:
                if reusable:
                    with self._lock:
                        if self._closed:
                            connection.close()
                        else:
                            self._idle.append(connection)
                else:
                    connection.close()
            self._slots.release()

    def discard_idle(self) -> None:
        """Drop every idle connection (e.g. after a provider restart)."""
        with self._lock:
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()

    def close(self) -> None:
        """Close the pool and every idle connection."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()


class RemoteProxyBase:
    """The :class:`OutsourcedDatabaseServer` duck-type over two primitives.

    Subclasses provide :meth:`_transport_envelope` (ship one protocol
    envelope, honoring the retry/idempotence contract) and
    :meth:`_control` (run one management operation); everything else --
    envelope construction, response validation, the object-level
    convenience API -- is written once here and shared by the blocking
    and the pipelined asyncio proxies, so their sync surfaces cannot
    drift apart.
    """

    #: Envelope kinds whose replay would change provider state a second time.
    #: (STORE_RELATION replaces, DELETE_TUPLES ignores unknown ids, queries
    #: are read-only -- only INSERT_TUPLE appends blindly.)
    NON_IDEMPOTENT_KINDS = frozenset({MessageKind.INSERT_TUPLE})

    # Subclasses set these during their handshake.
    _server_versions: tuple[int, ...]
    _negotiated_version: int
    _server_software: str

    # ------------------------------------------------------------------ #
    # Transport primitives (implemented by the frontends)
    # ------------------------------------------------------------------ #

    def _transport_envelope(self, raw: bytes, idempotent: bool) -> bytes:
        raise NotImplementedError

    def _control(self, op: str, *, idempotent: bool = True, **fields) -> dict:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Connection facts
    # ------------------------------------------------------------------ #

    @property
    def server_software(self) -> str:
        """What the provider announced in its hello response."""
        return self._server_software

    @property
    def supported_protocol_versions(self) -> tuple[int, ...]:
        """The versions the remote provider advertised at hello time."""
        return self._server_versions

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The OutsourcedDatabaseServer duck-type
    # ------------------------------------------------------------------ #

    def handle_message(self, raw: bytes) -> bytes:
        """Ship one protocol envelope and return the provider's response."""
        _, kind, _ = protocol.peek_envelope(raw)  # O(header): no body copy
        return self._transport_envelope(
            raw, idempotent=kind not in self.NON_IDEMPOTENT_KINDS
        )

    def register_evaluator(self, name: str, evaluator: ServerEvaluator) -> None:
        """Deploy an evaluator remotely, by public-parameter description."""
        description = describe_evaluator(evaluator)
        self._control("register-evaluator", relation=name, evaluator=description)

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of the relations the provider stores."""
        response = self._control("relation-names")
        return tuple(response.get("names", ()))

    def stored_relation(self, name: str) -> EncryptedRelation:
        """Fetch the provider's ciphertext copy of a relation."""
        response = self._control("stored-relation", relation=name)
        try:
            raw = base64.b64decode(response["relation_b64"])
        except (KeyError, ValueError) as exc:
            raise RemoteError(f"malformed stored-relation response: {exc}") from exc
        return protocol.decode_encrypted_relation(raw)

    def tuple_count(self, name: str) -> int:
        """Number of tuple ciphertexts the provider stores for a relation."""
        response = self._control("tuple-count", relation=name)
        return int(response.get("count", 0))

    def list_tuple_ids(self, name: str) -> tuple[bytes, ...]:
        """The public tuple ids a relation stores, without its ciphertexts.

        ``O(ids)`` bytes over the wire via the v2 ``LIST_TUPLE_IDS`` op --
        what replicated coordinators use to count distinct tuples without
        fetching whole stored relations.  Against a v1-only provider the
        ids are derived from the fetched relation instead (correct, just
        as expensive as before the op existed).
        """
        if self._negotiated_version < PROTOCOL_V2:
            return tuple(
                t.tuple_id for t in self.stored_relation(name).encrypted_tuples
            )
        response = self._request(
            MessageKind.LIST_TUPLE_IDS, name, b"", expect=MessageKind.TUPLE_IDS
        )
        return protocol.decode_tuple_ids(response.body)

    def drop_relation(self, name: str) -> None:
        """Drop a relation (and its evaluator) at the provider.

        Not auto-retried once delivered: replaying a drop that was applied
        would surface a spurious "no such relation" error.
        """
        self._control("drop-relation", relation=name, idempotent=False)

    # ------------------------------------------------------------------ #
    # Object-level convenience API (what OutsourcingClient uses)
    # ------------------------------------------------------------------ #

    def store_relation(
        self,
        name: str,
        encrypted_relation: EncryptedRelation,
        evaluator: ServerEvaluator,
    ) -> None:
        """Deploy the evaluator, then ship the relation in one envelope."""
        self.register_evaluator(name, evaluator)
        self._request(
            MessageKind.STORE_RELATION,
            name,
            protocol.encode_encrypted_relation(encrypted_relation),
            expect=MessageKind.ACK,
        )

    def insert_tuple(self, name: str, encrypted_tuple: EncryptedTuple) -> None:
        """Append one tuple ciphertext."""
        self._request(
            MessageKind.INSERT_TUPLE,
            name,
            protocol.encode_encrypted_tuple(encrypted_tuple),
            expect=MessageKind.ACK,
        )

    def execute_query(self, name: str, encrypted_query: EncryptedQuery) -> EvaluationResult:
        """Run one encrypted query remotely."""
        response = self._request(
            MessageKind.QUERY,
            name,
            protocol.encode_encrypted_query(encrypted_query),
            expect=MessageKind.QUERY_RESULT,
        )
        if response.version == PROTOCOL_V1:
            return EvaluationResult(
                matching=protocol.decode_encrypted_relation(response.body)
            )
        result, consumed = protocol.decode_evaluation_result(response.body)
        if consumed != len(response.body):
            raise RemoteError("trailing bytes after evaluation result")
        return result

    def delete_tuples(self, name: str, tuple_ids: Sequence[bytes]) -> int:
        """Delete tuple ciphertexts by public id; returns the provider's count."""
        response = self._request(
            MessageKind.DELETE_TUPLES,
            name,
            protocol.encode_tuple_ids(list(tuple_ids)),
            expect=MessageKind.ACK,
        )
        return protocol.decode_count(response.body)

    def delete_tuples_exact(self, name: str, tuple_ids: Sequence[bytes]) -> tuple[bytes, ...]:
        """Delete by public id and learn exactly which ids were live."""
        response = self._request(
            MessageKind.DELETE_TUPLES_EXACT,
            name,
            protocol.encode_tuple_ids(list(tuple_ids)),
            expect=MessageKind.TUPLE_IDS,
        )
        return protocol.decode_tuple_ids(response.body)

    def execute_batch(
        self, name: str, encrypted_queries: Sequence[EncryptedQuery]
    ) -> list[EvaluationResult]:
        """Run several encrypted queries in one round trip."""
        response = self._request(
            MessageKind.BATCH_QUERY,
            name,
            protocol.encode_query_batch(encrypted_queries),
            expect=MessageKind.BATCH_RESULT,
        )
        return list(protocol.decode_result_batch(response.body))

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #

    def ping(self) -> bool:
        """One control round trip; True when the provider answers."""
        self._control("ping")
        return True

    def server_stats(self) -> dict:
        """The provider's aggregate transport stats and audit summary."""
        response = self._control("stats")
        return {key: value for key, value in response.items() if key != "ok"}

    def metrics(self, format: str | None = None) -> dict:
        """The provider's metrics snapshot (or its Prometheus rendering).

        With ``format="prometheus"`` the response carries a ``prometheus``
        text body instead of the structured ``metrics`` snapshot.
        """
        fields = {"format": format} if format is not None else {}
        response = self._control("metrics", **fields)
        return {key: value for key, value in response.items() if key != "ok"}

    def collect_trace(self, trace_id: bytes) -> list[dict]:
        """The spans this provider recorded under ``trace_id`` (may be [])."""
        response = self._control("trace", trace_id=trace_id.hex())
        trace = response.get("trace")
        if not trace:
            return []
        return list(trace.get("spans", ()))

    def recent_traces(self, limit: int = 10) -> dict:
        """The provider's most recent traces and slow-query entries."""
        response = self._control("trace", limit=limit)
        return {key: value for key, value in response.items() if key != "ok"}

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _request(
        self, kind: MessageKind, relation_name: str, body: bytes, expect: MessageKind
    ) -> Message | MessageV2:
        envelope = Message if self._negotiated_version == PROTOCOL_V1 else MessageV2
        raw = self.handle_message(
            envelope(kind=kind, relation_name=relation_name, body=body).to_bytes()
        )
        response = protocol.parse_message(raw)
        if response.kind is MessageKind.ERROR:
            raise RemoteError(response.body.decode("utf-8", "replace"))
        if response.kind is not expect:
            raise RemoteError(
                f"expected {expect.value!r} response, got {response.kind.value!r}"
            )
        return response


class RemoteServerProxy(RemoteProxyBase):
    """A remote provider behind a pool of blocking connections."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 4,
        timeout: float | None = 30.0,
        max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
        client_versions: Sequence[int] = SUPPORTED_VERSIONS,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._max_frame_size = max_frame_size
        self._client_versions = tuple(client_versions)
        self._pool = ConnectionPool(self._new_connection, max_size=pool_size)
        # Handshake eagerly: fail fast on a bad address, and learn the
        # server's protocol versions for the session's negotiation.
        with self._pool.checkout() as connection:
            self._server_versions = connection.server_versions
            self._negotiated_version = connection.negotiated_version
            self._server_software = connection.server_software

    @classmethod
    def connect(cls, url: str, **kwargs) -> "RemoteServerProxy":
        """Open a proxy from a ``tcp://host:port`` URL."""
        host, port, options = parse_tcp_options(url)
        if options.get("async"):
            raise RemoteError(
                f"provider URL {url!r} requests the async transport; open it "
                "with AsyncRemoteServerProxy.connect (or through "
                "EncryptedDatabase.connect, which dispatches on the option)"
            )
        return cls(host, port, **kwargs)

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #

    @property
    def address(self) -> tuple[str, int]:
        """The provider's ``(host, port)``."""
        return self._host, self._port

    def close(self) -> None:
        """Close the proxy's connection pool."""
        self._pool.close()

    def _new_connection(self) -> RemoteConnection:
        return RemoteConnection(
            self._host,
            self._port,
            timeout=self._timeout,
            max_frame_size=self._max_frame_size,
            client_versions=self._client_versions,
        )

    def _call(self, operation, idempotent: bool = True):
        """Run ``operation(connection)``, retrying once on a dead connection.

        Only transport-level failures (:class:`ConnectionLostError`) are
        retried, and a non-idempotent operation is only retried when the
        request never left this machine (``request_delivered`` is False) --
        otherwise a provider that processed the request before dying would
        see it applied twice.  Protocol-level errors are never retried.
        """
        try:
            with self._pool.checkout() as connection:
                return operation(connection)
        except ConnectionLostError as exc:
            if exc.request_delivered and not idempotent:
                raise
            self._pool.discard_idle()
            with self._pool.checkout() as connection:
                return operation(connection)

    # ------------------------------------------------------------------ #
    # Transport primitives
    # ------------------------------------------------------------------ #

    def _transport_envelope(self, raw: bytes, idempotent: bool) -> bytes:
        trace = current_trace()
        trace_id = trace.trace_id if trace is not None else None
        started = time.time()
        mono = time.monotonic()
        try:
            return self._call(
                lambda connection: connection.call_envelope(raw, trace_id=trace_id),
                idempotent=idempotent,
            )
        finally:
            if trace is not None:
                trace.record(
                    "proxy.request",
                    started,
                    time.monotonic() - mono,
                    transport="tcp",
                    host=self._host,
                    port=self._port,
                )

    def _control(self, op: str, *, idempotent: bool = True, **fields) -> dict:
        return self._call(
            lambda connection: connection.call_control(op, **fields),
            idempotent=idempotent,
        )
