"""Asyncio TCP front-end of the untrusted service provider.

:class:`DatabaseTcpServer` puts an
:class:`~repro.outsourcing.server.OutsourcedDatabaseServer` behind a
listening socket.  Each accepted connection is an independent asyncio task
that speaks the framing of :mod:`repro.net.framing`:

* the connection opens with a mandatory **hello** control exchange that
  negotiates the protocol version
  (:func:`repro.outsourcing.protocol.negotiate_version`) and advertises the
  server's frame-size limit;
* **envelope** frames are forwarded verbatim to
  :meth:`~repro.outsourcing.server.OutsourcedDatabaseServer.handle_message`
  on the dispatch pool;
* **control** frames carry the management operations the in-process API
  performs as direct method calls: evaluator deployment (by public-parameter
  description, see :mod:`repro.net.evaluators`), relation listing, drops,
  counts and stats.

Dispatch is **parallel across relations, FIFO within one**: the
:class:`KeyedSerialDispatcher` runs requests on a bounded thread pool but
serializes all requests that touch the same relation in arrival order
(the storage backends are not thread-safe per relation, and reordering
same-relation mutations would corrupt causality), while requests for
*different* relations -- or different shards colocated in one process --
execute concurrently.  A slow scan of one relation therefore no longer
blocks every other relation behind it.

Connections are **pipelined**: a client may send many request frames
without waiting, each carrying a correlation id; the server answers them
as dispatch completes -- possibly out of order -- and every response frame
echoes the correlation id of the request it answers, which is how the
pipelined clients pair them up again.

Byte-level violations -- garbage that does not frame, oversized length
prefixes, envelope bytes that do not parse -- are answered with one control
error frame and a closed connection: a peer that cannot frame correctly
cannot be trusted with further state.  Failures *inside* a well-framed
request stay inside the protocol (``ERROR`` envelopes / ``ok: false``
control responses) and the connection lives on.

The server counts per-connection and aggregate traffic
(:class:`ConnectionStats` / :class:`TcpServerStats`, including the dispatch
parallelism actually achieved); ``repro serve`` prints the aggregate on
shutdown and the ``stats`` control operation exposes it to remote clients.
"""

from __future__ import annotations

import asyncio
import base64
import concurrent.futures
import contextlib
import json
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.net import framing
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    Trace,
    TraceBuffer,
    render_prometheus,
    use_trace,
)
from repro.net.evaluators import EvaluatorDescriptionError, build_evaluator
from repro.net.framing import (
    CHANNEL_CONTROL,
    CHANNEL_ENVELOPE,
    DEFAULT_MAX_FRAME_SIZE,
    FrameDecoder,
    FramingError,
)
from repro.outsourcing import protocol
from repro.outsourcing.protocol import ProtocolError, negotiate_version
from repro.outsourcing.server import OutsourcedDatabaseServer, ServerError
from repro.outsourcing.storage import StorageError

#: Identifier the server announces in its hello response.
SERVER_SOFTWARE = "repro-provider"

#: Default size of the dispatch thread pool (how many relations can be
#: served concurrently by one provider process).
DEFAULT_DISPATCH_WORKERS = 4

#: Default cap on concurrently in-flight requests per connection; a client
#: pipelining harder than this sees TCP backpressure, not an error.
DEFAULT_MAX_IN_FLIGHT = 128


class KeyedSerialDispatcher:
    """FIFO-per-key execution on one bounded thread pool.

    ``submit(key, func, *args)`` returns a :class:`concurrent.futures.Future`.
    Jobs sharing a key run strictly in submission order, one at a time; jobs
    with different keys run concurrently up to ``max_workers``.  This is the
    concurrency contract of the provider: the storage backends tolerate
    concurrent access to *different* relations (separate dict slots /
    files) but not to the same one, and same-relation mutations must apply
    in the order the client pipelined them.

    Implementation: a deque of pending jobs per key; the first job submitted
    for an idle key also claims a pool worker that drains the key's queue to
    exhaustion, so one key never occupies more than one worker.
    """

    def __init__(
        self, max_workers: int, thread_name_prefix: str = "repro-net-dispatch"
    ) -> None:
        if max_workers < 1:
            raise ValueError("the dispatcher needs at least one worker")
        self._max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=thread_name_prefix
        )
        self._lock = threading.Lock()
        self._queues: dict[Hashable, deque] = {}
        self._executing = 0
        self._peak_executing = 0
        self._total = 0

    @property
    def workers(self) -> int:
        """Size of the dispatch pool."""
        return self._max_workers

    @property
    def peak_concurrency(self) -> int:
        """Most jobs ever observed executing at the same instant."""
        with self._lock:
            return self._peak_executing

    @property
    def total_dispatched(self) -> int:
        """Jobs completed (or failed) so far."""
        with self._lock:
            return self._total

    def submit(
        self, key: Hashable, func: Callable, *args
    ) -> concurrent.futures.Future:
        """Queue one job under ``key``; FIFO per key, parallel across keys."""
        future: concurrent.futures.Future = concurrent.futures.Future()
        with self._lock:
            queue = self._queues.get(key)
            if queue is None:
                queue = deque()
                self._queues[key] = queue
                queue.append((func, args, future))
                self._pool.submit(self._drain, key)
            else:
                queue.append((func, args, future))
        return future

    def _drain(self, key: Hashable) -> None:
        while True:
            with self._lock:
                queue = self._queues[key]
                if not queue:
                    del self._queues[key]
                    return
                func, args, future = queue[0]
            if future.set_running_or_notify_cancel():
                with self._lock:
                    self._executing += 1
                    self._peak_executing = max(self._peak_executing, self._executing)
                try:
                    result = func(*args)
                except BaseException as exc:  # noqa: BLE001 - delivered via the future
                    outcome, value = "error", exc
                else:
                    outcome, value = "ok", result
                # Counters first: by the time a caller observes the result,
                # the stats already account for its dispatch.
                with self._lock:
                    self._executing -= 1
                    self._total += 1
                if outcome == "ok":
                    future.set_result(value)
                else:
                    future.set_exception(value)
            with self._lock:
                queue.popleft()

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool (queued jobs still drain when ``wait`` is True)."""
        self._pool.shutdown(wait=wait)


@dataclass
class ConnectionStats:
    """Traffic counters of one client connection."""

    peer: str = ""
    frames_received: int = 0
    frames_sent: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    envelope_frames: int = 0
    control_frames: int = 0
    negotiated_version: int | None = None
    #: Requests admitted but not yet answered (shutdown only waits for
    #: connections with in-flight work).
    in_flight: int = 0
    #: Most requests this connection ever had in flight at once.
    peak_in_flight: int = 0

    @property
    def busy(self) -> bool:
        """True while at least one request is being served."""
        return self.in_flight > 0


class TcpServerStats:
    """Aggregate counters across the server's lifetime.

    A facade over a :class:`~repro.obs.MetricsRegistry`: the counters keep
    their historical names (attribute reads, :meth:`as_dict` keys and the
    ``stats`` control operation are unchanged), but every mutation now goes
    through a locked registry instrument.  The old dataclass was bumped
    with bare ``+=`` from responder tasks *and* dispatcher threads, so
    counts could be lost under concurrency.
    """

    #: Monotonic counters, in their historical ``as_dict`` order.
    _COUNTERS = (
        "connections_total",
        "frames_received",
        "frames_sent",
        "bytes_received",
        "bytes_sent",
        "envelope_frames",
        "control_frames",
        "framing_errors",
    )
    #: Set/adjustable values: live connections, the dispatch pool's size
    #: and its peak/total numbers (refreshed from the dispatcher).
    _GAUGES = (
        "connections_active",
        "dispatch_workers",
        "peak_concurrent_dispatch",
        "requests_dispatched",
    )
    _FIELD_ORDER = (
        "connections_total",
        "connections_active",
        "frames_received",
        "frames_sent",
        "bytes_received",
        "bytes_sent",
        "envelope_frames",
        "control_frames",
        "framing_errors",
        "dispatch_workers",
        "peak_concurrent_dispatch",
        "requests_dispatched",
    )

    def __init__(
        self, metrics: MetricsRegistry | None = None, dispatch_workers: int = 0
    ) -> None:
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        instruments = {}
        for name in self._COUNTERS:
            instruments[name] = self._metrics.counter(f"server_{name}")
        for name in self._GAUGES:
            instruments[name] = self._metrics.gauge(f"server_{name}")
        self._instruments = instruments
        instruments["dispatch_workers"].set(dispatch_workers)

    @property
    def metrics(self) -> MetricsRegistry:
        """The backing registry."""
        return self._metrics

    def inc(self, name: str, amount: int = 1) -> None:
        """Thread-safe increment of one counter (or gauge) by name."""
        self._instruments[name].inc(amount)

    def dec(self, name: str, amount: int = 1) -> None:
        """Thread-safe decrement of one gauge by name."""
        self._instruments[name].dec(amount)

    def set(self, name: str, value: int) -> None:
        """Set one gauge by name."""
        self._instruments[name].set(value)

    def __getattr__(self, name: str):
        # Preserve the dataclass read surface: stats.connections_total etc.
        try:
            return object.__getattribute__(self, "_instruments")[name].value
        except KeyError:
            raise AttributeError(name) from None

    def as_dict(self) -> dict:
        """JSON-able snapshot (what the ``stats`` control operation returns)."""
        return {
            name: self._instruments[name].value for name in self._FIELD_ORDER
        }

    def throughput_summary(self) -> str:
        """One-line human summary (printed by ``repro serve`` on shutdown)."""
        return (
            f"{self.connections_total} connection(s), "
            f"{self.frames_received} frame(s) in / {self.frames_sent} out, "
            f"{self.bytes_received} B in / {self.bytes_sent} B out, "
            f"{self.framing_errors} framing error(s), "
            f"dispatch {self.dispatch_workers} worker(s) / "
            f"peak {self.peak_concurrent_dispatch} concurrent"
        )


class DatabaseTcpServer:
    """One provider process serving many concurrent TCP clients."""

    def __init__(
        self,
        database_server: OutsourcedDatabaseServer | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
        dispatch_workers: int = DEFAULT_DISPATCH_WORKERS,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        trace_buffer_size: int = 256,
        slow_query_threshold: float = 1.0,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        self._database = (
            database_server if database_server is not None else OutsourcedDatabaseServer()
        )
        self._requested_host = host
        self._requested_port = port
        self._max_frame_size = max_frame_size
        self._max_in_flight = max_in_flight
        # Parallel across relations, FIFO within one: handle_message and the
        # storage backends are synchronous and per-relation not thread-safe,
        # so requests are serialized by the relation they touch while
        # different relations (or colocated shards) dispatch concurrently.
        self._dispatcher = KeyedSerialDispatcher(dispatch_workers)
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._connections: dict[asyncio.Task, ConnectionStats] = {}
        # Share the wrapped provider's registry when it has one, so the
        # metrics control operation answers with one unified snapshot.
        database_metrics = getattr(self._database, "metrics", None)
        self._metrics = (
            database_metrics
            if isinstance(database_metrics, MetricsRegistry)
            else MetricsRegistry()
        )
        self._stats = TcpServerStats(
            metrics=self._metrics, dispatch_workers=dispatch_workers
        )
        self._traces = TraceBuffer(trace_buffer_size)
        self._slow_queries = SlowQueryLog(slow_query_threshold)
        self._stopping = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def database_server(self) -> OutsourcedDatabaseServer:
        """The wrapped provider (storage, evaluators, audit log)."""
        return self._database

    @property
    def stats(self) -> TcpServerStats:
        """Aggregate traffic counters (dispatch numbers refreshed live)."""
        self._stats.set("peak_concurrent_dispatch", self._dispatcher.peak_concurrency)
        self._stats.set("requests_dispatched", self._dispatcher.total_dispatched)
        return self._stats

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry behind this server's (and its provider's) metrics."""
        return self._metrics

    @property
    def trace_buffer(self) -> TraceBuffer:
        """Completed server-side traces, keyed by trace id."""
        return self._traces

    @property
    def slow_queries(self) -> SlowQueryLog:
        """Requests slower than the configured threshold."""
        return self._slow_queries

    @property
    def dispatch_workers(self) -> int:
        """Size of the dispatch pool."""
        return self._dispatcher.workers

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; available once started."""
        if self._asyncio_server is None:
            raise RuntimeError("server is not started")
        sockname = self._asyncio_server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` for an ephemeral one)."""
        return self.address[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._asyncio_server is not None:
            raise RuntimeError("server is already started")
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self._requested_host, self._requested_port
        )

    async def stop(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain in-flight requests, then cut stragglers.

        Idle connections (blocked waiting for the peer's next frame) are
        closed immediately; only connections with in-flight requests get
        the grace period.
        """
        self._stopping = True
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        for task, connection in tuple(self._connections.items()):
            if not connection.busy:
                task.cancel()
        tasks = tuple(self._connections)
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=drain_timeout)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._dispatcher.shutdown(wait=True)

    async def serve_forever(self) -> None:
        """Start (when needed) and serve until cancelled."""
        if self._asyncio_server is None:
            await self.start()
        try:
            await self._asyncio_server.serve_forever()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        peername = writer.get_extra_info("peername")
        connection = ConnectionStats(peer=str(peername))
        if task is not None:
            self._connections[task] = connection
        self._stats.inc("connections_total")
        self._stats.inc("connections_active")
        decoder = FrameDecoder(self._max_frame_size)
        in_flight: set[asyncio.Task] = set()
        admission = asyncio.Semaphore(self._max_in_flight)
        try:
            fatal = False
            while not self._stopping and not fatal:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                try:
                    frames = decoder.feed(chunk)
                except FramingError as exc:
                    self._stats.inc("framing_errors")
                    await self._send_control(
                        writer, connection, {"ok": False, "error": str(exc)}
                    )
                    break
                for frame in frames:
                    connection.frames_received += 1
                    self._stats.inc("frames_received")
                    if not await self._admit_frame(
                        writer, connection, in_flight, admission, frame
                    ):
                        fatal = True
                        break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutdown cut this connection deliberately
        finally:
            try:
                # Let admitted requests finish and answer before the socket
                # closes; their dispatch jobs are already running or queued.
                if in_flight:
                    await asyncio.gather(*in_flight, return_exceptions=True)
            except asyncio.CancelledError:
                # Forced shutdown after the drain grace period: abandon the
                # stragglers (their dispatch results are discarded).
                for responder in tuple(in_flight):
                    responder.cancel()
            finally:
                self._stats.dec("connections_active")
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
                if task is not None:
                    self._connections.pop(task, None)

    async def _admit_frame(
        self,
        writer: asyncio.StreamWriter,
        connection: ConnectionStats,
        in_flight: set[asyncio.Task],
        admission: asyncio.Semaphore,
        frame: framing.Frame,
    ) -> bool:
        """Route one frame into dispatch; returns False to close the connection.

        Hello (and pre-hello violations) are answered inline; everything
        else is queued on the keyed dispatcher *in arrival order* -- which
        is what makes same-relation FIFO hold -- and answered by a
        per-request responder task whenever its dispatch completes.
        """
        frame_size = (
            len(frame.payload) + framing.LENGTH_PREFIX_SIZE + framing.FRAME_HEADER_SIZE
        )
        connection.bytes_received += frame_size
        self._stats.inc("bytes_received", frame_size)
        if frame.channel == CHANNEL_CONTROL:
            connection.control_frames += 1
            self._stats.inc("control_frames")
            try:
                request = json.loads(frame.payload.decode("utf-8"))
                if not isinstance(request, dict) or "op" not in request:
                    raise ValueError("control messages are objects with an 'op' field")
            except (ValueError, UnicodeDecodeError) as exc:
                await self._send_control(
                    writer,
                    connection,
                    {"ok": False, "error": f"malformed control frame: {exc}"},
                    correlation=frame.correlation,
                )
                return False
            op = request["op"]
            if op == "hello":
                return await self._serve_hello(
                    writer, connection, request, frame.correlation
                )
            if connection.negotiated_version is None:
                await self._send_control(
                    writer,
                    connection,
                    {"ok": False, "error": "the first frame must be a hello"},
                    correlation=frame.correlation,
                )
                return False
            relation = request.get("relation")
            key = ("rel", str(relation)) if relation is not None else ("global",)
            await admission.acquire()
            future = self._dispatcher.submit(key, self._control_operation, request)
            self._spawn_responder(
                in_flight,
                admission,
                connection,
                self._deliver_control(writer, connection, frame.correlation, op, future),
            )
            return True
        connection.envelope_frames += 1
        self._stats.inc("envelope_frames")
        if connection.negotiated_version is None:
            await self._send_control(
                writer,
                connection,
                {"ok": False, "error": "the first frame must be a hello"},
                correlation=frame.correlation,
            )
            return False
        try:
            # A structural peek -- O(header), the body is never copied here
            # -- learns the dispatch key; handle_message parses in full on
            # the worker.  Garbage that does not even frame is a protocol
            # violation, not a servable error: answer and close.
            _, _, relation_name = protocol.peek_envelope(frame.payload)
        except ProtocolError as exc:
            await self._send_control(
                writer,
                connection,
                {"ok": False, "error": str(exc)},
                correlation=frame.correlation,
            )
            return False
        await admission.acquire()
        future = self._dispatcher.submit(
            ("rel", relation_name),
            self._dispatch_envelope,
            protocol.peek_trace_id(frame.payload),
            relation_name,
            frame.payload,
            time.monotonic(),
        )
        self._spawn_responder(
            in_flight,
            admission,
            connection,
            self._deliver_envelope(writer, connection, frame.correlation, future),
        )
        return True

    def _spawn_responder(
        self,
        in_flight: set[asyncio.Task],
        admission: asyncio.Semaphore,
        connection: ConnectionStats,
        coroutine,
    ) -> None:
        connection.in_flight += 1
        connection.peak_in_flight = max(connection.peak_in_flight, connection.in_flight)
        task = asyncio.ensure_future(coroutine)
        in_flight.add(task)

        def _done(finished: asyncio.Task) -> None:
            in_flight.discard(finished)
            connection.in_flight -= 1
            admission.release()

        task.add_done_callback(_done)

    def _dispatch_envelope(
        self,
        trace_id: bytes | None,
        relation_name: str,
        payload: bytes,
        submitted_mono: float,
    ) -> bytes:
        """Run one envelope on a pool worker, with queue-wait accounting.

        Runs after the FIFO queue, so ``now - submitted_mono`` is the time
        the request spent waiting behind same-relation work.  When the
        envelope carries a v3 trace id the whole dispatch executes under
        that trace, producing the server-side span and feeding the trace
        buffer and slow-query log.
        """
        queue_wait = time.monotonic() - submitted_mono
        self._metrics.histogram(
            "server_dispatch_queue_seconds", relation=relation_name
        ).observe(queue_wait)
        if trace_id is None:
            return self._database.handle_message(payload)
        trace = Trace(trace_id)
        try:
            with use_trace(trace), trace.span(
                "server.dispatch",
                relation=relation_name,
                queue_wait_s=round(queue_wait, 6),
            ):
                return self._database.handle_message(payload)
        finally:
            self._traces.record(trace)
            self._slow_queries.observe(trace)

    async def _deliver_envelope(
        self,
        writer: asyncio.StreamWriter,
        connection: ConnectionStats,
        correlation: int,
        future: concurrent.futures.Future,
    ) -> None:
        try:
            response = await asyncio.wrap_future(future)
        except Exception as exc:  # noqa: BLE001 - a dispatch bug must not kill siblings
            await self._send_control(
                writer,
                connection,
                {"ok": False, "error": f"internal dispatch failure: {exc}"},
                correlation=correlation,
            )
            return
        with contextlib.suppress(ConnectionError):
            await self._send(
                writer, connection, response, CHANNEL_ENVELOPE, correlation
            )

    async def _deliver_control(
        self,
        writer: asyncio.StreamWriter,
        connection: ConnectionStats,
        correlation: int,
        op: str,
        future: concurrent.futures.Future,
    ) -> None:
        try:
            response = await asyncio.wrap_future(future)
        except (ServerError, StorageError, EvaluatorDescriptionError, ProtocolError) as exc:
            response = {"ok": False, "error": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            response = {"ok": False, "error": f"malformed {op!r} request: {exc}"}
        except Exception as exc:  # noqa: BLE001 - a dispatch bug must not kill siblings
            response = {"ok": False, "error": f"internal dispatch failure: {exc}"}
        await self._send_control(writer, connection, response, correlation=correlation)

    async def _serve_hello(
        self,
        writer: asyncio.StreamWriter,
        connection: ConnectionStats,
        request: dict,
        correlation: int,
    ) -> bool:
        try:
            client_versions = [int(v) for v in request["versions"]]
            version = negotiate_version(
                client_versions, self._database.supported_protocol_versions
            )
        except (KeyError, TypeError, ValueError) as exc:
            await self._send_control(
                writer,
                connection,
                {"ok": False, "error": f"malformed hello: {exc}"},
                correlation=correlation,
            )
            return False
        except ProtocolError as exc:
            await self._send_control(
                writer,
                connection,
                {"ok": False, "error": str(exc)},
                correlation=correlation,
            )
            return False
        connection.negotiated_version = version
        await self._send_control(
            writer,
            connection,
            {
                "ok": True,
                "version": version,
                "versions": list(self._database.supported_protocol_versions),
                "server": SERVER_SOFTWARE,
                "max_frame_size": self._max_frame_size,
            },
            correlation=correlation,
        )
        return True

    # ------------------------------------------------------------------ #
    # Control operations (executed on the dispatch pool)
    # ------------------------------------------------------------------ #

    def _control_operation(self, request: dict) -> dict:
        op = request["op"]
        if op == "ping":
            return {"ok": True}
        if op == "relation-names":
            return {"ok": True, "names": list(self._database.relation_names)}
        if op == "register-evaluator":
            evaluator = build_evaluator(request["evaluator"])
            self._database.register_evaluator(str(request["relation"]), evaluator)
            return {"ok": True}
        if op == "stored-relation":
            from repro.outsourcing.protocol import encode_encrypted_relation

            encoded = encode_encrypted_relation(
                self._database.stored_relation(str(request["relation"]))
            )
            return {"ok": True, "relation_b64": base64.b64encode(encoded).decode("ascii")}
        if op == "tuple-count":
            return {
                "ok": True,
                "count": self._database.tuple_count(str(request["relation"])),
            }
        if op == "drop-relation":
            self._database.drop_relation(str(request["relation"]))
            return {"ok": True}
        if op == "stats":
            report = {
                "ok": True,
                "stats": self.stats.as_dict(),
                "audit": self._database.audit_log.summary(),
                "relations": list(self._database.relation_names),
            }
            index_stats = getattr(self._database, "index_stats", None)
            if index_stats is not None:
                report["indexes"] = index_stats()
            return report
        if op == "metrics":
            snapshot_fn = getattr(self._database, "metrics_snapshot", None)
            snapshot = (
                snapshot_fn() if snapshot_fn is not None else self._metrics.snapshot()
            )
            if request.get("format") == "prometheus":
                return {"ok": True, "prometheus": render_prometheus(snapshot)}
            return {"ok": True, "metrics": snapshot}
        if op == "trace":
            trace_hex = request.get("trace_id")
            if trace_hex:
                return {"ok": True, "trace": self._traces.get(bytes.fromhex(str(trace_hex)))}
            limit = int(request.get("limit", 10))
            return {
                "ok": True,
                "traces": self._traces.recent(limit),
                "slow": self._slow_queries.entries(limit),
            }
        raise ServerError(f"unknown control operation {op!r}")

    # ------------------------------------------------------------------ #
    # Frame output
    # ------------------------------------------------------------------ #

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        connection: ConnectionStats,
        payload: bytes,
        channel: int,
        correlation: int = 0,
    ) -> None:
        frame = framing.encode_frame(
            payload,
            channel=channel,
            correlation=correlation,
            max_frame_size=self._max_frame_size,
        )
        connection.frames_sent += 1
        connection.bytes_sent += len(frame)
        self._stats.inc("frames_sent")
        self._stats.inc("bytes_sent", len(frame))
        # write() appends the whole frame to the transport buffer in one
        # synchronous step, so concurrent responder tasks cannot interleave
        # partial frames; drain() only applies backpressure.
        writer.write(frame)
        await writer.drain()

    async def _send_control(
        self,
        writer: asyncio.StreamWriter,
        connection: ConnectionStats,
        message: dict,
        correlation: int = 0,
    ) -> None:
        with contextlib.suppress(ConnectionError):
            await self._send(
                writer,
                connection,
                json.dumps(message).encode("utf-8"),
                CHANNEL_CONTROL,
                correlation,
            )


class ThreadedTcpServer:
    """A :class:`DatabaseTcpServer` on a background thread's event loop.

    The blocking-world harness for tests, benchmarks and embedding: enter the
    context manager, connect to :attr:`port`, leave and the server shuts
    down gracefully.
    """

    def __init__(self, *args, **kwargs) -> None:
        self.server = DatabaseTcpServer(*args, **kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        """The bound port."""
        return self.server.port

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return self.server.address

    def start(self) -> "ThreadedTcpServer":
        """Start the loop thread and wait until the socket is bound."""
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise RuntimeError("TCP server failed to start") from self._startup_error
        return self

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Stop the server and join the loop thread."""
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain_timeout), self._loop
        )
        try:
            future.result(timeout=drain_timeout + 5.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
            self._loop = None
            self._thread = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to the caller
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def __enter__(self) -> "ThreadedTcpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
