"""Asyncio TCP front-end of the untrusted service provider.

:class:`DatabaseTcpServer` puts an
:class:`~repro.outsourcing.server.OutsourcedDatabaseServer` behind a
listening socket.  Each accepted connection is an independent asyncio task
that speaks the framing of :mod:`repro.net.framing`:

* the connection opens with a mandatory **hello** control exchange that
  negotiates the protocol version
  (:func:`repro.outsourcing.protocol.negotiate_version`) and advertises the
  server's frame-size limit;
* **envelope** frames are forwarded verbatim to
  :meth:`~repro.outsourcing.server.OutsourcedDatabaseServer.handle_message`
  on a dedicated dispatch thread (one request at a time, FIFO -- the
  storage backends are not thread-safe -- but the event loop keeps every
  other connection responsive while a query runs);
* **control** frames carry the management operations the in-process API
  performs as direct method calls: evaluator deployment (by public-parameter
  description, see :mod:`repro.net.evaluators`), relation listing, drops,
  counts and stats.

Byte-level violations -- garbage that does not frame, oversized length
prefixes, envelope bytes that do not parse -- are answered with one control
error frame and a closed connection: a peer that cannot frame correctly
cannot be trusted with further state.  Failures *inside* a well-framed
request stay inside the protocol (``ERROR`` envelopes / ``ok: false``
control responses) and the connection lives on.

The server counts per-connection and aggregate traffic
(:class:`ConnectionStats` / :class:`TcpServerStats`); ``repro serve`` prints
the aggregate on shutdown and the ``stats`` control operation exposes it to
remote clients.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.net import framing
from repro.net.evaluators import EvaluatorDescriptionError, build_evaluator
from repro.net.framing import (
    CHANNEL_CONTROL,
    CHANNEL_ENVELOPE,
    DEFAULT_MAX_FRAME_SIZE,
    FrameDecoder,
    FramingError,
)
from repro.outsourcing.protocol import ProtocolError, negotiate_version
from repro.outsourcing.server import OutsourcedDatabaseServer, ServerError
from repro.outsourcing.storage import StorageError

#: Identifier the server announces in its hello response.
SERVER_SOFTWARE = "repro-provider"


@dataclass
class ConnectionStats:
    """Traffic counters of one client connection."""

    peer: str = ""
    frames_received: int = 0
    frames_sent: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    envelope_frames: int = 0
    control_frames: int = 0
    negotiated_version: int | None = None
    #: True while a frame is being served (shutdown only waits for these).
    busy: bool = False


@dataclass
class TcpServerStats:
    """Aggregate counters across the server's lifetime."""

    connections_total: int = 0
    connections_active: int = 0
    frames_received: int = 0
    frames_sent: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    envelope_frames: int = 0
    control_frames: int = 0
    framing_errors: int = 0

    def as_dict(self) -> dict:
        """JSON-able snapshot (what the ``stats`` control operation returns)."""
        return dict(self.__dict__)

    def throughput_summary(self) -> str:
        """One-line human summary (printed by ``repro serve`` on shutdown)."""
        return (
            f"{self.connections_total} connection(s), "
            f"{self.frames_received} frame(s) in / {self.frames_sent} out, "
            f"{self.bytes_received} B in / {self.bytes_sent} B out, "
            f"{self.framing_errors} framing error(s)"
        )


class DatabaseTcpServer:
    """One provider process serving many concurrent TCP clients."""

    def __init__(
        self,
        database_server: OutsourcedDatabaseServer | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
    ) -> None:
        self._database = (
            database_server if database_server is not None else OutsourcedDatabaseServer()
        )
        self._requested_host = host
        self._requested_port = port
        self._max_frame_size = max_frame_size
        # handle_message and the storage backends are synchronous and not
        # thread-safe, so dispatch is a single worker thread: the event loop
        # (and with it every other connection's I/O) stays responsive while
        # a query runs, and requests execute one at a time in FIFO order.
        # True dispatch parallelism needs per-relation locking first -- the
        # natural follow-up once relations shard across backends.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-net-dispatch"
        )
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._connections: dict[asyncio.Task, ConnectionStats] = {}
        self._stats = TcpServerStats()
        self._stopping = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def database_server(self) -> OutsourcedDatabaseServer:
        """The wrapped provider (storage, evaluators, audit log)."""
        return self._database

    @property
    def stats(self) -> TcpServerStats:
        """Aggregate traffic counters."""
        return self._stats

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; available once started."""
        if self._asyncio_server is None:
            raise RuntimeError("server is not started")
        sockname = self._asyncio_server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` for an ephemeral one)."""
        return self.address[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._asyncio_server is not None:
            raise RuntimeError("server is already started")
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self._requested_host, self._requested_port
        )

    async def stop(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain in-flight requests, then cut stragglers.

        Idle connections (blocked waiting for the peer's next frame) are
        closed immediately; only connections mid-request get the grace
        period.
        """
        self._stopping = True
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        for task, connection in tuple(self._connections.items()):
            if not connection.busy:
                task.cancel()
        tasks = tuple(self._connections)
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=drain_timeout)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._executor.shutdown(wait=True)

    async def serve_forever(self) -> None:
        """Start (when needed) and serve until cancelled."""
        if self._asyncio_server is None:
            await self.start()
        try:
            await self._asyncio_server.serve_forever()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        peername = writer.get_extra_info("peername")
        connection = ConnectionStats(peer=str(peername))
        if task is not None:
            self._connections[task] = connection
        self._stats.connections_total += 1
        self._stats.connections_active += 1
        decoder = FrameDecoder(self._max_frame_size)
        try:
            while not self._stopping:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                try:
                    frames = decoder.feed(chunk)
                except FramingError as exc:
                    self._stats.framing_errors += 1
                    await self._send_control(
                        writer, connection, {"ok": False, "error": str(exc)}
                    )
                    break
                fatal = False
                connection.busy = True
                try:
                    for frame in frames:
                        connection.frames_received += 1
                        self._stats.frames_received += 1
                        if not await self._serve_frame(writer, connection, frame):
                            fatal = True
                            break
                finally:
                    connection.busy = False
                if fatal:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutdown cut this connection deliberately
        finally:
            self._stats.connections_active -= 1
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            if task is not None:
                self._connections.pop(task, None)

    async def _serve_frame(
        self,
        writer: asyncio.StreamWriter,
        connection: ConnectionStats,
        frame: framing.Frame,
    ) -> bool:
        """Answer one frame; returns False when the connection must close."""
        frame_size = len(frame.payload) + framing.LENGTH_PREFIX_SIZE + 1
        connection.bytes_received += frame_size
        self._stats.bytes_received += frame_size
        if frame.channel == CHANNEL_CONTROL:
            connection.control_frames += 1
            self._stats.control_frames += 1
            return await self._serve_control(writer, connection, frame.payload)
        connection.envelope_frames += 1
        self._stats.envelope_frames += 1
        if connection.negotiated_version is None:
            await self._send_control(
                writer,
                connection,
                {"ok": False, "error": "the first frame must be a hello"},
            )
            return False
        try:
            response = await self._dispatch(
                self._database.handle_message, frame.payload
            )
        except ProtocolError as exc:
            # handle_message could not even frame the request (garbage
            # envelope): protocol violation, not a servable error.
            await self._send_control(writer, connection, {"ok": False, "error": str(exc)})
            return False
        await self._send(writer, connection, response, CHANNEL_ENVELOPE)
        return True

    async def _serve_control(
        self, writer: asyncio.StreamWriter, connection: ConnectionStats, payload: bytes
    ) -> bool:
        try:
            request = json.loads(payload.decode("utf-8"))
            if not isinstance(request, dict) or "op" not in request:
                raise ValueError("control messages are objects with an 'op' field")
        except (ValueError, UnicodeDecodeError) as exc:
            await self._send_control(
                writer, connection, {"ok": False, "error": f"malformed control frame: {exc}"}
            )
            return False
        op = request["op"]
        if op == "hello":
            return await self._serve_hello(writer, connection, request)
        if connection.negotiated_version is None:
            await self._send_control(
                writer,
                connection,
                {"ok": False, "error": "the first frame must be a hello"},
            )
            return False
        try:
            response = await self._dispatch(self._control_operation, request)
        except (ServerError, StorageError, EvaluatorDescriptionError, ProtocolError) as exc:
            response = {"ok": False, "error": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            response = {"ok": False, "error": f"malformed {op!r} request: {exc}"}
        await self._send_control(writer, connection, response)
        return True

    async def _serve_hello(
        self, writer: asyncio.StreamWriter, connection: ConnectionStats, request: dict
    ) -> bool:
        try:
            client_versions = [int(v) for v in request["versions"]]
            version = negotiate_version(
                client_versions, self._database.supported_protocol_versions
            )
        except (KeyError, TypeError, ValueError) as exc:
            await self._send_control(
                writer, connection, {"ok": False, "error": f"malformed hello: {exc}"}
            )
            return False
        except ProtocolError as exc:
            await self._send_control(writer, connection, {"ok": False, "error": str(exc)})
            return False
        connection.negotiated_version = version
        await self._send_control(
            writer,
            connection,
            {
                "ok": True,
                "version": version,
                "versions": list(self._database.supported_protocol_versions),
                "server": SERVER_SOFTWARE,
                "max_frame_size": self._max_frame_size,
            },
        )
        return True

    # ------------------------------------------------------------------ #
    # Control operations (executed on the dispatch pool, under the lock)
    # ------------------------------------------------------------------ #

    def _control_operation(self, request: dict) -> dict:
        op = request["op"]
        if op == "ping":
            return {"ok": True}
        if op == "relation-names":
            return {"ok": True, "names": list(self._database.relation_names)}
        if op == "register-evaluator":
            evaluator = build_evaluator(request["evaluator"])
            self._database.register_evaluator(str(request["relation"]), evaluator)
            return {"ok": True}
        if op == "stored-relation":
            from repro.outsourcing.protocol import encode_encrypted_relation

            encoded = encode_encrypted_relation(
                self._database.stored_relation(str(request["relation"]))
            )
            return {"ok": True, "relation_b64": base64.b64encode(encoded).decode("ascii")}
        if op == "tuple-count":
            return {
                "ok": True,
                "count": self._database.tuple_count(str(request["relation"])),
            }
        if op == "drop-relation":
            self._database.drop_relation(str(request["relation"]))
            return {"ok": True}
        if op == "stats":
            return {
                "ok": True,
                "stats": self._stats.as_dict(),
                "audit": self._database.audit_log.summary(),
                "relations": list(self._database.relation_names),
            }
        raise ServerError(f"unknown control operation {op!r}")

    async def _dispatch(self, func, argument):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, func, argument)

    # ------------------------------------------------------------------ #
    # Frame output
    # ------------------------------------------------------------------ #

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        connection: ConnectionStats,
        payload: bytes,
        channel: int,
    ) -> None:
        frame = framing.encode_frame(
            payload, channel=channel, max_frame_size=self._max_frame_size
        )
        connection.frames_sent += 1
        connection.bytes_sent += len(frame)
        self._stats.frames_sent += 1
        self._stats.bytes_sent += len(frame)
        writer.write(frame)
        await writer.drain()

    async def _send_control(
        self, writer: asyncio.StreamWriter, connection: ConnectionStats, message: dict
    ) -> None:
        with contextlib.suppress(ConnectionError):
            await self._send(
                writer,
                connection,
                json.dumps(message).encode("utf-8"),
                CHANNEL_CONTROL,
            )


class ThreadedTcpServer:
    """A :class:`DatabaseTcpServer` on a background thread's event loop.

    The blocking-world harness for tests, benchmarks and embedding: enter the
    context manager, connect to :attr:`port`, leave and the server shuts
    down gracefully.
    """

    def __init__(self, *args, **kwargs) -> None:
        self.server = DatabaseTcpServer(*args, **kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        """The bound port."""
        return self.server.port

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return self.server.address

    def start(self) -> "ThreadedTcpServer":
        """Start the loop thread and wait until the socket is bound."""
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise RuntimeError("TCP server failed to start") from self._startup_error
        return self

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Stop the server and join the loop thread."""
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain_timeout), self._loop
        )
        try:
            future.result(timeout=drain_timeout + 5.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
            self._loop = None
            self._thread = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to the caller
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def __enter__(self) -> "ThreadedTcpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
