"""Sans-IO client side of the framed transport.

The blocking :class:`~repro.net.client.RemoteConnection` and the asyncio
:class:`~repro.net.aio.AsyncRemoteConnection` speak exactly the same wire
protocol -- correlation-id allocation, request/response pairing, the hello
handshake, control-frame JSON -- and differ only in how bytes reach the
socket.  This module is the shared core: it owns every protocol decision
and performs no I/O, so both frontends are thin shims and the pipelining
semantics are tested once.

:class:`ClientChannel` is the heart of it.  ``send`` allocates a fresh
correlation id for an outgoing request and remembers the caller's opaque
*context* (the blocking client passes a sentinel, the asyncio client passes
the future awaiting the response); ``receive`` absorbs raw socket bytes and
yields ``(context, frame)`` pairs for every response that matches a pending
request.  A response whose correlation id matches nothing -- the reply to a
request the caller already cancelled, e.g. a scatter timeout -- is counted
in :attr:`ClientChannel.orphan_frames` and dropped: late answers from a
slow provider must never be delivered to the wrong caller.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Sequence

from repro.net.framing import (
    CHANNEL_CONTROL,
    DEFAULT_MAX_FRAME_SIZE,
    Frame,
    FrameDecoder,
    FramingError,
    MAX_CORRELATION_ID,
    encode_frame,
)


class WireProtocolError(FramingError):
    """The peer sent bytes that violate the client-side channel rules."""


class ClientChannel:
    """Correlated request/response multiplexing over one connection (sans-IO).

    The channel tracks every in-flight request by its correlation id.  It is
    not thread-safe by itself: the blocking client serializes access through
    its connection object, the asyncio client confines it to the event loop.
    """

    def __init__(self, max_frame_size: int = DEFAULT_MAX_FRAME_SIZE) -> None:
        self._max_frame_size = max_frame_size
        self._decoder = FrameDecoder(max_frame_size)
        self._next_correlation = 1
        self._pending: dict[int, Any] = {}
        self._orphans = 0
        self._fault: str | None = None

    @property
    def pending_count(self) -> int:
        """Requests sent but not yet answered (or cancelled)."""
        return len(self._pending)

    @property
    def orphan_frames(self) -> int:
        """Responses that arrived after their request was cancelled."""
        return self._orphans

    @property
    def fault(self) -> str | None:
        """A connection-fatal diagnostic the server broadcast before closing.

        The server answers byte-level violations it cannot attribute to a
        request (a frame that never decoded has no correlation id) with a
        control error on correlation 0 and then hangs up; frontends fold
        this text into the connection-failure error they raise, so the
        caller sees *why* the provider cut them off instead of a bare EOF.
        """
        return self._fault

    def send(
        self, payload: bytes, channel: int, context: Any = None
    ) -> tuple[int, bytes]:
        """Register one outgoing request; returns ``(correlation, wire bytes)``.

        ``context`` is handed back verbatim when the matching response
        arrives (or when the connection fails, via :meth:`fail_all`).
        """
        correlation = self._allocate_correlation()
        self._pending[correlation] = context
        wire = encode_frame(
            payload,
            channel=channel,
            correlation=correlation,
            max_frame_size=self._max_frame_size,
        )
        return correlation, wire

    def receive(self, data: bytes) -> list[tuple[Any, Frame]]:
        """Absorb socket bytes; returns the matched ``(context, frame)`` pairs.

        Raises :class:`~repro.net.framing.FramingError` on byte-level
        garbage.  Orphaned responses (no pending request under that
        correlation id) are counted and dropped.
        """
        matched = []
        for frame in self._decoder.feed(data):
            try:
                context = self._pending.pop(frame.correlation)
            except KeyError:
                if frame.correlation == 0 and frame.channel == CHANNEL_CONTROL:
                    # Unaddressed control frame: a transport-fatal
                    # diagnostic, not an orphaned answer.
                    try:
                        self._fault = control_error(decode_control_response(frame.payload))
                    except WireProtocolError:
                        self._fault = "unreadable provider fault"
                else:
                    self._orphans += 1
                continue
            matched.append((context, frame))
        return matched

    def cancel(self, correlation: int) -> Any:
        """Forget a pending request (its late response becomes an orphan)."""
        return self._pending.pop(correlation, None)

    def fail_all(self) -> list[Any]:
        """Connection died: pop and return every pending request's context."""
        contexts = list(self._pending.values())
        self._pending.clear()
        return contexts

    def _allocate_correlation(self) -> int:
        # Wrap at 32 bits, skipping ids still in flight (a pathological
        # 2**32 concurrent requests would spin here; real fleets top out at
        # a few hundred).
        while True:
            correlation = self._next_correlation
            self._next_correlation = (
                1 if correlation >= MAX_CORRELATION_ID else correlation + 1
            )
            if correlation not in self._pending:
                return correlation


# --------------------------------------------------------------------------- #
# The hello handshake and control-frame JSON (shared by both frontends)
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class ServerHello:
    """What the provider announced in its hello response."""

    version: int
    versions: tuple[int, ...]
    software: str
    max_frame_size: int


def encode_hello(client_versions: Sequence[int]) -> bytes:
    """The hello control request opening every connection."""
    return encode_control_request("hello", versions=[int(v) for v in client_versions])


def encode_control_request(op: str, **fields) -> bytes:
    """Serialize one control-channel request."""
    return json.dumps({"op": op, **fields}).encode("utf-8")


def decode_control_response(payload: bytes) -> dict:
    """Parse a control-channel response object.

    Raises :class:`WireProtocolError` on non-JSON payloads; protocol-level
    failures (``ok: false``) are returned, not raised -- whether they are
    errors is the caller's business.
    """
    try:
        response = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireProtocolError(f"malformed control response: {exc}") from exc
    if not isinstance(response, dict):
        raise WireProtocolError("malformed control response: not an object")
    return response


def control_error(response: dict) -> str:
    """The error text of a failed (``ok: false``) control response."""
    return str(response.get("error", "unspecified provider error"))


def decode_hello(response: dict, fallback_max_frame_size: int) -> ServerHello:
    """Extract the negotiated session parameters from an ``ok`` hello."""
    try:
        return ServerHello(
            version=int(response["version"]),
            versions=tuple(int(v) for v in response.get("versions", ())),
            software=str(response.get("server", "unknown")),
            max_frame_size=int(
                response.get("max_frame_size", fallback_max_frame_size)
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireProtocolError(f"malformed hello response: {exc}") from exc
