"""Remote deployment of server evaluators.

The in-process API hands the provider evaluator *objects*
(:meth:`~repro.core.dph.DatabasePrivacyHomomorphism.server_evaluator`); a
remote provider can only receive *descriptions*.  Because every evaluator in
the reproduction is constructed from public parameters alone (that is the
whole point of the trust boundary -- see
:class:`~repro.core.dph.ServerEvaluator`), a description is a small JSON
object: a ``type`` tag plus the constructor parameters.

The codec is an explicit allowlist, not reflection: the provider will only
instantiate evaluator classes registered here, so a hostile client cannot
name arbitrary importable code.  New evaluator families register themselves
with :func:`register_evaluator_type`.
"""

from __future__ import annotations

from typing import Callable

from repro.core.construction import SearchableServerEvaluator
from repro.core.dph import DphError, ServerEvaluator
from repro.core.variable_length import VariableWidthServerEvaluator
from repro.schemes.base import FieldMatchEvaluator


class EvaluatorDescriptionError(Exception):
    """An evaluator description could not be produced or rebuilt."""


_BUILDERS: dict[str, Callable[[dict], ServerEvaluator]] = {}


def register_evaluator_type(
    type_tag: str, builder: Callable[[dict], ServerEvaluator]
) -> None:
    """Allowlist an evaluator family for remote deployment."""
    _BUILDERS[type_tag] = builder


def describe_evaluator(evaluator: ServerEvaluator) -> dict:
    """The JSON-able description of an evaluator, validated for round-tripping."""
    try:
        description = evaluator.describe()
    except DphError as exc:
        raise EvaluatorDescriptionError(str(exc)) from exc
    type_tag = description.get("type")
    if type_tag not in _BUILDERS:
        raise EvaluatorDescriptionError(
            f"evaluator type {type_tag!r} is not registered for remote deployment"
        )
    return description


def build_evaluator(description: dict) -> ServerEvaluator:
    """Reconstruct an evaluator at the provider from its description."""
    if not isinstance(description, dict):
        raise EvaluatorDescriptionError("evaluator description must be an object")
    type_tag = description.get("type")
    builder = _BUILDERS.get(type_tag)
    if builder is None:
        raise EvaluatorDescriptionError(
            f"evaluator type {type_tag!r} is not registered for remote deployment"
        )
    try:
        return builder(description)
    except EvaluatorDescriptionError:
        raise
    except Exception as exc:
        raise EvaluatorDescriptionError(
            f"malformed {type_tag!r} evaluator description: {exc}"
        ) from exc


def _build_searchable(description: dict) -> SearchableServerEvaluator:
    return SearchableServerEvaluator(
        backend=str(description["backend"]),
        word_length=int(description["word_length"]),
        check_length=int(description["check_length"]),
        entry_length=int(description["entry_length"]),
    )


def _build_field_match(description: dict) -> FieldMatchEvaluator:
    return FieldMatchEvaluator(str(description["scheme_name"]))


def _build_variable_width(description: dict) -> VariableWidthServerEvaluator:
    parameters = tuple(
        (int(word_length), int(check_length))
        for word_length, check_length in description["attribute_parameters"]
    )
    return VariableWidthServerEvaluator(parameters)


register_evaluator_type("searchable", _build_searchable)
register_evaluator_type("field-match", _build_field_match)
register_evaluator_type("variable-width", _build_variable_width)
