"""``repro.net`` -- the TCP serving layer of the outsourced database.

Until this subsystem existed, client (Alex) and provider (Eve) lived in one
process: :meth:`~repro.outsourcing.server.OutsourcedDatabaseServer.handle_message`
already spoke byte-level protocol frames, but nothing carried them across a
machine boundary.  ``repro.net`` is that missing transport, in three layers:

**Framing** (:mod:`repro.net.framing`)
    Length-prefixed frames over a byte stream, with a strict size ceiling
    and eager rejection of truncated, oversized or garbage input.  A
    one-byte channel tag multiplexes *envelope* frames (opaque protocol
    v1/v2 messages, exactly the bytes ``handle_message`` consumes) and
    *control* frames (JSON session management) on one connection, and a
    4-byte **correlation id** pairs every response to its request so a
    connection is a pipeline: many requests in flight, answered in
    whatever order dispatch completes.  The decoder is sans-IO, shared by
    every endpoint.

**Provider side** (:mod:`repro.net.server`)
    :class:`~repro.net.server.DatabaseTcpServer`: an asyncio server hosting
    one :class:`~repro.outsourcing.server.OutsourcedDatabaseServer` for many
    concurrent connections.  Each connection starts with a hello exchange
    that negotiates the protocol version; envelope dispatch is parallel
    across relations and FIFO within one
    (:class:`~repro.net.server.KeyedSerialDispatcher`), so a heavy scan of
    one relation blocks neither other connections' I/O nor other
    relations' requests; shutdown drains in-flight requests.
    Per-connection and aggregate stats (including the dispatch parallelism
    achieved) are kept, and ``repro serve`` (see :mod:`repro.cli`) runs the
    whole thing as a standalone process over any registered storage
    backend.

**Client side** (:mod:`repro.net.client` / :mod:`repro.net.aio`)
    One sans-IO protocol core (:mod:`repro.net.wire`) under two frontends
    satisfying the same duck-type
    :class:`~repro.api.EncryptedDatabase` and
    :class:`~repro.outsourcing.client.OutsourcingClient` already use:
    :class:`~repro.net.client.RemoteServerProxy`, a blocking proxy with a
    bounded connection pool (``connect("tcp://host:port")``), and
    :class:`~repro.net.aio.AsyncRemoteServerProxy`, which multiplexes any
    number of in-flight requests over **one** pipelined asyncio connection
    (``connect("tcp://host:port?async=1")``).  Both retry a dead
    connection once with at-most-once semantics for non-idempotent
    operations.

Evaluator deployment is the one operation that cannot ship objects across
the wire; :mod:`repro.net.evaluators` serializes evaluators as allowlisted
public-parameter descriptions instead -- the provider reconstructs the
keyless code locally, and key material never has a representation on the
wire.

Trust boundary: the transport moves exactly the bytes the in-process path
already produced.  Eve's view over TCP is Eve's view in-process plus
traffic metadata (frame sizes and timing), which the paper's model already
concedes to her.
"""

from repro.net.aio import (
    AsyncRemoteConnection,
    AsyncRemoteServerProxy,
    EventLoopThread,
)
from repro.net.client import (
    ConnectionLostError,
    ConnectionPool,
    RemoteConnection,
    RemoteError,
    RemoteProxyBase,
    RemoteServerProxy,
    parse_tcp_options,
    parse_tcp_url,
)
from repro.net.evaluators import (
    EvaluatorDescriptionError,
    build_evaluator,
    describe_evaluator,
    register_evaluator_type,
)
from repro.net.framing import (
    CHANNEL_CONTROL,
    CHANNEL_ENVELOPE,
    DEFAULT_MAX_FRAME_SIZE,
    FRAME_HEADER_SIZE,
    Frame,
    FrameDecoder,
    FramingError,
    OversizedFrameError,
    TruncatedFrameError,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.net.server import (
    ConnectionStats,
    DatabaseTcpServer,
    KeyedSerialDispatcher,
    TcpServerStats,
    ThreadedTcpServer,
)
from repro.net.wire import ClientChannel, ServerHello

__all__ = [
    "AsyncRemoteConnection",
    "AsyncRemoteServerProxy",
    "EventLoopThread",
    "ConnectionLostError",
    "ConnectionPool",
    "RemoteConnection",
    "RemoteError",
    "RemoteProxyBase",
    "RemoteServerProxy",
    "parse_tcp_options",
    "parse_tcp_url",
    "EvaluatorDescriptionError",
    "build_evaluator",
    "describe_evaluator",
    "register_evaluator_type",
    "CHANNEL_CONTROL",
    "CHANNEL_ENVELOPE",
    "DEFAULT_MAX_FRAME_SIZE",
    "FRAME_HEADER_SIZE",
    "Frame",
    "FrameDecoder",
    "FramingError",
    "OversizedFrameError",
    "TruncatedFrameError",
    "encode_frame",
    "recv_frame",
    "send_frame",
    "ConnectionStats",
    "DatabaseTcpServer",
    "KeyedSerialDispatcher",
    "TcpServerStats",
    "ThreadedTcpServer",
    "ClientChannel",
    "ServerHello",
]
