"""``repro.net`` -- the TCP serving layer of the outsourced database.

Until this subsystem existed, client (Alex) and provider (Eve) lived in one
process: :meth:`~repro.outsourcing.server.OutsourcedDatabaseServer.handle_message`
already spoke byte-level protocol frames, but nothing carried them across a
machine boundary.  ``repro.net`` is that missing transport, in three layers:

**Framing** (:mod:`repro.net.framing`)
    Length-prefixed frames over a byte stream, with a strict size ceiling
    and eager rejection of truncated, oversized or garbage input.  A
    one-byte channel tag multiplexes *envelope* frames (opaque protocol
    v1/v2 messages, exactly the bytes ``handle_message`` consumes) and
    *control* frames (JSON session management) on one connection.  The
    decoder is sans-IO, shared by both endpoints.

**Provider side** (:mod:`repro.net.server`)
    :class:`~repro.net.server.DatabaseTcpServer`: an asyncio server hosting
    one :class:`~repro.outsourcing.server.OutsourcedDatabaseServer` for many
    concurrent connections.  Each connection starts with a hello exchange
    that negotiates the protocol version; envelope dispatch runs on a
    dedicated worker thread so a heavy query never blocks other
    connections' I/O; shutdown drains in-flight requests.  Per-connection and aggregate stats are kept,
    and ``repro serve`` (see :mod:`repro.cli`) runs the whole thing as a
    standalone process over any registered storage backend.

**Client side** (:mod:`repro.net.client`)
    :class:`~repro.net.client.RemoteServerProxy`: a blocking proxy with a
    bounded connection pool that satisfies the same duck-type
    :class:`~repro.api.EncryptedDatabase` and
    :class:`~repro.outsourcing.client.OutsourcingClient` already use, so
    ``EncryptedDatabase.connect("tcp://host:port")`` transparently targets
    a remote provider.  Dead connections (provider restarts) are retried
    once on a fresh socket.

Evaluator deployment is the one operation that cannot ship objects across
the wire; :mod:`repro.net.evaluators` serializes evaluators as allowlisted
public-parameter descriptions instead -- the provider reconstructs the
keyless code locally, and key material never has a representation on the
wire.

Trust boundary: the transport moves exactly the bytes the in-process path
already produced.  Eve's view over TCP is Eve's view in-process plus
traffic metadata (frame sizes and timing), which the paper's model already
concedes to her.
"""

from repro.net.client import (
    ConnectionLostError,
    ConnectionPool,
    RemoteConnection,
    RemoteError,
    RemoteServerProxy,
    parse_tcp_url,
)
from repro.net.evaluators import (
    EvaluatorDescriptionError,
    build_evaluator,
    describe_evaluator,
    register_evaluator_type,
)
from repro.net.framing import (
    CHANNEL_CONTROL,
    CHANNEL_ENVELOPE,
    DEFAULT_MAX_FRAME_SIZE,
    Frame,
    FrameDecoder,
    FramingError,
    OversizedFrameError,
    TruncatedFrameError,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.net.server import (
    ConnectionStats,
    DatabaseTcpServer,
    TcpServerStats,
    ThreadedTcpServer,
)

__all__ = [
    "ConnectionLostError",
    "ConnectionPool",
    "RemoteConnection",
    "RemoteError",
    "RemoteServerProxy",
    "parse_tcp_url",
    "EvaluatorDescriptionError",
    "build_evaluator",
    "describe_evaluator",
    "register_evaluator_type",
    "CHANNEL_CONTROL",
    "CHANNEL_ENVELOPE",
    "DEFAULT_MAX_FRAME_SIZE",
    "Frame",
    "FrameDecoder",
    "FramingError",
    "OversizedFrameError",
    "TruncatedFrameError",
    "encode_frame",
    "recv_frame",
    "send_frame",
    "ConnectionStats",
    "DatabaseTcpServer",
    "TcpServerStats",
    "ThreadedTcpServer",
]
