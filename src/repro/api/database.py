"""The :class:`EncryptedDatabase` session facade.

One object wraps the whole outsourcing stack of the paper: a master secret
(``K``), a registered scheme (``E``, ``Eq``, ``D``), an untrusted provider
and the versioned wire protocol between them.  Each table gets its own
scheme instance keyed with a sub-key derived from the master secret, so one
session can hold many relations while the user manages a single key.

Every tuple-level operation travels as protocol frames through
:meth:`~repro.outsourcing.server.OutsourcedDatabaseServer.handle_message`
(the same bytes a remote transport carries); session management --
evaluator deployment, :meth:`EncryptedDatabase.attach_table` /
:meth:`EncryptedDatabase.drop_table` and the debugging peeks
(:meth:`EncryptedDatabase.retrieve_all`) -- goes through the server
duck-type, which is either the in-process
:class:`~repro.outsourcing.server.OutsourcedDatabaseServer`, a
:class:`~repro.net.client.RemoteServerProxy` speaking the control channel
of :mod:`repro.net`, or a sharded fleet behind a
:class:`~repro.cluster.router.ShardRouter` (see
:meth:`EncryptedDatabase.connect` and the ``shards=`` form of
:meth:`EncryptedDatabase.open`).

Reads accept query AST nodes or SQL strings; SQL is routed to the right
table via the relation name in its ``FROM`` clause.  Deletes and updates
resolve the *true* matches client-side (decrypt, filter false positives)
and then address tuples by their public random ids with the v2
``DELETE_TUPLES`` message, so the provider never learns which plaintext
predicate drove the mutation.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass

from repro.cache import CacheError, ResultCache, coerce_cache_config
from repro.core.dph import DatabasePrivacyHomomorphism, EvaluationResult
from repro.crypto.keys import SecretKey
from repro.crypto.rng import RandomSource
from repro.index.client import TableIndexer
from repro.index.wire import (
    IndexLookupRequest,
    encode_index_delta,
    encode_index_lookup,
    encode_index_snapshot,
)
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    Trace,
    TraceBuffer,
    current_trace,
    merge_snapshots,
    new_trace_id,
    span as obs_span,
    use_trace,
)
from repro.outsourcing import protocol
from repro.outsourcing.client import SelectOutcome
from repro.outsourcing.protocol import (
    Message,
    MessageKind,
    MessageV2,
    PROTOCOL_V1,
    SUPPORTED_VERSIONS,
    negotiate_version,
)
from repro.outsourcing.server import OutsourcedDatabaseServer, ServerError
from repro.outsourcing.storage import StorageBackend
from repro.relational.errors import QueryError
from repro.relational.query import Projection, Query, selection_predicates
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.relational.sql import parse_sql
from repro.relational.tuples import RelationTuple
from repro.schemes import registry


class DatabaseError(Exception):
    """An :class:`EncryptedDatabase` operation failed."""


@dataclass(frozen=True)
class TableHandle:
    """One outsourced relation inside a session: its schema and scheme instance.

    ``indexer`` is present on indexed sessions only: the client-side half
    of the table's encrypted inverted index (see :mod:`repro.index`).
    """

    name: str
    schema: RelationSchema
    scheme: DatabasePrivacyHomomorphism
    indexer: TableIndexer | None = None


class EncryptedDatabase:
    """A keyed, multi-relation session against an untrusted provider."""

    def __init__(
        self,
        key: SecretKey,
        server: OutsourcedDatabaseServer,
        scheme: str,
        rng: RandomSource | None = None,
        scheme_options: dict | None = None,
        index: bool = False,
        cache=None,
    ) -> None:
        self._key = key
        self._server = server
        self._scheme_name = registry.resolve_name(scheme)
        self._rng = rng
        self._scheme_options = dict(scheme_options or {})
        self._tables: dict[str, TableHandle] = {}
        self._version = negotiate_version(
            SUPPORTED_VERSIONS, server.supported_protocol_versions
        )
        # Index maintenance needs the v2 index ops; a v1-only provider
        # silently negotiates the session back to plain scans.
        self._index_enabled = bool(index) and self._version >= protocol.PROTOCOL_V2
        #: Memoized "this provider cannot serve index ops" flag: set on the
        #: first ``cannot serve message kind`` error so a fleet of older
        #: servers costs one failed round trip, not one per operation.
        self._index_unsupported = False
        # The client-side observability plane: per-op latency histograms,
        # completed traces, and the slow-query log of this session.
        self._metrics = MetricsRegistry()
        self._trace_buffer = TraceBuffer()
        self._slow_queries = SlowQueryLog()
        self._last_trace_id: bytes | None = None
        # The client-side hot-key result cache (see repro.cache): keyed on
        # ciphertext query tokens, invalidated by this session's own writes.
        try:
            cache_config = coerce_cache_config(cache)
        except CacheError as exc:
            raise DatabaseError(str(exc)) from exc
        self._cache = (
            ResultCache(cache_config, metrics=self._metrics, tier="client")
            if cache_config is not None
            else None
        )

    @classmethod
    def open(
        cls,
        key: SecretKey | bytes | None = None,
        server: OutsourcedDatabaseServer | None = None,
        scheme: str = "swp",
        *,
        storage: StorageBackend | None = None,
        shards: list | None = None,
        replicas: int = 1,
        rng: RandomSource | None = None,
        scheme_options: dict | None = None,
        index: bool = False,
        cache=None,
    ) -> "EncryptedDatabase":
        """Open a session.

        Parameters
        ----------
        key:
            The master secret; generated freshly when omitted.
        server:
            The provider to talk to; an in-process one is created when
            omitted (optionally over ``storage``).
        scheme:
            Name (or alias) of a registered scheme; see
            :func:`repro.schemes.registry.available_schemes`.
        storage:
            Storage backend for an auto-created server.  Rejected when an
            explicit ``server`` is passed (configure that server directly).
        shards:
            Shard a logical database across several backends: a list of
            server objects and/or ``tcp://`` URLs wrapped in a
            :class:`~repro.cluster.router.ShardRouter`.  Mutually exclusive
            with ``server`` and ``storage``; build the router yourself for
            non-default cluster options (policy, timeouts, shard ids).
        replicas:
            Replication factor of a sharded session: every tuple is stored
            on this many shards, so reads stay complete with up to
            ``replicas - 1`` shards down.  Only valid together with
            ``shards``; defaults to 1 (no replication).
        rng:
            Randomness source handed to each table's scheme instance
            (seedable for reproducible experiments).
        scheme_options:
            Extra keyword options forwarded to the scheme factory.
        index:
            Maintain an encrypted inverted index per table (see
            :mod:`repro.index`): the session ships index snapshots and
            posting deltas through every DDL/DML operation and serves
            exact selects via ``INDEX_LOOKUP`` in O(result) provider
            work, falling back to the linear scan whenever the provider
            (or the negotiated protocol version) cannot serve it.
        cache:
            Keep a client-side result cache of this session's reads (see
            :mod:`repro.cache`): repeated hot queries are answered from
            memory without a provider round trip.  Keys are ciphertext
            query tokens; entries are invalidated by this session's own
            writes (and bounded by a TTL against writers this session
            cannot see).  ``True`` enables the defaults; an int sets the
            entry budget; a :class:`~repro.cache.CacheConfig` (or dict of
            its fields) sets everything.  Off by default.
        """
        if key is None:
            key = SecretKey.generate(rng=rng)
        elif isinstance(key, (bytes, bytearray)):
            key = SecretKey(bytes(key))
        if shards is not None:
            if server is not None or storage is not None:
                raise DatabaseError(
                    "pass shards on their own, not together with a server "
                    "or storage backend"
                )
            from repro.cluster.router import ShardRouter
            from repro.outsourcing.server import ServerError as _ServerError

            try:
                server = ShardRouter(shards, replicas=replicas)
            except _ServerError as exc:
                raise DatabaseError(str(exc)) from exc
        elif replicas != 1:
            raise DatabaseError(
                "replicas applies to sharded sessions only "
                "(pass shards=[...] or connect to a cluster:// URL)"
            )
        elif server is None:
            server = OutsourcedDatabaseServer(storage=storage)
        elif storage is not None:
            raise DatabaseError("pass either a server or a storage backend, not both")
        return cls(
            key,
            server,
            scheme,
            rng=rng,
            scheme_options=scheme_options,
            index=index,
            cache=cache,
        )

    @classmethod
    def connect(
        cls,
        provider,
        key: SecretKey | bytes | None = None,
        scheme: str = "swp",
        *,
        rng: RandomSource | None = None,
        scheme_options: dict | None = None,
        pool_size: int = 4,
        timeout: float | None = 30.0,
        policy: str = "fail_fast",
        shard_timeout: float | None = None,
        replicas: int | None = None,
        index: bool | None = None,
        cache=None,
    ) -> "EncryptedDatabase":
        """Open a session against a provider given by URL (or server object).

        A ``"tcp://host:port"`` URL transparently targets a remote provider
        (one started with ``repro serve``, see :mod:`repro.net`): the session
        speaks the same protocol frames as an in-process one, only carried
        over a socket by a pooled :class:`~repro.net.client.RemoteServerProxy`.
        ``pool_size`` and ``timeout`` configure that pool and are rejected
        for non-URL providers (configure the server object directly).
        Append ``?async=1`` to ride the *pipelined* transport instead
        (:class:`~repro.net.aio.AsyncRemoteServerProxy`): one asyncio
        connection multiplexing every in-flight request by correlation id
        -- the same sync session API, but N concurrent callers share one
        socket instead of a pool (``pool_size`` does not apply).

        A ``"cluster://host:port,host:port,..."`` URL targets a *sharded*
        deployment (see :mod:`repro.cluster`): one
        :class:`~repro.cluster.router.ShardRouter` spreads the session's
        tuples across every listed provider and scatter-gathers its queries.
        ``policy`` (``"fail_fast"`` or ``"degraded"``) and ``shard_timeout``
        configure the router's partial-failure handling for reads and apply
        to cluster URLs only.  A ``?replicas=R`` URL query (or the
        ``replicas`` keyword; they must agree when both are given) stores
        every tuple on R shards, so reads stay complete -- failing over to
        surviving replicas, never degrading -- with up to R-1 providers
        down: ``connect("cluster://h1:p1,h2:p2,h3:p3?replicas=2")``.  An
        ``&async=1`` option drives the whole fleet over pipelined
        connections from one event-loop thread (the scatter keeps every
        shard's round trip in flight simultaneously instead of burning a
        blocking thread per shard).

        A ``"cluster+file://fleet.json"`` URL restores a sharded session
        from a fleet manifest (``repro cluster spawn --manifest``): shard
        addresses, stable ring ids, replication factor and transport all
        come from the file, so a coordinator restart needs no re-supplied
        topology.

        An ``index=1`` URL option (``tcp://...?index=1``,
        ``cluster://...?index=1``) -- or the ``index`` keyword; they must
        agree when both are given -- makes the session maintain encrypted
        inverted indexes and answer exact selects via ``INDEX_LOOKUP``
        (see :mod:`repro.index`), scan-falling-back wherever unsupported.

        A ``cache=1`` URL option opts into the hot-key result cache tier
        (see :mod:`repro.cache`) that matches the transport: on a
        ``tcp://...?cache=1`` URL it is this session's client-side cache
        (same as the ``cache`` keyword, and they must agree when both are
        given), while on a ``cluster://...?cache=1`` URL it is the
        *coordinator-side* cache shared by every session routed through
        the :class:`~repro.cluster.router.ShardRouter` -- hot reads are
        absorbed before any shard is touched, and invalidation rides the
        router's write paths.  The ``cache`` keyword always configures
        the session's own client-side tier (both tiers compose).

        Anything that is not a URL string is treated as a server object and
        handed to :meth:`open` unchanged, so call sites can take "where is
        the provider" as a single configuration value.
        """
        owns_proxy = isinstance(provider, str)
        is_manifest = owns_proxy and provider.startswith("cluster+file://")
        is_cluster = is_manifest or (owns_proxy and provider.startswith("cluster://"))
        url_index: bool | None = None
        url_cache: bool | None = None
        if not is_cluster and (policy, shard_timeout, replicas) != (
            "fail_fast",
            None,
            None,
        ):
            raise DatabaseError(
                "policy/shard_timeout/replicas apply to cluster:// URLs only; "
                "configure the ShardRouter directly"
            )
        if owns_proxy:
            from repro.cluster.router import ShardRouter
            from repro.net.client import RemoteServerProxy, parse_tcp_options
            from repro.outsourcing.server import ServerError as _ServerError

            try:
                if is_manifest:
                    from repro.cluster.manifest import (
                        ClusterManifest,
                        parse_cluster_file_url,
                    )

                    manifest = ClusterManifest.load(parse_cluster_file_url(provider))
                    if replicas is not None and replicas != manifest.replicas:
                        raise DatabaseError(
                            f"conflicting replication factors: the manifest says "
                            f"{manifest.replicas}, the caller says {replicas}"
                        )
                    provider = ShardRouter.from_manifest(
                        manifest,
                        pool_size=pool_size,
                        timeout=timeout,
                        policy=policy,
                        shard_timeout=shard_timeout,
                    )
                elif is_cluster:
                    from repro.cluster.router import parse_cluster_options

                    url_index = parse_cluster_options(provider)[1].get("index")
                    provider = ShardRouter.connect(
                        provider,
                        pool_size=pool_size,
                        timeout=timeout,
                        policy=policy,
                        shard_timeout=shard_timeout,
                        replicas=replicas,
                    )
                else:
                    host, port, options = parse_tcp_options(provider)
                    url_index = options.get("index")
                    url_cache = options.get("cache")
                    if options.get("async"):
                        from repro.net.aio import AsyncRemoteServerProxy

                        provider = AsyncRemoteServerProxy(
                            host, port, timeout=timeout
                        )
                    else:
                        provider = RemoteServerProxy(
                            host, port, pool_size=pool_size, timeout=timeout
                        )
            except _ServerError as exc:
                raise DatabaseError(str(exc)) from exc
        elif (pool_size, timeout) != (4, 30.0):
            raise DatabaseError(
                "pool_size/timeout apply to tcp:// and cluster:// URLs only; "
                "configure the server object directly"
            )
        try:
            if index is None:
                index = bool(url_index) if url_index is not None else False
            elif url_index is not None and bool(url_index) != bool(index):
                raise DatabaseError(
                    f"conflicting index settings: the URL says index={url_index}, "
                    f"the caller says index={index}"
                )
            if cache is None:
                cache = bool(url_cache) if url_cache is not None else None
            elif url_cache is not None and bool(url_cache) != bool(cache):
                raise DatabaseError(
                    f"conflicting cache settings: the URL says cache={url_cache}, "
                    f"the caller says cache={cache}"
                )
            return cls.open(
                key,
                server=provider,
                scheme=scheme,
                rng=rng,
                scheme_options=scheme_options,
                index=index,
                cache=cache,
            )
        except BaseException:
            if owns_proxy:
                provider.close()  # don't leak the handshaken connection pool
            raise

    # ------------------------------------------------------------------ #
    # Session properties
    # ------------------------------------------------------------------ #

    @property
    def scheme_name(self) -> str:
        """Canonical name of the scheme this session instantiates per table."""
        return self._scheme_name

    @property
    def protocol_version(self) -> int:
        """The negotiated envelope version."""
        return self._version

    @property
    def index_enabled(self) -> bool:
        """True when this session maintains encrypted inverted indexes."""
        return self._index_enabled

    @property
    def index_active(self) -> bool:
        """True while indexed serving is enabled *and* the provider plays along."""
        return self._index_enabled and not self._index_unsupported

    @property
    def cache(self) -> ResultCache | None:
        """The session's client-side result cache, or None when disabled."""
        return self._cache

    @property
    def server(self) -> OutsourcedDatabaseServer:
        """The provider this session talks to."""
        return self._server

    @property
    def tables(self) -> tuple[str, ...]:
        """Names of the tables created in this session."""
        return tuple(self._tables)

    @property
    def metrics(self) -> MetricsRegistry:
        """The session's own metrics registry (per-op latency histograms)."""
        return self._metrics

    @property
    def trace_buffer(self) -> TraceBuffer:
        """Completed traces of this session's operations."""
        return self._trace_buffer

    @property
    def slow_queries(self) -> SlowQueryLog:
        """Operations slower than the slow-query threshold."""
        return self._slow_queries

    @property
    def last_trace_id(self) -> str | None:
        """Hex trace id of the most recent traced operation, or None."""
        return self._last_trace_id.hex() if self._last_trace_id is not None else None

    def metrics_snapshot(self) -> dict:
        """One merged snapshot: this session's registry plus the provider's.

        Works against every provider shape -- in-process servers and
        routers contribute their ``metrics_snapshot``, remote proxies the
        ``metrics`` control operation, and anything older simply adds
        nothing.  Never raises: metrics are diagnostics, not serving.
        """
        snapshots = [self._metrics.snapshot()]
        local = getattr(self._server, "metrics_snapshot", None)
        if local is not None:
            with contextlib.suppress(Exception):
                snapshots.append(local())
        else:
            remote = getattr(self._server, "metrics", None)
            if callable(remote):  # a proxy's metrics control op
                with contextlib.suppress(Exception):
                    snapshot = remote().get("metrics")
                    if snapshot:
                        snapshots.append(snapshot)
        return merge_snapshots(*snapshots)

    def fetch_trace(self, trace_id: str | bytes | None = None) -> dict | None:
        """Assemble one end-to-end trace from the session and the fleet.

        ``trace_id`` may be the hex string :attr:`last_trace_id` reports, the
        raw 16 bytes, or None for the most recent traced operation.  The
        session's own spans are merged with whatever every reachable
        provider recorded under the same id (via their ``trace`` control
        operation), sorted by wall-clock start.  Returns None for an
        unknown id.
        """
        tid = bytes.fromhex(trace_id) if isinstance(trace_id, str) else trace_id
        if tid is None:
            tid = self._last_trace_id
        if tid is None:
            return None
        local = self._trace_buffer.get(tid)
        spans: list[dict] = list(local["spans"]) if local is not None else []
        collector = getattr(self._server, "collect_trace", None)
        if collector is not None:
            with contextlib.suppress(Exception):
                spans.extend(collector(tid))
        if local is None and not spans:
            return None
        spans.sort(key=lambda entry: entry.get("start_s", 0.0))
        start = min((s.get("start_s", 0.0) for s in spans), default=0.0)
        end = max(
            (s.get("start_s", 0.0) + s.get("duration_s", 0.0) for s in spans),
            default=start,
        )
        return {
            "trace_id": tid.hex(),
            "duration_s": max(end - start, 0.0),
            "spans": spans,
        }

    @contextlib.contextmanager
    def _traced(self, op_kind: str):
        """Trace one session operation end to end.

        Mints a fresh trace id, binds it as the ambient trace (every layer
        below -- proxies, router, provider -- records spans against it and
        the id rides the v3 envelope to remote providers), and on the way
        out files the trace, feeds the slow-query log, and observes the
        per-op-kind latency histogram.  Nested operations (an update's
        inner insert) join the caller's trace as plain spans instead of
        minting their own.
        """
        if current_trace() is not None:
            with obs_span(f"session.{op_kind}") as entry:
                yield entry
            return
        trace = Trace(new_trace_id())
        started = time.monotonic()
        try:
            with use_trace(trace), trace.span(f"session.{op_kind}") as entry:
                yield entry
        finally:
            self._last_trace_id = trace.trace_id
            self._trace_buffer.record(trace)
            self._slow_queries.observe(trace)
            self._metrics.histogram(
                "session_op_seconds", op_kind=op_kind
            ).observe(time.monotonic() - started)

    def close(self) -> None:
        """Release the session's transport resources (a no-op in-process).

        Remote sessions close their connection pool; the provider keeps the
        stored relations, so a later session can :meth:`attach_table` them.
        """
        closer = getattr(self._server, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "EncryptedDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def table(self, name: str) -> TableHandle:
        """The handle of one table."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise DatabaseError(f"no table named {name!r} in this session") from exc

    def schema(self, name: str) -> RelationSchema:
        """The schema of one table."""
        return self.table(name).schema

    # ------------------------------------------------------------------ #
    # DDL
    # ------------------------------------------------------------------ #

    def create_table(
        self, schema: RelationSchema | str, rows: list | None = None
    ) -> TableHandle:
        """Create an outsourced table from a schema (or declaration string).

        The table is named after the schema; an optional initial ``rows``
        list is encrypted and shipped with the creating ``STORE_RELATION``
        message.
        """
        if isinstance(schema, str):
            schema = RelationSchema.parse(schema)
        name = schema.name
        if name in self._tables:
            raise DatabaseError(f"table {name!r} already exists in this session")
        if name in self._server.relation_names:
            raise DatabaseError(
                f"the provider already stores a relation named {name!r}; "
                "attach_table to reuse it or drop_table to replace it"
            )
        handle = self._bind_table(schema)
        relation = Relation(schema, [])
        if rows:
            relation = Relation.from_rows(schema, rows)
        encrypted = handle.scheme.encrypt_relation(relation)
        try:
            self._request(
                MessageKind.STORE_RELATION,
                name,
                protocol.encode_encrypted_relation(encrypted),
                expect=MessageKind.ACK,
            )
        except DatabaseError:
            del self._tables[name]
            raise
        finally:
            self._invalidate_cache(name)
        if handle.indexer is not None and not self._index_unsupported:
            snapshot = handle.indexer.snapshot(relation, encrypted)
            self._index_request(
                MessageKind.INDEX_PUT,
                name,
                encode_index_snapshot(snapshot),
                expect=MessageKind.ACK,
            )
        return handle

    def attach_table(self, schema: RelationSchema | str) -> TableHandle:
        """Re-attach a table the provider already stores (e.g. file-backed).

        Rebuilds the table's scheme instance from this session's master key
        and re-deploys the evaluator, without shipping a ``STORE_RELATION``
        message -- the provider's copy is left untouched.  The session key
        must be the one the table was created under, or decryption will fail.
        """
        if isinstance(schema, str):
            schema = RelationSchema.parse(schema)
        name = schema.name
        if name in self._tables:
            raise DatabaseError(f"table {name!r} already exists in this session")
        if name not in self._server.relation_names:
            raise DatabaseError(f"the provider stores no relation named {name!r}")
        stored = self._stored(name)
        if stored.schema != schema:
            raise DatabaseError(
                f"schema mismatch for table {name!r}: the provider stores "
                f"{stored.schema!r}"
            )
        handle = self._bind_table(schema)
        if handle.indexer is not None and not self._index_unsupported:
            # The provider's index is soft state the previous session may
            # have taken with it; rebuild it from the stored ciphertexts
            # (decrypting client-side, as always) and re-ship it.
            rows = [handle.scheme.decrypt_tuple(t) for t in stored.encrypted_tuples]
            snapshot = handle.indexer.snapshot(Relation(schema, rows), stored)
            self._index_request(
                MessageKind.INDEX_PUT,
                name,
                encode_index_snapshot(snapshot),
                expect=MessageKind.ACK,
            )
        return handle

    def _bind_table(self, schema: RelationSchema) -> TableHandle:
        """Derive the table key, build the scheme, deploy the evaluator."""
        name = schema.name
        table_key = SecretKey(self._key.subkey(f"table/{name}"))
        scheme = registry.create(
            self._scheme_name,
            schema,
            table_key,
            rng=self._rng,
            **self._scheme_options,
        )
        indexer = None
        if self._index_enabled:
            # The index PRF key is its own derivation branch: compromising
            # it reveals keyword labels, never the payload key material.
            indexer = TableIndexer(
                schema, self._key.subkey(f"index/{name}"), rng=self._rng
            )
        handle = TableHandle(name=name, schema=schema, scheme=scheme, indexer=indexer)
        self._server.register_evaluator(name, scheme.server_evaluator())
        self._tables[name] = handle
        return handle

    def drop_table(self, name: str) -> None:
        """Drop a table from the session and the provider.

        The session entry is removed even when the provider no longer holds
        the relation (e.g. another session dropped it first), so a drop
        cannot wedge the table in this session.
        """
        self.table(name)
        try:
            self._server.drop_relation(name)
        except ServerError as exc:
            del self._tables[name]
            raise DatabaseError(str(exc)) from exc
        finally:
            self._invalidate_cache(name)
        del self._tables[name]

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #

    def insert(self, table: str, row: RelationTuple | dict | tuple) -> None:
        """Encrypt and append one row (a dict, tuple, or :class:`RelationTuple`)."""
        with self._traced("insert") as op_span:
            op_span.annotations["table"] = table
            handle = self.table(table)
            relation_tuple = self._as_tuple(handle, row)
            encrypted = handle.scheme.encrypt_tuple(relation_tuple)
            try:
                if handle.indexer is not None and not self._index_unsupported:
                    # Postings first, tuple second: a crash in between leaves a
                    # stale posting whose id fetches nothing (a harmless
                    # superset); the other order could leave an indexed lookup
                    # missing a tuple.
                    delta = handle.indexer.insert_delta(
                        relation_tuple, encrypted.tuple_id
                    )
                    self._index_request(
                        MessageKind.INDEX_DELTA,
                        table,
                        encode_index_delta(delta),
                        expect=MessageKind.ACK,
                    )
                self._request(
                    MessageKind.INSERT_TUPLE,
                    table,
                    protocol.encode_encrypted_tuple(encrypted),
                    expect=MessageKind.ACK,
                )
            finally:
                # Even a failed insert may have mutated provider state (the
                # index delta can land without the tuple), so the bump is
                # unconditional: one extra miss beats one stale hit.
                self._invalidate_cache(table)

    def insert_many(self, table: str, rows) -> int:
        """Insert several rows; returns how many were shipped."""
        count = 0
        for row in rows:
            self.insert(table, row)
            count += 1
        return count

    def delete(self, query: Query | str, table: str | None = None) -> int:
        """Delete the tuples matching an exact-select query; returns the count.

        Matching happens client-side on decrypted results (so the scheme's
        false positives are never deleted); the provider only sees the
        public tuple ids in the v2 ``DELETE_TUPLES`` message.
        """
        self._require_v2("delete")
        with self._traced("delete") as op_span:
            name, parsed = self._resolve(query, table)
            op_span.annotations["table"] = name
            matches = self._true_matches(name, parsed)
            if not matches:
                return 0
            return self._delete_matches(name, matches)

    def update(self, query: Query | str, changes: dict, table: str | None = None) -> int:
        """Re-encrypt the matching tuples with ``changes`` applied.

        Implemented as insert-then-delete: fresh ciphertexts (new random
        ids, new nonces) are appended first and only then are the old ids
        removed, so the provider cannot link a tuple's pre- and post-update
        versions and a mid-operation failure degrades to transient
        duplicates rather than data loss.  Returns the number of
        re-encrypted replacements shipped (which can exceed the provider's
        acknowledged deletions if a concurrent session removed a matched
        tuple first).
        """
        self._require_v2("update")
        with self._traced("update") as op_span:
            name, parsed = self._resolve(query, table)
            op_span.annotations["table"] = name
            handle = self.table(name)
            unknown = set(changes) - set(handle.schema.attribute_names)
            if unknown:
                raise DatabaseError(
                    f"unknown attribute(s) in update: {sorted(unknown)}"
                )
            matches = self._true_matches(name, parsed)
            if not matches:
                return 0
            replacements = []
            for _, plaintext in matches:
                values = plaintext.as_dict()
                values.update(changes)
                replacements.append(self._make_tuple(handle.schema, values))
            for replacement in replacements:
                self.insert(name, replacement)
            self._delete_matches(name, matches)
            return len(replacements)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def select(self, query: Query | str, table: str | None = None) -> SelectOutcome:
        """Run one exact select and return the decrypted, filtered result."""
        with self._traced("select") as op_span:
            name, parsed = self._resolve(query, table)
            op_span.annotations["table"] = name
            handle = self.table(name)
            result = self._run_query(handle, parsed)
            return self._outcome(handle, result, parsed)

    def select_many(
        self, queries, table: str | None = None
    ) -> list[SelectOutcome]:
        """Run several exact selects in one v2 ``BATCH_QUERY`` round trip.

        All queries must address the same table (named explicitly or via the
        SQL ``FROM`` clauses).
        """
        self._require_v2("select_many")
        with self._traced("select_many") as op_span:
            resolved = [self._resolve(query, table) for query in queries]
            if not resolved:
                return []
            names = {name for name, _ in resolved}
            if len(names) != 1:
                raise DatabaseError(
                    f"a batch addresses exactly one table, got {sorted(names)}"
                )
            name = resolved[0][0]
            op_span.annotations["table"] = name
            op_span.annotations["batch_size"] = len(resolved)
            handle = self.table(name)
            encrypted = [handle.scheme.encrypt_query(parsed) for _, parsed in resolved]
            tokens = [protocol.encode_encrypted_query(e) for e in encrypted]
            results: list[EvaluationResult | None] = [None] * len(resolved)
            generation = None
            if self._cache is not None:
                # Serve what we can from the cache and ship only the misses
                # in the batch round trip (an all-hit batch skips it).
                for position, token in enumerate(tokens):
                    results[position] = self._cache.lookup(name, token)
                generation = self._cache.generation(name)
            missing = [i for i, result in enumerate(results) if result is None]
            op_span.annotations["batch_misses"] = len(missing)
            if missing:
                response = self._request(
                    MessageKind.BATCH_QUERY,
                    name,
                    protocol.encode_query_batch([encrypted[i] for i in missing]),
                    expect=MessageKind.BATCH_RESULT,
                )
                fetched = protocol.decode_result_batch(response.body)
                if len(fetched) != len(missing):
                    raise DatabaseError(
                        f"provider answered {len(fetched)} results "
                        f"for {len(missing)} queries"
                    )
                for position, result in zip(missing, fetched):
                    results[position] = result
                    if self._cache is not None:
                        self._cache.put(name, tokens[position], result, generation)
            return [
                self._outcome(handle, result, parsed)
                for result, (_, parsed) in zip(results, resolved)
            ]

    def retrieve_all(self, table: str) -> Relation:
        """Fetch the provider's full copy of a table and decrypt it."""
        handle = self.table(table)
        return handle.scheme.decrypt_relation(self._stored(table))

    def count(self, table: str) -> int:
        """Number of tuple ciphertexts the provider currently stores."""
        self.table(table)
        try:
            return self._server.tuple_count(table)
        except ServerError as exc:
            raise DatabaseError(str(exc)) from exc

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _invalidate_cache(self, relation: str) -> None:
        """Bump the client cache's generation for one relation (write path)."""
        if self._cache is not None:
            self._cache.invalidate(relation)

    def _stored(self, table: str):
        """The provider's ciphertext copy, with errors in the facade's type."""
        try:
            return self._server.stored_relation(table)
        except ServerError as exc:
            raise DatabaseError(str(exc)) from exc

    def _request(
        self, kind: MessageKind, relation_name: str, body: bytes, expect: MessageKind
    ) -> Message | MessageV2:
        envelope = Message if self._version == PROTOCOL_V1 else MessageV2
        raw = self._server.handle_message(
            envelope(kind=kind, relation_name=relation_name, body=body).to_bytes()
        )
        response = protocol.parse_message(raw)
        if response.kind is MessageKind.ERROR:
            raise DatabaseError(response.body.decode("utf-8", "replace"))
        if response.kind is not expect:
            raise DatabaseError(
                f"expected {expect.value!r} response, got {response.kind.value!r}"
            )
        return response

    def _decode_query_result(self, response: Message | MessageV2) -> EvaluationResult:
        if self._version == PROTOCOL_V1:
            return EvaluationResult(
                matching=protocol.decode_encrypted_relation(response.body)
            )
        result, consumed = protocol.decode_evaluation_result(response.body)
        if consumed != len(response.body):
            raise DatabaseError("trailing bytes after evaluation result")
        return result

    def _resolve(self, query: Query | str, table: str | None) -> tuple[str, Query]:
        """Route a query (AST node or SQL text) to a table of this session."""
        if isinstance(query, str):
            relation_name = parse_sql(query).relation_name
            if table is not None and table != relation_name:
                raise DatabaseError(
                    f"SQL addresses table {relation_name!r}, caller said {table!r}"
                )
            handle = self.table(relation_name)
            # Re-parse with the schema so bare literals get the right type.
            return relation_name, parse_sql(query, handle.schema).query
        if table is None:
            if len(self._tables) != 1:
                raise DatabaseError(
                    "a table name is required when the session holds "
                    f"{len(self._tables)} tables"
                )
            table = next(iter(self._tables))
        parsed = query
        validate = getattr(parsed, "validate", None)
        if validate is not None:
            validate(self.table(table).schema)
        return table, parsed

    def _run_query(self, handle: TableHandle, parsed: Query) -> EvaluationResult:
        """One encrypted read for an already-resolved query, cache included.

        On cache-enabled sessions the encoded encrypted query is the cache
        token: schemes encrypt queries deterministically, so a hot query
        repeats byte-identically and its result is served from memory with
        no round trip.  The fill is generation-checked (see
        :class:`~repro.cache.ResultCache`): a write landing while the read
        was in flight drops the fill instead of caching a stale answer.
        """
        encrypted_query = handle.scheme.encrypt_query(parsed)
        token = protocol.encode_encrypted_query(encrypted_query)
        if self._cache is not None:
            cached = self._cache.lookup(handle.name, token)
            if cached is not None:
                return cached
            generation = self._cache.generation(handle.name)
        result = self._fetch_query_result(handle, parsed, encrypted_query, token)
        if self._cache is not None:
            self._cache.put(handle.name, token, result, generation)
        return result

    def _fetch_query_result(
        self, handle: TableHandle, parsed: Query, encrypted_query, token: bytes
    ) -> EvaluationResult:
        """The provider round trip behind :meth:`_run_query`.

        Indexed sessions prefer ``INDEX_LOOKUP``: trapdoor labels plus the
        ordinary encrypted query as the embedded scan fallback, so any
        provider answers -- O(result) when it holds the index, O(data)
        otherwise -- and the result set is the same either way (the client
        filter below discards index false candidates exactly as it
        discards scheme false positives).
        """
        if handle.indexer is not None and not self._index_unsupported:
            try:
                labels = handle.indexer.query_labels(parsed)
            except QueryError:
                labels = None  # a query shape the index cannot serve
            if labels is not None:
                request = IndexLookupRequest(
                    labels=labels, fallback_query=encrypted_query
                )
                response = self._index_request(
                    MessageKind.INDEX_LOOKUP,
                    handle.name,
                    encode_index_lookup(request),
                    expect=MessageKind.QUERY_RESULT,
                )
                if response is not None:
                    return self._decode_query_result(response)
        response = self._request(
            MessageKind.QUERY,
            handle.name,
            token,
            expect=MessageKind.QUERY_RESULT,
        )
        return self._decode_query_result(response)

    def _delete_matches(self, name: str, matches: list[tuple]) -> int:
        """Remove already-resolved matches; returns the logical count.

        Indexed sessions use the per-id ``DELETE_TUPLES_EXACT`` op --
        tuples first, posting tombstones second, so a crash in between
        leaves only stale postings (a harmless superset) -- and the
        reported count is exact even when the batch raced another session.
        """
        handle = self.table(name)
        body = protocol.encode_tuple_ids([t.tuple_id for t, _ in matches])
        try:
            return self._delete_matches_uncached(handle, name, body, matches)
        finally:
            self._invalidate_cache(name)

    def _delete_matches_uncached(
        self, handle: TableHandle, name: str, body: bytes, matches: list[tuple]
    ) -> int:
        if handle.indexer is not None and not self._index_unsupported:
            response = self._index_request(
                MessageKind.DELETE_TUPLES_EXACT,
                name,
                body,
                expect=MessageKind.TUPLE_IDS,
            )
            if response is not None:
                deleted_ids = protocol.decode_tuple_ids(response.body)
                delta = handle.indexer.remove_delta(
                    (plaintext, t.tuple_id) for t, plaintext in matches
                )
                self._index_request(
                    MessageKind.INDEX_DELTA,
                    name,
                    encode_index_delta(delta),
                    expect=MessageKind.ACK,
                )
                return len(deleted_ids)
        response = self._request(
            MessageKind.DELETE_TUPLES, name, body, expect=MessageKind.ACK
        )
        return protocol.decode_count(response.body)

    def _index_request(
        self, kind: MessageKind, relation_name: str, body: bytes, expect: MessageKind
    ) -> Message | MessageV2 | None:
        """A request the provider may legitimately not serve.

        ``None`` means the provider rejected the *kind* (an older build):
        the session memoizes that and every later operation goes straight
        to the scan/plain-op path.  Real failures still raise.
        """
        try:
            return self._request(kind, relation_name, body, expect=expect)
        except DatabaseError as exc:
            if "cannot serve message kind" in str(exc):
                self._index_unsupported = True
                return None
            raise

    def _true_matches(
        self, name: str, parsed: Query
    ) -> list[tuple]:
        """Decrypted true matches of a query: ``(encrypted_tuple, plaintext)`` pairs."""
        handle = self.table(name)
        result = self._run_query(handle, parsed)
        predicates = selection_predicates(parsed)
        matches = []
        for encrypted_tuple in result.matching.encrypted_tuples:
            plaintext = handle.scheme.decrypt_tuple(encrypted_tuple)
            if all(p.matches(plaintext) for p in predicates):
                matches.append((encrypted_tuple, plaintext))
        return matches

    def _outcome(
        self, handle: TableHandle, result: EvaluationResult, parsed: Query
    ) -> SelectOutcome:
        report = handle.scheme.decrypt_result(result, parsed)
        projected = None
        if isinstance(parsed, Projection) and parsed.attributes:
            projected = report.relation.project(list(parsed.attributes))
        return SelectOutcome(report=report, projected_rows=projected, evaluation=result)

    def _as_tuple(self, handle: TableHandle, row) -> RelationTuple:
        if isinstance(row, RelationTuple):
            return row
        if isinstance(row, dict):
            return self._make_tuple(handle.schema, row)
        values = dict(zip(handle.schema.attribute_names, row))
        if len(values) != len(handle.schema.attribute_names) or len(row) != len(values):
            raise DatabaseError(
                f"row has {len(row)} values, schema {handle.schema.name!r} "
                f"has {len(handle.schema.attribute_names)} attributes"
            )
        return self._make_tuple(handle.schema, values)

    @staticmethod
    def _make_tuple(schema: RelationSchema, values: dict) -> RelationTuple:
        """Build a validated tuple, translating schema violations to the API error."""
        try:
            return RelationTuple(schema, values)
        except Exception as exc:
            raise DatabaseError(str(exc)) from exc

    def _require_v2(self, operation: str) -> None:
        if self._version < protocol.PROTOCOL_V2:
            raise DatabaseError(
                f"{operation} needs protocol version 2, "
                f"negotiated version is {self._version}"
            )
