"""Stable public API of the reproduction.

:class:`EncryptedDatabase` is the one object applications (and benchmarks)
drive: it opens a keyed, multi-relation session against any registered
scheme and exposes the full CRUD surface over the versioned outsourcing
protocol::

    from repro.api import EncryptedDatabase

    db = EncryptedDatabase.open(scheme="swp")
    db.create_table("Emp(name:string[10], dept:string[5], salary:int[6])")
    db.insert("Emp", {"name": "Montgomery", "dept": "HR", "salary": 7500})
    outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
    db.update("SELECT * FROM Emp WHERE name = 'Montgomery'", {"salary": 7600})
    db.delete("SELECT * FROM Emp WHERE dept = 'HR'")

The provider can just as well live in another process:
``EncryptedDatabase.connect("tcp://host:port")`` opens the same session
against a standalone ``repro serve`` provider (see :mod:`repro.net`).
"""

from repro.api.database import DatabaseError, EncryptedDatabase, TableHandle

__all__ = ["DatabaseError", "EncryptedDatabase", "TableHandle"]
