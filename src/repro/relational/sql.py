"""A small SQL parser for the paper's query fragment.

The paper writes its example queries in SQL::

    SELECT * FROM table WHERE hospital = 1;
    SELECT * FROM table WHERE outcome = 'fatal';

The supported grammar is::

    SELECT (<attr> [, <attr>]* | *) FROM <relation>
        [WHERE <attr> = <literal> [AND <attr> = <literal>]*] [;]

Literals are single-quoted strings or integers.  The parser produces the query
AST of :mod:`repro.relational.query`; untyped literals are resolved against a
schema when one is supplied (``hospital = 1`` parses to the integer 1 for an
integer attribute and the string ``"1"`` for a string attribute).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.relational.errors import SqlParseError
from repro.relational.query import (
    ConjunctiveSelection,
    EqualityPredicate,
    Projection,
    Query,
    Selection,
)
from repro.relational.schema import RelationSchema
from repro.relational.types import AttributeType

_SELECT_RE = re.compile(
    r"""^\s*select\s+(?P<columns>\*|[\w\s,]+?)\s+from\s+(?P<relation>\w+)
        (?:\s+where\s+(?P<where>.+?))?\s*;?\s*$""",
    re.IGNORECASE | re.VERBOSE | re.DOTALL,
)

_CONDITION_RE = re.compile(
    r"""^\s*(?P<attribute>\w+)\s*=\s*(?P<literal>'[^']*'|"[^"]*"|-?\d+|\w+)\s*$""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class ParsedSql:
    """The result of parsing a SQL statement."""

    relation_name: str
    query: Query


def _parse_literal(token: str, attribute_name: str, schema: RelationSchema | None):
    token = token.strip()
    if token.startswith("'") or token.startswith('"'):
        return token[1:-1]
    if schema is not None and schema.has_attribute(attribute_name):
        attribute = schema.attribute(attribute_name)
        if attribute.attribute_type is AttributeType.INTEGER:
            try:
                return int(token)
            except ValueError as exc:
                raise SqlParseError(
                    f"literal {token!r} is not a valid integer for {attribute_name}"
                ) from exc
        return token
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    return token


def parse_sql(statement: str, schema: RelationSchema | None = None) -> ParsedSql:
    """Parse a SQL statement of the supported fragment.

    Parameters
    ----------
    statement:
        The SQL text.
    schema:
        Optional schema used to type bare literals and validate attribute
        names; when omitted, bare numeric literals parse as integers.
    """
    match = _SELECT_RE.match(statement)
    if match is None:
        raise SqlParseError(f"cannot parse SQL statement: {statement!r}")
    relation_name = match.group("relation")
    columns_text = match.group("columns").strip()
    where_text = match.group("where")

    if where_text is None:
        raise SqlParseError(
            "full-table scans are not expressible as exact selects; "
            "a WHERE clause with at least one equality is required"
        )

    predicates = []
    for part in re.split(r"\s+and\s+", where_text, flags=re.IGNORECASE):
        condition = _CONDITION_RE.match(part)
        if condition is None:
            raise SqlParseError(f"cannot parse WHERE condition {part!r}")
        attribute = condition.group("attribute")
        value = _parse_literal(condition.group("literal"), attribute, schema)
        predicates.append(EqualityPredicate(attribute, value))

    query: Query
    if len(predicates) == 1:
        query = Selection(predicates[0])
    else:
        query = ConjunctiveSelection(tuple(predicates))

    if columns_text != "*":
        columns = tuple(c.strip() for c in columns_text.split(",") if c.strip())
        if not columns:
            raise SqlParseError("empty column list")
        query = Projection(query, columns)

    if schema is not None:
        validate = getattr(query, "validate", None)
        if validate is not None:
            try:
                validate(schema)
            except Exception as exc:
                raise SqlParseError(str(exc)) from exc

    return ParsedSql(relation_name=relation_name, query=query)
