"""Attributes and relation schemas.

A :class:`RelationSchema` fixes, for each attribute, a name, a type and a
maximum encoded width.  It also assigns every attribute its short *attribute
identifier* -- the single character the paper appends to padded values to form
searchable words (``"MontgomeryN"``, ``"HR########D"``, ``"7500######S"``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.errors import SchemaError
from repro.relational.types import AttributeType

#: Alphabet used for automatically assigned one-byte attribute identifiers.
_ID_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


@dataclass(frozen=True)
class Attribute:
    """One attribute (column) of a relation.

    Attributes
    ----------
    name:
        Attribute name, unique within its schema.
    attribute_type:
        :class:`AttributeType` family.
    max_length:
        Maximum encoded width in characters (string length or decimal digits).
    identifier:
        One-character identifier used in word construction.  If empty the
        schema assigns one automatically.
    """

    name: str
    attribute_type: AttributeType
    max_length: int
    identifier: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid attribute name {self.name!r}")
        if self.max_length < 1:
            raise SchemaError("attribute max_length must be at least 1")
        if self.identifier and len(self.identifier) != 1:
            raise SchemaError("attribute identifiers must be a single character")

    def validate_value(self, value) -> None:
        """Raise :class:`SchemaError` if ``value`` does not fit this attribute."""
        self.attribute_type.validate(value, self.max_length)

    @classmethod
    def string(cls, name: str, max_length: int, identifier: str = "") -> "Attribute":
        """Shorthand for a ``string[max_length]`` attribute."""
        return cls(name, AttributeType.STRING, max_length, identifier)

    @classmethod
    def integer(cls, name: str, max_digits: int = 12, identifier: str = "") -> "Attribute":
        """Shorthand for an integer attribute with at most ``max_digits`` digits."""
        return cls(name, AttributeType.INTEGER, max_digits, identifier)


class RelationSchema:
    """An ordered collection of uniquely named attributes."""

    def __init__(self, name: str, attributes: list[Attribute]) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        if not attributes:
            raise SchemaError("a relation needs at least one attribute")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema {name!r}")
        self._name = name
        self._attributes = self._assign_identifiers(attributes)
        self._by_name = {a.name: a for a in self._attributes}

    @staticmethod
    def _assign_identifiers(attributes: list[Attribute]) -> tuple[Attribute, ...]:
        used = {a.identifier for a in attributes if a.identifier}
        if len(used) != len([a for a in attributes if a.identifier]):
            raise SchemaError("attribute identifiers must be unique")
        assigned = []
        pool = iter(c for c in _ID_ALPHABET if c not in used)
        for attribute in attributes:
            if attribute.identifier:
                assigned.append(attribute)
                continue
            preferred = attribute.name[0].upper()
            if preferred not in used and preferred in _ID_ALPHABET:
                identifier = preferred
            else:
                try:
                    identifier = next(pool)
                except StopIteration as exc:  # pragma: no cover - >62 attributes
                    raise SchemaError("too many attributes to assign identifiers") from exc
            used.add(identifier)
            assigned.append(
                Attribute(
                    attribute.name,
                    attribute.attribute_type,
                    attribute.max_length,
                    identifier,
                )
            )
        return tuple(assigned)

    @property
    def name(self) -> str:
        """Relation name."""
        return self._name

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The attributes in declaration order."""
        return self._attributes

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(a.name for a in self._attributes)

    def attribute(self, name: str) -> Attribute:
        """Look an attribute up by name."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise SchemaError(
                f"relation {self._name!r} has no attribute {name!r}"
            ) from exc

    def has_attribute(self, name: str) -> bool:
        """Return whether the schema declares ``name``."""
        return name in self._by_name

    def identifier_to_attribute(self, identifier: str | bytes) -> Attribute:
        """Reverse lookup: map a one-character identifier back to its attribute."""
        if isinstance(identifier, bytes):
            identifier = identifier.decode("ascii")
        for attribute in self._attributes:
            if attribute.identifier == identifier:
                return attribute
        raise SchemaError(f"no attribute with identifier {identifier!r}")

    def max_value_length(self) -> int:
        """The paper's "length of the longest attribute value" for word sizing."""
        return max(a.max_length for a in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self._name == other._name and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash((self._name, self._attributes))

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{a.name}:{a.attribute_type.value}[{a.max_length}]" for a in self._attributes
        )
        return f"RelationSchema({self._name}({cols}))"

    @classmethod
    def parse(cls, declaration: str) -> "RelationSchema":
        """Parse declarations like ``Emp(name:string[9], dept:string[5], salary:int)``."""
        declaration = declaration.strip()
        if "(" not in declaration or not declaration.endswith(")"):
            raise SchemaError(f"malformed schema declaration {declaration!r}")
        name, _, body = declaration.partition("(")
        attributes = []
        for part in body[:-1].split(","):
            part = part.strip()
            if not part:
                continue
            if ":" not in part:
                raise SchemaError(f"malformed attribute declaration {part!r}")
            attr_name, _, type_decl = part.partition(":")
            attr_type, width = AttributeType.from_declaration(type_decl)
            attributes.append(Attribute(attr_name.strip(), attr_type, width))
        return cls(name.strip(), attributes)
