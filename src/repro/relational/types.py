"""Attribute types.

The paper's example relation is ``Emp(name:string[9], dept:string[5],
salary:int)``; the reproduction supports exactly those two families of types:

* fixed-maximum-length strings (``STRING``), and
* integers (``INTEGER``), encoded in decimal as in the paper's
  ``"7500######S"`` example.

Type objects know how to validate Python values and how wide their encoded
representation can be, which is what the word codec of the searchable scheme
needs to choose the globally fixed word length.
"""

from __future__ import annotations

from enum import Enum

from repro.relational.errors import SchemaError

#: The largest number of decimal digits an INTEGER attribute may occupy by default.
DEFAULT_INTEGER_DIGITS = 12


class AttributeType(Enum):
    """The supported attribute type families."""

    STRING = "string"
    INTEGER = "int"

    def validate(self, value, max_length: int) -> None:
        """Raise :class:`SchemaError` if ``value`` is not a valid instance.

        ``max_length`` is the maximum encoded width in characters: the string
        length bound for ``STRING``, the digit bound (including an optional
        sign) for ``INTEGER``.
        """
        if self is AttributeType.STRING:
            if not isinstance(value, str):
                raise SchemaError(f"expected str, got {type(value).__name__}: {value!r}")
            if len(value) > max_length:
                raise SchemaError(
                    f"string {value!r} longer than the declared maximum {max_length}"
                )
            if "#" in value:
                raise SchemaError(
                    "string values must not contain '#', the padding symbol"
                )
            try:
                value.encode("ascii")
            except UnicodeEncodeError as exc:
                raise SchemaError(f"string {value!r} is not ASCII") from exc
        elif self is AttributeType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected int, got {type(value).__name__}: {value!r}")
            if len(str(value)) > max_length:
                raise SchemaError(
                    f"integer {value} needs more than {max_length} characters"
                )
        else:  # pragma: no cover - exhaustive enum
            raise SchemaError(f"unsupported attribute type {self}")

    def parse_literal(self, literal: str):
        """Convert a SQL literal string into a Python value of this type."""
        if self is AttributeType.STRING:
            return literal
        if self is AttributeType.INTEGER:
            try:
                return int(literal)
            except ValueError as exc:
                raise SchemaError(f"invalid integer literal {literal!r}") from exc
        raise SchemaError(f"unsupported attribute type {self}")  # pragma: no cover

    @classmethod
    def from_declaration(cls, declaration: str) -> tuple["AttributeType", int]:
        """Parse declarations like ``string[9]`` or ``int`` into (type, width)."""
        declaration = declaration.strip().lower()
        if declaration.startswith("string"):
            width = _bracket_width(declaration, default=None)
            if width is None:
                raise SchemaError("string declarations must specify a width, e.g. string[9]")
            return cls.STRING, width
        if declaration.startswith("int"):
            width = _bracket_width(declaration, default=DEFAULT_INTEGER_DIGITS)
            return cls.INTEGER, width
        raise SchemaError(f"unknown attribute type declaration {declaration!r}")


def _bracket_width(declaration: str, default: int | None) -> int | None:
    """Extract the ``[n]`` width suffix of a type declaration, if present."""
    if "[" not in declaration:
        return default
    if not declaration.endswith("]"):
        raise SchemaError(f"malformed type declaration {declaration!r}")
    inner = declaration[declaration.index("[") + 1: -1]
    try:
        width = int(inner)
    except ValueError as exc:
        raise SchemaError(f"malformed width in declaration {declaration!r}") from exc
    if width < 1:
        raise SchemaError("attribute width must be at least 1")
    return width
