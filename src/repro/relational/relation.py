"""Relations with multiset semantics.

The paper encrypts whole relations tuple-by-tuple; a :class:`Relation` is the
plaintext object being outsourced.  Equality between relations is *multiset*
equality (order-insensitive, multiplicity-sensitive), which is the right
notion both for SQL bag semantics and for stating the homomorphism property.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Mapping

from repro.relational.errors import SchemaError
from repro.relational.schema import RelationSchema
from repro.relational.tuples import RelationTuple


class Relation:
    """A named multiset of tuples over a fixed schema."""

    def __init__(
        self,
        schema: RelationSchema,
        tuples: Iterable[RelationTuple | Mapping[str, object]] = (),
    ) -> None:
        self._schema = schema
        self._tuples: list[RelationTuple] = []
        for item in tuples:
            self.add(item)

    @property
    def schema(self) -> RelationSchema:
        """The relation's schema."""
        return self._schema

    @property
    def tuples(self) -> tuple[RelationTuple, ...]:
        """The tuples in insertion order."""
        return tuple(self._tuples)

    def add(self, item: RelationTuple | Mapping[str, object]) -> RelationTuple:
        """Insert a tuple (given directly or as a plain mapping) and return it."""
        if isinstance(item, RelationTuple):
            if item.schema != self._schema:
                raise SchemaError(
                    f"tuple schema {item.schema.name!r} does not match relation "
                    f"schema {self._schema.name!r}"
                )
            relation_tuple = item
        else:
            relation_tuple = RelationTuple(self._schema, item)
        self._tuples.append(relation_tuple)
        return relation_tuple

    def extend(self, items: Iterable[RelationTuple | Mapping[str, object]]) -> None:
        """Insert several tuples."""
        for item in items:
            self.add(item)

    def select_equal(self, attribute_name: str, value) -> "Relation":
        """Return the sub-relation with ``attribute_name == value`` (exact select)."""
        self._schema.attribute(attribute_name)  # raises on unknown attribute
        matching = [t for t in self._tuples if t.value(attribute_name) == value]
        return Relation(self._schema, matching)

    def project(self, attribute_names: list[str]) -> list[tuple]:
        """Return the projection of every tuple onto the named attributes."""
        for name in attribute_names:
            self._schema.attribute(name)
        return [t.project(attribute_names) for t in self._tuples]

    def distinct_values(self, attribute_name: str) -> set:
        """Return the set of distinct values of one attribute."""
        self._schema.attribute(attribute_name)
        return {t.value(attribute_name) for t in self._tuples}

    def as_multiset(self) -> Counter:
        """Return the tuples as a :class:`collections.Counter` (multiset view)."""
        return Counter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[RelationTuple]:
        return iter(self._tuples)

    def __contains__(self, item: RelationTuple) -> bool:
        return item in self._tuples

    def __eq__(self, other) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self.as_multiset() == other.as_multiset()

    def __hash__(self) -> int:  # relations are mutable containers
        raise TypeError("Relation objects are not hashable")

    def __repr__(self) -> str:
        return f"Relation({self._schema.name}, {len(self._tuples)} tuples)"

    @classmethod
    def from_rows(
        cls, schema: RelationSchema, rows: Iterable[tuple]
    ) -> "Relation":
        """Build a relation from positional rows following the schema order."""
        relation = cls(schema)
        names = schema.attribute_names
        for row in rows:
            if len(row) != len(names):
                raise SchemaError(
                    f"row of width {len(row)} does not match schema of width {len(names)}"
                )
            relation.add(dict(zip(names, row)))
        return relation
