"""Plaintext query engine.

This engine defines the *reference semantics* of the reproduced system: the
homomorphism property of Definition 1.1 is checked by comparing, for every
query, the engine's plaintext result with the decryption of the ciphertext
result produced by the outsourced construction.  The same engine is reused by
the client for post-filtering false positives (the paper: "Alex needs to run a
filter on the output").
"""

from __future__ import annotations

from repro.relational.errors import QueryError
from repro.relational.query import (
    ConjunctiveSelection,
    Projection,
    Query,
    Selection,
)
from repro.relational.relation import Relation


class PlaintextEngine:
    """Evaluates the supported query AST directly over plaintext relations."""

    def execute(self, query: Query, relation: Relation) -> Relation | list[tuple]:
        """Evaluate ``query`` over ``relation``.

        Selections return a :class:`Relation`; projections return a list of
        positional value tuples (bag semantics, like SQL without DISTINCT).
        """
        if isinstance(query, Selection):
            return self._execute_selection(query, relation)
        if isinstance(query, ConjunctiveSelection):
            return self._execute_conjunction(query, relation)
        if isinstance(query, Projection):
            inner = self.execute(query.inner, relation)
            if not isinstance(inner, Relation):
                raise QueryError("nested projections are not supported")
            if not query.attributes:
                return [t.project(list(relation.schema.attribute_names)) for t in inner]
            return inner.project(list(query.attributes))
        raise QueryError(f"unsupported query node {type(query).__name__}")

    def _execute_selection(self, query: Selection, relation: Relation) -> Relation:
        query.validate(relation.schema)
        return relation.select_equal(query.attribute, query.value)

    def _execute_conjunction(
        self, query: ConjunctiveSelection, relation: Relation
    ) -> Relation:
        query.validate(relation.schema)
        result = relation
        for predicate in query.conditions:
            result = result.select_equal(predicate.attribute, predicate.value)
        return Relation(relation.schema, result.tuples)


def evaluate(query: Query, relation: Relation) -> Relation | list[tuple]:
    """One-shot evaluation helper."""
    return PlaintextEngine().execute(query, relation)
