"""Query AST: exact-match selections, conjunctions and projections.

The paper's construction supports *exact selects* ``sigma_{attr=value}``.  The
AST mirrors that: a :class:`Selection` is one equality predicate, a
:class:`ConjunctiveSelection` is a conjunction of several (evaluated by the
construction as an intersection of per-predicate results), and a
:class:`Projection` optionally narrows the output attributes.  All nodes are
immutable value objects so queries can serve as dictionary keys (e.g. in the
adversary's observation logs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.relational.errors import QueryError
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


class Query:
    """Marker base class of all query AST nodes."""


@dataclass(frozen=True)
class EqualityPredicate:
    """One ``attribute = value`` condition."""

    attribute: str
    value: object

    def matches(self, relation_tuple) -> bool:
        """Evaluate the predicate on one tuple."""
        return relation_tuple.value(self.attribute) == self.value

    def validate(self, schema: RelationSchema) -> None:
        """Check the attribute exists and the value has the right type."""
        try:
            attribute = schema.attribute(self.attribute)
            attribute.validate_value(self.value)
        except Exception as exc:
            raise QueryError(str(exc)) from exc

    def __repr__(self) -> str:
        return f"{self.attribute} = {self.value!r}"


@dataclass(frozen=True)
class Selection(Query):
    """An exact select ``sigma_{attribute = value}(R)``."""

    predicate: EqualityPredicate

    @classmethod
    def equals(cls, attribute: str, value: object) -> "Selection":
        """Convenience constructor."""
        return cls(EqualityPredicate(attribute, value))

    @property
    def attribute(self) -> str:
        """The selected attribute name."""
        return self.predicate.attribute

    @property
    def value(self) -> object:
        """The value the attribute is compared against."""
        return self.predicate.value

    def validate(self, schema: RelationSchema) -> None:
        """Validate against a schema."""
        self.predicate.validate(schema)

    def predicates(self) -> tuple[EqualityPredicate, ...]:
        """Uniform access shared with :class:`ConjunctiveSelection`."""
        return (self.predicate,)

    def __repr__(self) -> str:
        return f"σ[{self.predicate!r}]"


@dataclass(frozen=True)
class ConjunctiveSelection(Query):
    """A conjunction of exact selects ``sigma_{a1=v1 AND a2=v2 AND ...}(R)``."""

    conditions: tuple[EqualityPredicate, ...]

    def __post_init__(self) -> None:
        if not self.conditions:
            raise QueryError("a conjunctive selection needs at least one predicate")
        attributes = [p.attribute for p in self.conditions]
        if len(set(attributes)) != len(attributes):
            raise QueryError("conjunctive selections must not repeat an attribute")

    @classmethod
    def of(cls, *pairs: tuple[str, object]) -> "ConjunctiveSelection":
        """Build from ``(attribute, value)`` pairs."""
        return cls(tuple(EqualityPredicate(a, v) for a, v in pairs))

    def validate(self, schema: RelationSchema) -> None:
        """Validate every predicate against a schema."""
        for predicate in self.conditions:
            predicate.validate(schema)

    def predicates(self) -> tuple[EqualityPredicate, ...]:
        """The conjuncts."""
        return self.conditions

    def __repr__(self) -> str:
        inner = " AND ".join(repr(p) for p in self.conditions)
        return f"σ[{inner}]"


@dataclass(frozen=True)
class Projection(Query):
    """A projection ``pi_{attributes}(inner)`` over a selection."""

    inner: Query
    attributes: tuple[str, ...] = field(default_factory=tuple)

    def validate(self, schema: RelationSchema) -> None:
        """Validate the projected attributes and the inner query."""
        for name in self.attributes:
            if not schema.has_attribute(name):
                raise QueryError(f"unknown attribute {name!r} in projection")
        validate = getattr(self.inner, "validate", None)
        if validate is not None:
            validate(schema)

    def __repr__(self) -> str:
        cols = ", ".join(self.attributes) if self.attributes else "*"
        return f"π[{cols}]({self.inner!r})"


def selection_predicates(query: Query) -> Sequence[EqualityPredicate]:
    """Return the equality predicates of a (possibly projected) selection query."""
    if isinstance(query, Projection):
        return selection_predicates(query.inner)
    if isinstance(query, (Selection, ConjunctiveSelection)):
        return query.predicates()
    raise QueryError(f"unsupported query node {type(query).__name__}")


def full_relation_scan(relation: Relation) -> Relation:
    """Identity query helper: a copy of the whole relation."""
    return Relation(relation.schema, relation.tuples)
