"""Exception hierarchy of the relational substrate."""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for all relational-layer errors."""


class SchemaError(RelationalError):
    """A schema, attribute or tuple violates a structural constraint."""


class QueryError(RelationalError):
    """A query is malformed or refers to unknown attributes."""


class EncodingError(RelationalError):
    """An attribute value cannot be encoded into (or decoded from) bytes."""


class SqlParseError(QueryError):
    """A SQL string could not be parsed into the supported fragment."""
