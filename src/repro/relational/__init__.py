"""Relational database substrate.

The paper outsources *relations* and evaluates *relational operations* (exact
selects) over them.  This package implements that substrate from scratch:

* :mod:`repro.relational.types` / :mod:`repro.relational.schema` -- typed
  attributes and relation schemas (e.g. ``Emp(name:string[9], dept:string[5],
  salary:int)`` from the paper's Section 3 example).
* :mod:`repro.relational.tuples` / :mod:`repro.relational.relation` -- tuples
  and relations with multiset semantics.
* :mod:`repro.relational.query` -- the query AST: exact-match selections
  (``sigma_{attr=value}``), conjunctions of them, and projections.
* :mod:`repro.relational.sql` -- a small SQL parser covering the
  ``SELECT ... FROM ... WHERE attr = value [AND ...]`` fragment used in the
  paper's examples.
* :mod:`repro.relational.engine` -- a plaintext query engine, used both as the
  reference semantics for correctness tests and as the client-side
  post-filtering step of the database-PH construction.
* :mod:`repro.relational.encoding` -- the byte encoding of attribute values
  that feeds the fixed-width word layout of the searchable scheme.
"""

from repro.relational.engine import PlaintextEngine, evaluate
from repro.relational.errors import (
    EncodingError,
    QueryError,
    RelationalError,
    SchemaError,
)
from repro.relational.query import (
    ConjunctiveSelection,
    EqualityPredicate,
    Projection,
    Query,
    Selection,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql import parse_sql
from repro.relational.tuples import RelationTuple
from repro.relational.types import AttributeType

__all__ = [
    "PlaintextEngine",
    "evaluate",
    "EncodingError",
    "QueryError",
    "RelationalError",
    "SchemaError",
    "ConjunctiveSelection",
    "EqualityPredicate",
    "Projection",
    "Query",
    "Selection",
    "Relation",
    "Attribute",
    "RelationSchema",
    "parse_sql",
    "RelationTuple",
    "AttributeType",
]
