"""Byte encoding of attribute values and tuples.

Two encodings live here:

* **Value encoding** -- how a single attribute value becomes the byte string
  that is padded into a searchable word (:class:`ValueCodec`).  Strings are
  ASCII; integers are rendered in decimal exactly as the paper's
  ``"7500######S"`` example shows.
* **Tuple encoding** -- a reversible serialization of a whole tuple
  (:class:`TupleCodec`), used as the payload of the authenticated tuple
  ciphertext so the client can recover full tuples without relying on word
  decryption alone.
"""

from __future__ import annotations

from repro.relational.errors import EncodingError
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.tuples import RelationTuple
from repro.relational.types import AttributeType


class ValueCodec:
    """Encode and decode single attribute values as bytes."""

    @staticmethod
    def encode(attribute: Attribute, value) -> bytes:
        """Encode ``value`` for ``attribute`` (ASCII string / decimal integer)."""
        attribute.validate_value(value)
        if attribute.attribute_type is AttributeType.STRING:
            return str(value).encode("ascii")
        if attribute.attribute_type is AttributeType.INTEGER:
            return str(int(value)).encode("ascii")
        raise EncodingError(f"unsupported type {attribute.attribute_type}")  # pragma: no cover

    @staticmethod
    def decode(attribute: Attribute, raw: bytes):
        """Decode bytes produced by :meth:`encode` back into a Python value."""
        try:
            text = raw.decode("ascii")
        except UnicodeDecodeError as exc:
            raise EncodingError(f"value bytes are not ASCII: {raw!r}") from exc
        if attribute.attribute_type is AttributeType.STRING:
            return text
        if attribute.attribute_type is AttributeType.INTEGER:
            try:
                return int(text)
            except ValueError as exc:
                raise EncodingError(f"invalid integer encoding {text!r}") from exc
        raise EncodingError(f"unsupported type {attribute.attribute_type}")  # pragma: no cover


class TupleCodec:
    """Reversible length-prefixed serialization of whole tuples.

    Wire format: for each attribute in schema order,
    ``len(value_bytes) (2 bytes big-endian) || value_bytes``.
    """

    def __init__(self, schema: RelationSchema) -> None:
        self._schema = schema

    @property
    def schema(self) -> RelationSchema:
        """The schema this codec serializes tuples of."""
        return self._schema

    def encode(self, relation_tuple: RelationTuple) -> bytes:
        """Serialize a tuple."""
        if relation_tuple.schema != self._schema:
            raise EncodingError("tuple schema does not match codec schema")
        parts = []
        for attribute in self._schema.attributes:
            raw = ValueCodec.encode(attribute, relation_tuple.value(attribute.name))
            if len(raw) > 0xFFFF:
                raise EncodingError("encoded value too long")
            parts.append(len(raw).to_bytes(2, "big") + raw)
        return b"".join(parts)

    def decode(self, raw: bytes) -> RelationTuple:
        """Parse bytes produced by :meth:`encode` back into a tuple."""
        values = {}
        offset = 0
        for attribute in self._schema.attributes:
            if offset + 2 > len(raw):
                raise EncodingError("truncated tuple encoding (missing length prefix)")
            length = int.from_bytes(raw[offset: offset + 2], "big")
            offset += 2
            if offset + length > len(raw):
                raise EncodingError("truncated tuple encoding (missing value bytes)")
            values[attribute.name] = ValueCodec.decode(
                attribute, raw[offset: offset + length]
            )
            offset += length
        if offset != len(raw):
            raise EncodingError("trailing bytes after tuple encoding")
        return RelationTuple(self._schema, values)


def word_value_width(schema: RelationSchema) -> int:
    """Return the paper's globally fixed value width: the longest attribute width."""
    return schema.max_value_length()
