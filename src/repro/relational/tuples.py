"""Relation tuples.

A :class:`RelationTuple` is an immutable mapping from attribute names to typed
values, validated against a :class:`~repro.relational.schema.RelationSchema`.
Tuples are hashable so relations can compare themselves with multiset
semantics, which is what the homomorphism property of Definition 1.1 is stated
over (``E_k(sigma_i(R)) = psi_i(E_k(R))`` as sets of tuple ciphertexts).
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.relational.errors import SchemaError
from repro.relational.schema import RelationSchema


class RelationTuple(Mapping):
    """An immutable tuple of a relation, keyed by attribute name."""

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: RelationSchema, values: Mapping[str, object]) -> None:
        missing = set(schema.attribute_names) - set(values)
        if missing:
            raise SchemaError(f"missing values for attributes: {sorted(missing)}")
        extra = set(values) - set(schema.attribute_names)
        if extra:
            raise SchemaError(f"values for unknown attributes: {sorted(extra)}")
        for attribute in schema.attributes:
            attribute.validate_value(values[attribute.name])
        self._schema = schema
        self._values = tuple(values[name] for name in schema.attribute_names)

    @property
    def schema(self) -> RelationSchema:
        """The schema this tuple conforms to."""
        return self._schema

    def value(self, attribute_name: str) -> object:
        """Return the value of one attribute."""
        index = self._schema.attribute_names.index(attribute_name)
        return self._values[index]

    def as_dict(self) -> dict[str, object]:
        """Return a plain ``{attribute: value}`` dictionary."""
        return dict(zip(self._schema.attribute_names, self._values))

    def project(self, attribute_names: list[str]) -> tuple:
        """Return the values of the named attributes, in the requested order."""
        return tuple(self.value(name) for name in attribute_names)

    # Mapping interface -------------------------------------------------- #

    def __getitem__(self, key: str) -> object:
        if key not in self._schema.attribute_names:
            raise KeyError(key)
        return self.value(key)

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.attribute_names)

    def __len__(self) -> int:
        return len(self._values)

    # Value semantics ---------------------------------------------------- #

    def __eq__(self, other) -> bool:
        if not isinstance(other, RelationTuple):
            return NotImplemented
        return self._schema == other._schema and self._values == other._values

    def __hash__(self) -> int:
        return hash((self._schema, self._values))

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{name}={value!r}"
            for name, value in zip(self._schema.attribute_names, self._values)
        )
        return f"<{self._schema.name}: {pairs}>"
