"""The passive hospital inference attack (paper, Section 2).

Alex outsources the hospital statistics database and issues the four queries::

    SELECT * FROM table WHERE hospital = 1;
    SELECT * FROM table WHERE hospital = 2;
    SELECT * FROM table WHERE hospital = 3;
    SELECT * FROM table WHERE outcome = 'fatal';

Eve observes only ciphertext -- the encrypted queries and, because she runs
the server, the sets of matching tuple ciphertexts.  Knowing the schema, the
number of hospitals and good estimates of the patient-flow distribution
(0.2 / 0.3 / 0.5) and the fatal/healthy ratio (0.08 / 0.92), she

1. identifies which encrypted query is which, by matching observed result
   sizes against the expected sizes ("From the size of the results and the
   fact that we only have exact selects, Eve can guess the exact queries with
   high confidence"), and
2. intersects the answer sets: ``|hospital_i ∩ fatal| / |hospital_i|`` is the
   fatality ratio of hospital ``i`` -- sensitive information recovered without
   breaking any cryptography.

The attack works against *any* database PH, including the paper's own
construction, because it uses nothing but result sizes and overlaps: this is
exactly why Theorem 2.1 rules out security once queries flow (q > 0).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dph import DatabasePrivacyHomomorphism
from repro.security.adversaries import ChallengeView, ObservedQuery
from repro.workloads.hospital import FATAL, HospitalWorkload


@dataclass(frozen=True)
class HospitalQueryIdentification:
    """Eve's guess of which observed query plays which role."""

    #: Index (into the observed query list) Eve assigns to each hospital number.
    hospital_queries: dict[int, int]
    #: Index Eve assigns to the ``outcome = 'fatal'`` query.
    fatal_query: int
    #: Whether every assignment matches the ground truth.
    correct: bool


@dataclass(frozen=True)
class HospitalInferenceResult:
    """Outcome of the inference attack."""

    identification: HospitalQueryIdentification
    #: Eve's estimate of the fatality ratio per hospital number.
    estimated_fatality: dict[int, float]
    #: Ground-truth fatality ratio per hospital number.
    true_fatality: dict[int, float]

    @property
    def identification_correct(self) -> bool:
        """Whether Eve matched every encrypted query to its plaintext role."""
        return self.identification.correct

    def absolute_error(self, hospital: int) -> float:
        """Absolute error of Eve's fatality estimate for one hospital."""
        return abs(self.estimated_fatality[hospital] - self.true_fatality[hospital])

    @property
    def max_absolute_error(self) -> float:
        """Worst-case absolute error across hospitals."""
        return max(self.absolute_error(h) for h in self.true_fatality)


def observe_alex_queries(
    dph: DatabasePrivacyHomomorphism,
    workload: HospitalWorkload,
) -> tuple[ChallengeView, list[int]]:
    """Simulate Alex's behaviour and return Eve's view.

    Alex encrypts the database and issues the four queries of the paper's
    example; the returned permutation records, for testing, which observed
    position corresponds to which plaintext query (Eve does not get it).
    """
    encrypted = dph.encrypt_relation(workload.relation)
    evaluator = dph.server_evaluator()
    observed = []
    roles = []
    for role_index, query in enumerate(workload.alex_queries()):
        encrypted_query = dph.encrypt_query(query)
        result = evaluator.evaluate(encrypted_query, encrypted)
        observed.append(ObservedQuery(encrypted_query=encrypted_query, result=result.matching))
        roles.append(role_index)
    view = ChallengeView(
        schema=workload.schema,
        encrypted_relation=encrypted,
        evaluator=evaluator,
        observed_queries=tuple(observed),
    )
    return view, roles


def run_hospital_inference(
    dph: DatabasePrivacyHomomorphism,
    workload: HospitalWorkload,
    view: ChallengeView | None = None,
    true_roles: list[int] | None = None,
) -> HospitalInferenceResult:
    """Run Eve's inference given her view of Alex's session.

    ``view`` may be supplied directly (e.g. with the observed queries shuffled);
    otherwise Alex's session is simulated with :func:`observe_alex_queries`.
    """
    if view is None:
        view, true_roles = observe_alex_queries(dph, workload)
    if true_roles is None:
        true_roles = list(range(len(view.observed_queries)))

    total = len(view.encrypted_relation)
    observed = list(view.observed_queries)
    identification = _identify_queries(observed, workload, total, true_roles)

    fatal_ids = observed[identification.fatal_query].result_tuple_ids()
    estimated = {}
    for hospital, query_index in identification.hospital_queries.items():
        hospital_ids = observed[query_index].result_tuple_ids()
        if not hospital_ids:
            estimated[hospital] = 0.0
        else:
            estimated[hospital] = len(hospital_ids & fatal_ids) / len(hospital_ids)

    true_fatality = {
        hospital: workload.true_fatality_ratio(hospital) for hospital in workload.hospitals
    }
    return HospitalInferenceResult(
        identification=identification,
        estimated_fatality=estimated,
        true_fatality=true_fatality,
    )


def _identify_queries(
    observed: list[ObservedQuery],
    workload: HospitalWorkload,
    total: int,
    true_roles: list[int],
) -> HospitalQueryIdentification:
    """Match observed result sizes against the expected sizes of Eve's priors."""
    expected = [flow * total for flow in workload.flows]
    expected.append(workload.outcome_rates[0] * total)

    # Greedy assignment: each expected role picks the closest unassigned
    # observation.  With the paper's well-separated priors this is optimal.
    remaining = set(range(len(observed)))
    assignment: dict[int, int] = {}
    for role in sorted(range(len(expected)), key=lambda r: expected[r]):
        best = min(remaining, key=lambda i: abs(observed[i].result_size - expected[role]))
        assignment[role] = best
        remaining.discard(best)

    hospital_queries = {
        hospital: assignment[index] for index, hospital in enumerate(workload.hospitals)
    }
    fatal_query = assignment[len(expected) - 1]

    correct = all(
        true_roles[assignment[role]] == role for role in range(len(expected))
    )
    return HospitalQueryIdentification(
        hospital_queries=hospital_queries,
        fatal_query=fatal_query,
        correct=correct,
    )
