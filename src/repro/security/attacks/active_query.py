"""The active query-oracle attack ("John", paper Section 2).

"Suppose there was a patient 'John' and Eve wants to find out in which
hospital he was treated and what happened to him.  She issues the encryption
of query ``sigma_{name:John}`` using the query encryption oracle.  Then Eve
issues encryptions of queries ``sigma_{hospital:X}``, X in {1, 2, 3}.  By
intersecting the results of the four queries issued, Eve can determine the
hospital where John was treated.  Analogously, she can find his status."

The attack needs nothing but the query-encryption oracle and the ability to
run the server's own (keyless) evaluation -- both of which the paper argues a
realistic adversary has.  Like the passive inference attack it works against
*every* database PH; experiment E6 runs it against the paper's construction
and all baselines and reports the success probability and oracle budget used.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dph import DatabasePrivacyHomomorphism
from repro.relational.query import Selection
from repro.security.adversaries import ChallengeView, QueryEncryptionOracle
from repro.workloads.hospital import FATAL, HEALTHY, HospitalWorkload


@dataclass(frozen=True)
class ActiveQueryAttackResult:
    """Outcome of the "John" attack."""

    target_name: str
    inferred_hospital: int | None
    inferred_outcome: str | None
    true_hospital: int | None
    true_outcome: str | None
    oracle_queries_used: int

    @property
    def hospital_correct(self) -> bool:
        """Whether Eve identified the target's hospital."""
        return self.inferred_hospital is not None and self.inferred_hospital == self.true_hospital

    @property
    def outcome_correct(self) -> bool:
        """Whether Eve identified the target's outcome."""
        return self.inferred_outcome is not None and self.inferred_outcome == self.true_outcome

    @property
    def fully_successful(self) -> bool:
        """Both the hospital and the outcome were recovered."""
        return self.hospital_correct and self.outcome_correct


def run_active_query_attack(
    dph: DatabasePrivacyHomomorphism,
    workload: HospitalWorkload,
    oracle_budget: int = 6,
) -> ActiveQueryAttackResult:
    """Run the attack end to end.

    The oracle budget covers the name query, one query per hospital and one
    query for the fatal outcome (the healthy outcome is inferred by
    elimination when the budget allows only that); the paper's minimal version
    uses ``q = 4`` for the hospital alone.
    """
    if workload.target_name is None:
        raise ValueError("the workload must be generated with a target patient")

    encrypted = dph.encrypt_relation(workload.relation)
    evaluator = dph.server_evaluator()
    view = ChallengeView(
        schema=workload.schema,
        encrypted_relation=encrypted,
        evaluator=evaluator,
    )
    oracle = QueryEncryptionOracle(dph, oracle_budget)

    # 1. Locate the target's tuple ciphertexts.
    name_observation = view.evaluate(
        oracle.encrypt_query(Selection.equals("name", workload.target_name))
    )
    target_ids = name_observation.result_tuple_ids()

    # 2. One query per hospital; the one whose result intersects the target's
    #    identifies the hospital.
    inferred_hospital = None
    for hospital in workload.hospitals:
        if oracle.remaining < 1:
            break
        observation = view.evaluate(
            oracle.encrypt_query(Selection.equals("hospital", hospital))
        )
        if target_ids & observation.result_tuple_ids():
            inferred_hospital = hospital
            break

    # 3. Analogously for the outcome; with a tight budget, membership in the
    #    'fatal' result decides, otherwise 'healthy' by elimination.
    inferred_outcome = None
    if oracle.remaining >= 1:
        fatal_observation = view.evaluate(
            oracle.encrypt_query(Selection.equals("outcome", FATAL))
        )
        if target_ids & fatal_observation.result_tuple_ids():
            inferred_outcome = FATAL
        else:
            inferred_outcome = HEALTHY

    return ActiveQueryAttackResult(
        target_name=workload.target_name,
        inferred_hospital=inferred_hospital,
        inferred_outcome=inferred_outcome,
        true_hospital=workload.target_hospital,
        true_outcome=workload.target_outcome,
        oracle_queries_used=oracle.used,
    )
