"""Frequency analysis of deterministic searchable fields.

The paper's Section 2 argues that Eve should be assumed to have "good
estimates of the distribution" of the data.  Against schemes whose searchable
fields are *deterministic* (bucketization, hashed indexes, deterministic
encryption) such priors are devastating even at q = 0: Eve counts how often
each distinct field value occurs, sorts plaintext values by their prior
probability, and matches the two rankings.  Against the randomized
construction of Section 3 every field value is unique, so the same procedure
recovers nothing.

:func:`run_frequency_attack` implements the rank-matching attack and scores it
against the ground truth; it backs the ablation test suite and the
``outsourced_employee_db`` example's "what leaks" discussion.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.dph import DatabasePrivacyHomomorphism, EncryptedRelation
from repro.relational.relation import Relation


@dataclass(frozen=True)
class FrequencyAttackResult:
    """Outcome of the frequency-analysis attack on one attribute."""

    attribute: str
    #: Eve's mapping from ciphertext field value to guessed plaintext value.
    recovered_mapping: dict[bytes, object]
    #: Number of tuples whose attribute value Eve guessed correctly.
    correctly_recovered_tuples: int
    #: Total number of tuples in the relation.
    total_tuples: int
    #: Number of distinct ciphertext field values observed.
    distinct_fields: int

    @property
    def recovery_rate(self) -> float:
        """Fraction of tuples whose value was recovered."""
        if self.total_tuples == 0:
            return 0.0
        return self.correctly_recovered_tuples / self.total_tuples


def run_frequency_attack(
    dph: DatabasePrivacyHomomorphism,
    relation: Relation,
    attribute: str,
    value_prior: dict[object, float] | None = None,
    encrypted_relation: EncryptedRelation | None = None,
) -> FrequencyAttackResult:
    """Match ciphertext-field frequencies against a plaintext prior.

    Parameters
    ----------
    dph:
        The scheme under attack (used only to encrypt, playing Alex's role).
    relation:
        The plaintext relation (ground truth for scoring; Eve never sees it).
    attribute:
        The attribute Eve tries to recover.
    value_prior:
        Eve's prior: plaintext value -> estimated probability.  Defaults to the
        exact empirical distribution of ``relation`` (the strongest reasonable
        prior, as the paper recommends assuming).
    encrypted_relation:
        An already-encrypted copy; encrypted fresh when omitted.
    """
    schema = relation.schema
    position = schema.attribute_names.index(attribute)
    if encrypted_relation is None:
        encrypted_relation = dph.encrypt_relation(relation)
    if len(encrypted_relation) != len(relation):
        raise ValueError("encrypted relation does not match the plaintext relation")

    if value_prior is None:
        counts = Counter(t.value(attribute) for t in relation)
        total = max(1, len(relation))
        value_prior = {value: count / total for value, count in counts.items()}

    # Eve's observation: frequency of each distinct field value at `position`.
    field_counts = Counter(
        t.search_fields[position]
        for t in encrypted_relation.encrypted_tuples
        if position < len(t.search_fields)
    )

    # Rank matching: most frequent field <-> most probable plaintext value.
    ranked_fields = [field for field, _ in field_counts.most_common()]
    ranked_values = [
        value for value, _ in sorted(value_prior.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    ]
    recovered = {
        field: ranked_values[rank]
        for rank, field in enumerate(ranked_fields)
        if rank < len(ranked_values)
    }

    # Score against ground truth, tuple by tuple (Eve cannot do this herself).
    correct = 0
    for plaintext_tuple, encrypted_tuple in zip(
        relation.tuples, encrypted_relation.encrypted_tuples
    ):
        if position >= len(encrypted_tuple.search_fields):
            continue
        guess = recovered.get(encrypted_tuple.search_fields[position])
        if guess is not None and guess == plaintext_tuple.value(attribute):
            correct += 1

    return FrequencyAttackResult(
        attribute=attribute,
        recovered_mapping=recovered,
        correctly_recovered_tuples=correct,
        total_tuples=len(relation),
        distinct_fields=len(field_counts),
    )
