"""Calibration adversaries for the indistinguishability games.

These adversaries bracket the attack spectrum so the game machinery itself can
be validated:

* :class:`RandomGuessAdversary` -- ignores the challenge entirely; its
  advantage must be statistically indistinguishable from 0 against *every*
  scheme (otherwise the game runner is biased).
* :class:`KnownValueAdversary` -- reads the searchable fields as if they were
  plaintext; its advantage must be ~1 against the :class:`PlaintextDph`
  passthrough and ~0 against every encrypting scheme.
* :class:`CiphertextSizeAdversary` -- decides from the total ciphertext size;
  because the games require equal-size challenge tables and the schemes pad
  attribute values to fixed widths, its advantage must stay ~0, confirming
  that no size side-channel was introduced by accident.
"""

from __future__ import annotations

import hashlib

from repro.relational.encoding import ValueCodec
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.security.adversaries import (
    ChallengeView,
    PassiveAdversary,
    QueryEncryptionOracle,
    SecurityError,
)


class RandomGuessAdversary(PassiveAdversary):
    """Guesses pseudo-randomly from a hash of the ciphertext (advantage ~0)."""

    name = "random-guess"

    def __init__(self, table_1: Relation, table_2: Relation) -> None:
        self._table_1 = table_1
        self._table_2 = table_2

    def choose_tables(self, schema: RelationSchema | None = None) -> tuple[Relation, Relation]:
        """Present the configured pair."""
        return self._table_1, self._table_2

    def guess(
        self, view: ChallengeView, oracle: QueryEncryptionOracle | None = None
    ) -> int:
        """Hash everything Eve sees and use one bit of it."""
        digest = hashlib.sha256()
        for encrypted_tuple in view.encrypted_relation.encrypted_tuples:
            digest.update(encrypted_tuple.tuple_id)
            digest.update(encrypted_tuple.payload)
            for field in encrypted_tuple.search_fields:
                digest.update(field)
        return 1 + (digest.digest()[0] & 1)


class KnownValueAdversary(PassiveAdversary):
    """Looks for the plaintext encoding of a value unique to table 1.

    ``distinguishing_attribute`` must have a value that occurs in table 1 but
    not in table 2; if its *plaintext encoding* shows up verbatim among the
    searchable fields, the scheme stored the value in the clear.
    """

    name = "known-value"

    def __init__(
        self,
        table_1: Relation,
        table_2: Relation,
        distinguishing_attribute: str,
    ) -> None:
        schema = table_1.schema
        attribute = schema.attribute(distinguishing_attribute)
        only_in_1 = table_1.distinct_values(distinguishing_attribute) - table_2.distinct_values(
            distinguishing_attribute
        )
        if not only_in_1:
            raise SecurityError(
                f"attribute {distinguishing_attribute!r} has no value unique to table 1"
            )
        self._table_1 = table_1
        self._table_2 = table_2
        self._needles = {ValueCodec.encode(attribute, v) for v in only_in_1}

    def choose_tables(self, schema: RelationSchema | None = None) -> tuple[Relation, Relation]:
        """Present the configured pair."""
        return self._table_1, self._table_2

    def guess(
        self, view: ChallengeView, oracle: QueryEncryptionOracle | None = None
    ) -> int:
        """Guess 1 iff a plaintext-encoded needle value appears in any field."""
        for encrypted_tuple in view.encrypted_relation.encrypted_tuples:
            for field in encrypted_tuple.search_fields:
                if field in self._needles:
                    return 1
        return 2


class CiphertextSizeAdversary(PassiveAdversary):
    """Guesses from the total size of the encrypted relation."""

    name = "ciphertext-size"

    def __init__(self, table_1: Relation, table_2: Relation) -> None:
        self._table_1 = table_1
        self._table_2 = table_2
        self._reference_size: int | None = None

    def choose_tables(self, schema: RelationSchema | None = None) -> tuple[Relation, Relation]:
        """Present the configured pair."""
        return self._table_1, self._table_2

    def guess(
        self, view: ChallengeView, oracle: QueryEncryptionOracle | None = None
    ) -> int:
        """Compare the challenge size against the first size ever observed.

        Equal-size challenge tables produce equal ciphertext sizes under every
        scheme in the library, so this adversary degenerates to a constant
        guess -- which is the point: it certifies that no size side-channel
        distinguishes the tables.
        """
        size = view.encrypted_relation.size_in_bytes()
        if self._reference_size is None:
            self._reference_size = size
            return 1
        if size < self._reference_size:
            return 1
        if size > self._reference_size:
            return 2
        return 1
