"""Concrete attacks from the paper.

* :mod:`repro.security.attacks.equality_pattern` -- the Section-1
  distinguishing attack on deterministic weak encryptions (the two-salary-table
  example), effective against bucketization, hashed indexes and deterministic
  encryption.
* :mod:`repro.security.attacks.statistical` -- calibration adversaries
  (random guess, known-plaintext value, ciphertext size) used to validate the
  game machinery and to probe the Section-3 construction at ``q = 0``.
* :mod:`repro.security.attacks.hospital_inference` -- the Section-2 passive
  inference attack recovering per-hospital fatality ratios from result sizes
  and intersections.
* :mod:`repro.security.attacks.active_query` -- the Section-2 active attack
  locating the record of a known patient ("John") with a handful of oracle
  queries.
"""

from repro.security.attacks.active_query import (
    ActiveQueryAttackResult,
    run_active_query_attack,
)
from repro.security.attacks.frequency import (
    FrequencyAttackResult,
    run_frequency_attack,
)
from repro.security.attacks.equality_pattern import (
    EqualityPatternAdversary,
    SalaryPairAdversary,
    employee_salary_schema,
    paper_salary_tables,
)
from repro.security.attacks.hospital_inference import (
    HospitalInferenceResult,
    observe_alex_queries,
    run_hospital_inference,
)
from repro.security.attacks.statistical import (
    CiphertextSizeAdversary,
    KnownValueAdversary,
    RandomGuessAdversary,
)

__all__ = [
    "FrequencyAttackResult",
    "run_frequency_attack",
    "ActiveQueryAttackResult",
    "run_active_query_attack",
    "EqualityPatternAdversary",
    "SalaryPairAdversary",
    "employee_salary_schema",
    "paper_salary_tables",
    "HospitalInferenceResult",
    "observe_alex_queries",
    "run_hospital_inference",
    "CiphertextSizeAdversary",
    "KnownValueAdversary",
    "RandomGuessAdversary",
]
