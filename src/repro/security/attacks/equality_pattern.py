"""The paper's distinguishing attack on deterministic weak encryptions.

Section 1 of the paper breaks the Hacigumus bucketization scheme with two
two-tuple tables::

    table 1:  (ID 171, salary 4900)     table 2:  (ID 171, salary 4900)
              (ID 481, salary 1200)               (ID 481, salary 4900)

"The salaries in the first table will be mapped to different intervals with
high probability.  The salaries in the second table will be mapped to the same
interval.  Since the intervals are encrypted deterministically, [...] Eve can
determine with high probability to which table corresponds the received
ciphertext."  The same idea applies to the Damiani hashed-index scheme and to
plain deterministic encryption; it fails against the randomized construction
of Section 3, whose searchable fields carry no equality pattern.

:class:`EqualityPatternAdversary` implements the attack generically (guess
"table 2" iff two tuples share a searchable field in the same position);
:class:`SalaryPairAdversary` pins it to the paper's exact example.
"""

from __future__ import annotations

from collections import Counter

from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.security.adversaries import (
    ChallengeView,
    PassiveAdversary,
    QueryEncryptionOracle,
)


def employee_salary_schema() -> RelationSchema:
    """The two-column schema of the paper's example tables."""
    return RelationSchema(
        "salaries",
        [Attribute.integer("id", 6), Attribute.integer("salary", 6)],
    )


def paper_salary_tables() -> tuple[Relation, Relation]:
    """The exact tables of the paper's Section 1 attack."""
    schema = employee_salary_schema()
    table_1 = Relation.from_rows(schema, [(171, 4900), (481, 1200)])
    table_2 = Relation.from_rows(schema, [(171, 4900), (481, 4900)])
    return table_1, table_2


class EqualityPatternAdversary(PassiveAdversary):
    """Guess "table 2" iff any searchable field value repeats across tuples.

    Parameters
    ----------
    table_unique:
        The challenge table whose attribute values are pairwise distinct
        (presented as table 1).
    table_repeated:
        The challenge table containing a repeated value (presented as table 2).
    """

    name = "equality-pattern"

    def __init__(self, table_unique: Relation, table_repeated: Relation) -> None:
        self._table_unique = table_unique
        self._table_repeated = table_repeated
        self._target_positions = self._distinguishing_positions(table_unique, table_repeated)

    @property
    def schema(self) -> RelationSchema:
        """Schema of the challenge tables."""
        return self._table_unique.schema

    def choose_tables(self, schema: RelationSchema | None = None) -> tuple[Relation, Relation]:
        """Present ``(unique, repeated)`` as the challenge pair."""
        return self._table_unique, self._table_repeated

    def guess(
        self, view: ChallengeView, oracle: QueryEncryptionOracle | None = None
    ) -> int:
        """Look for a repeated searchable field at a distinguishing attribute position.

        Eve constructed both tables herself, so she knows exactly which
        attribute columns repeat a value in table 2 but not in table 1 (the
        "salary" column of the paper's example); she only inspects those.
        """
        if self._has_repeated_field(view, self._target_positions):
            return 2
        return 1

    @staticmethod
    def _distinguishing_positions(
        table_unique: Relation, table_repeated: Relation
    ) -> tuple[int, ...]:
        """Attribute positions whose values repeat in table 2 but not in table 1."""
        positions = []
        names = table_unique.schema.attribute_names
        for position, name in enumerate(names):
            unique_has_repeat = _has_value_repeat(table_unique, name)
            repeated_has_repeat = _has_value_repeat(table_repeated, name)
            if repeated_has_repeat and not unique_has_repeat:
                positions.append(position)
        return tuple(positions) if positions else tuple(range(len(names)))

    @staticmethod
    def _has_repeated_field(view: ChallengeView, positions: tuple[int, ...]) -> bool:
        tuples = view.encrypted_relation.encrypted_tuples
        if not tuples:
            return False
        for position in positions:
            counts = Counter(
                t.search_fields[position]
                for t in tuples
                if position < len(t.search_fields)
            )
            if counts and counts.most_common(1)[0][1] > 1:
                return True
        return False


def _has_value_repeat(relation: Relation, attribute_name: str) -> bool:
    """Whether any value of ``attribute_name`` occurs more than once."""
    values = [t.value(attribute_name) for t in relation]
    return len(set(values)) < len(values)


class SalaryPairAdversary(EqualityPatternAdversary):
    """The literal adversary of the paper's Section 1 example."""

    name = "salary-pair (paper, Sec. 1)"

    def __init__(self) -> None:
        table_1, table_2 = paper_salary_tables()
        super().__init__(table_1, table_2)
