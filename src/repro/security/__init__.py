"""Security framework: games, adversaries, attacks and advantage estimation.

This package turns the paper's definitional apparatus into executable
experiments:

* :mod:`repro.security.games` -- the indistinguishability game of
  Definition 1.2 and the database-PH game of Definition 2.1 (passive and
  active, parameterized by the query budget ``q``);
* :mod:`repro.security.adversaries` -- the adversary interface, Eve's view of
  a challenge and the query-encryption oracle;
* :mod:`repro.security.theorem21` -- generic adversaries realizing
  Theorem 2.1 (every database PH loses the game once ``q > 0``);
* :mod:`repro.security.attacks` -- the paper's concrete attacks (salary-table
  distinguisher, hospital inference, the active "John" attack) plus
  calibration adversaries.
"""

from repro.security.adversaries import (
    ActiveAdversary,
    Adversary,
    ChallengeView,
    ObservedQuery,
    OracleBudgetExceeded,
    PassiveAdversary,
    QueryEncryptionOracle,
    SecurityError,
)
from repro.security.games import (
    AdversaryModel,
    DphIndistinguishabilityGame,
    GameResult,
    IndistinguishabilityGame,
)
from repro.security.theorem21 import (
    GenericActiveAdversary,
    ResultSizeAdversary,
    theorem_schema,
)

__all__ = [
    "ActiveAdversary",
    "Adversary",
    "ChallengeView",
    "ObservedQuery",
    "OracleBudgetExceeded",
    "PassiveAdversary",
    "QueryEncryptionOracle",
    "SecurityError",
    "AdversaryModel",
    "DphIndistinguishabilityGame",
    "GameResult",
    "IndistinguishabilityGame",
    "GenericActiveAdversary",
    "ResultSizeAdversary",
    "theorem_schema",
]
