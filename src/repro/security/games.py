"""The indistinguishability games of Definitions 1.2 and 2.1.

* :class:`IndistinguishabilityGame` -- Definition 1.2 specialized to relations:
  Eve outputs two equal-size tables, Alex encrypts one chosen uniformly at
  random, Eve guesses which.  (``q = 0``: no queries are ever issued.)
* :class:`DphIndistinguishabilityGame` -- Definition 2.1: as above, but Eve
  additionally observes ``q`` encrypted queries issued against the challenge
  table (passive variant), or may obtain ``q`` encryptions of queries of her
  own choice through a query-encryption oracle (active variant).

Both games are run many times with fresh keys and the empirical winning
probability is reported as a :class:`~repro.analysis.stats.BinomialEstimate`,
so "Eve cannot win with probability 1/2 + non-negligible" becomes the testable
statement "the estimated advantage interval contains 0".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Sequence

from repro.analysis.stats import BinomialEstimate
from repro.core.dph import DatabasePrivacyHomomorphism
from repro.crypto.rng import DeterministicRng, RandomSource
from repro.relational.query import Query
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.security.adversaries import (
    Adversary,
    ChallengeView,
    ObservedQuery,
    QueryEncryptionOracle,
    SecurityError,
)

#: A factory producing a freshly keyed scheme for each game trial.
SchemeFactory = Callable[[RelationSchema, RandomSource], DatabasePrivacyHomomorphism]

#: A workload factory producing the plaintext queries Alex issues in the
#: passive game, given the table that was encrypted (Alex queries his own
#: data) and a randomness source.
QueryWorkload = Callable[[Relation, RandomSource], Sequence[Query]]


class AdversaryModel(Enum):
    """Which flavour of Definition 2.1 the game runs."""

    PASSIVE = "passive"
    ACTIVE = "active"


@dataclass(frozen=True)
class GameResult:
    """Outcome of running a game for many independent trials."""

    game_name: str
    adversary_name: str
    scheme_name: str
    estimate: BinomialEstimate

    @property
    def trials(self) -> int:
        """Number of independent trials."""
        return self.estimate.trials

    @property
    def wins(self) -> int:
        """Number of trials the adversary guessed correctly."""
        return self.estimate.successes

    @property
    def success_rate(self) -> float:
        """Empirical winning probability."""
        return self.estimate.proportion

    @property
    def advantage(self) -> float:
        """Empirical advantage ``2 * success_rate - 1``."""
        return self.estimate.advantage

    def secure_against(self, threshold: float = 0.1) -> bool:
        """Whether the scheme empirically resists this adversary."""
        return self.estimate.is_negligible(threshold)

    def broken_by(self, threshold: float = 0.5) -> bool:
        """Whether the adversary wins with clearly non-negligible advantage."""
        low, _ = self.estimate.advantage_interval
        return low > threshold


class IndistinguishabilityGame:
    """Definition 1.2 for tuple-by-tuple table encryption (``q = 0``)."""

    name = "IND (Def. 1.2, q=0)"

    def __init__(self, scheme_factory: SchemeFactory, scheme_name: str = "") -> None:
        self._scheme_factory = scheme_factory
        self._scheme_name = scheme_name

    def play_once(self, adversary: Adversary, rng: RandomSource) -> bool:
        """One trial: returns whether the adversary guessed correctly."""
        table_1, table_2 = adversary.choose_tables(self._probe_schema(adversary))
        _validate_tables(table_1, table_2)
        scheme = self._scheme_factory(table_1.schema, rng)
        secret_bit = rng.bit()  # 0 -> table 1, 1 -> table 2
        chosen = table_1 if secret_bit == 0 else table_2
        encrypted = scheme.encrypt_relation(chosen)
        view = ChallengeView(
            schema=chosen.schema,
            encrypted_relation=encrypted,
            evaluator=scheme.server_evaluator(),
        )
        guess = adversary.guess(view, oracle=None)
        if guess not in (1, 2):
            raise SecurityError(f"adversary guess must be 1 or 2, got {guess!r}")
        return (guess - 1) == secret_bit

    def run(
        self, adversary: Adversary, trials: int, seed: int = 0
    ) -> GameResult:
        """Run ``trials`` independent trials with a seeded randomness source."""
        wins = 0
        for trial in range(trials):
            rng = DeterministicRng(seed).fork(
                f"{self.name}/{self._scheme_name}/{adversary.name}/{trial}"
            )
            if self.play_once(adversary, rng):
                wins += 1
        return GameResult(
            game_name=self.name,
            adversary_name=adversary.name,
            scheme_name=self._scheme_name,
            estimate=BinomialEstimate(successes=wins, trials=trials),
        )

    @staticmethod
    def _probe_schema(adversary: Adversary) -> RelationSchema | None:
        # The adversary brings its own tables (and thus schema); the game only
        # forwards a schema if the adversary exposes one for convenience.
        return getattr(adversary, "schema", None)


class DphIndistinguishabilityGame(IndistinguishabilityGame):
    """Definition 2.1: the adversary additionally sees ``q`` encrypted queries."""

    def __init__(
        self,
        scheme_factory: SchemeFactory,
        query_budget: int,
        adversary_model: AdversaryModel = AdversaryModel.PASSIVE,
        query_workload: QueryWorkload | None = None,
        scheme_name: str = "",
    ) -> None:
        super().__init__(scheme_factory, scheme_name)
        if query_budget < 0:
            raise SecurityError("query budget q must be non-negative")
        if adversary_model is AdversaryModel.PASSIVE and query_budget > 0 and query_workload is None:
            raise SecurityError("the passive game with q > 0 needs a query workload")
        self._query_budget = query_budget
        self._model = adversary_model
        self._workload = query_workload
        self.name = (
            f"DPH-IND (Def. 2.1, q={query_budget}, {adversary_model.value})"
        )

    @property
    def query_budget(self) -> int:
        """The ``q`` of Definition 2.1."""
        return self._query_budget

    def play_once(self, adversary: Adversary, rng: RandomSource) -> bool:
        """One trial of the Definition 2.1 game."""
        table_1, table_2 = adversary.choose_tables(self._probe_schema(adversary))
        _validate_tables(table_1, table_2)
        scheme = self._scheme_factory(table_1.schema, rng)
        secret_bit = rng.bit()
        chosen = table_1 if secret_bit == 0 else table_2
        encrypted = scheme.encrypt_relation(chosen)
        evaluator = scheme.server_evaluator()

        observed: list[ObservedQuery] = []
        oracle: QueryEncryptionOracle | None = None
        if self._model is AdversaryModel.PASSIVE:
            if self._query_budget > 0:
                queries = list(self._workload(chosen, rng))[: self._query_budget]
                for query in queries:
                    encrypted_query = scheme.encrypt_query(query)
                    result = evaluator.evaluate(encrypted_query, encrypted)
                    observed.append(
                        ObservedQuery(encrypted_query=encrypted_query, result=result.matching)
                    )
        else:
            oracle = QueryEncryptionOracle(scheme, self._query_budget)

        view = ChallengeView(
            schema=chosen.schema,
            encrypted_relation=encrypted,
            evaluator=evaluator,
            observed_queries=tuple(observed),
        )
        guess = adversary.guess(view, oracle=oracle)
        if guess not in (1, 2):
            raise SecurityError(f"adversary guess must be 1 or 2, got {guess!r}")
        return (guess - 1) == secret_bit


def _validate_tables(table_1: Relation, table_2: Relation) -> None:
    """Enforce the admissibility condition of the games: same schema and size."""
    if table_1.schema != table_2.schema:
        raise SecurityError("challenge tables must share a schema")
    if len(table_1) != len(table_2):
        raise SecurityError(
            "challenge tables must contain the same number of tuples "
            f"({len(table_1)} != {len(table_2)})"
        )
