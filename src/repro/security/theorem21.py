"""Theorem 2.1, constructively: any database PH is insecure once queries flow.

    "Theorem 2.1.  Any database PH (K, E, Eq, D) is insecure in the sense of
     Definition 2.1 if q > 0."

The proof idea is that the homomorphic property itself betrays the data: an
encrypted query evaluated on the encrypted table produces an encrypted result
whose *size* equals the size of the plaintext result (up to the scheme's false
positives), and result sizes differ between adversarially chosen tables.  This
module turns that argument into executable adversaries that win the
Definition 2.1 game against **every** scheme in the library -- including the
paper's own construction -- whenever ``q > 0``:

* :class:`GenericActiveAdversary` -- uses one call to the query-encryption
  oracle: table 1 consists of tuples matching a known predicate, table 2 of
  tuples that do not; the oracle's trapdoor evaluated on the challenge reveals
  which.
* :class:`ResultSizeAdversary` -- the passive variant: Alex issues an ordinary
  exact select from his workload; the tables are crafted so that any such
  query returns half the table on table 1 and the whole table on table 2.

Together with the game runner these reproduce the paper's negative result,
and -- run with ``q = 0`` -- they degrade to advantage ~0, which is exactly
the relaxation under which the Section-3 construction is proved secure.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.rng import RandomSource
from repro.relational.query import Query, Selection
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.security.adversaries import (
    ActiveAdversary,
    ChallengeView,
    PassiveAdversary,
    QueryEncryptionOracle,
)

#: Attribute values used by the generic adversaries.
MATCHING_VALUE = "present"
OTHER_VALUE = "absent"


def theorem_schema() -> RelationSchema:
    """A minimal two-column schema for the generic Theorem 2.1 adversaries."""
    return RelationSchema(
        "thm21",
        [Attribute.string("marker", 8), Attribute.integer("row", 8)],
    )


def _marker_table(schema: RelationSchema, size: int, values: Sequence[str]) -> Relation:
    """A table whose ``marker`` column cycles through ``values``."""
    rows = [(values[i % len(values)], i) for i in range(size)]
    return Relation.from_rows(schema, rows)


class GenericActiveAdversary(ActiveAdversary):
    """Wins the active Definition 2.1 game against any correct database PH.

    Table 1 has every ``marker`` equal to :data:`MATCHING_VALUE`; table 2 has
    every ``marker`` equal to :data:`OTHER_VALUE`.  One oracle query for
    ``sigma_{marker=MATCHING_VALUE}``, evaluated by Eve on the challenge (she
    runs the server), returns ~all tuples on table 1 and ~none on table 2.
    The majority threshold absorbs the scheme's false positives.
    """

    name = "theorem-2.1 active"

    def __init__(self, table_size: int = 16) -> None:
        if table_size < 1:
            raise ValueError("table size must be at least 1")
        self._table_size = table_size
        self._schema = theorem_schema()

    @property
    def schema(self) -> RelationSchema:
        """Schema of the challenge tables."""
        return self._schema

    def choose_tables(self, schema: RelationSchema | None = None) -> tuple[Relation, Relation]:
        """All-matching versus none-matching tables of equal size."""
        table_1 = _marker_table(self._schema, self._table_size, [MATCHING_VALUE])
        table_2 = _marker_table(self._schema, self._table_size, [OTHER_VALUE])
        return table_1, table_2

    def guess(
        self, view: ChallengeView, oracle: QueryEncryptionOracle | None = None
    ) -> int:
        """One oracle call, one server evaluation, a majority decision."""
        if oracle is None or oracle.remaining < 1:
            # Without the oracle (q = 0) the attack has nothing to work with.
            return 1
        encrypted_query = oracle.encrypt_query(
            Selection.equals("marker", MATCHING_VALUE)
        )
        observed = view.evaluate(encrypted_query)
        if observed.result_size * 2 >= self._table_size:
            return 1
        return 2


class ResultSizeAdversary(PassiveAdversary):
    """Wins the passive Definition 2.1 game from result sizes alone.

    Table 1 splits its ``marker`` column evenly between two values; table 2
    uses a single value.  Whatever exact select Alex issues on the ``marker``
    column of his table, the result contains half the tuples on table 1 and
    all of them on table 2 -- so the observed result size decides the game.
    """

    name = "theorem-2.1 passive (result size)"

    def __init__(self, table_size: int = 16) -> None:
        if table_size < 2 or table_size % 2 != 0:
            raise ValueError("table size must be an even number >= 2")
        self._table_size = table_size
        self._schema = theorem_schema()

    @property
    def schema(self) -> RelationSchema:
        """Schema of the challenge tables."""
        return self._schema

    def choose_tables(self, schema: RelationSchema | None = None) -> tuple[Relation, Relation]:
        """Half/half versus single-value tables of equal size."""
        table_1 = _marker_table(
            self._schema, self._table_size, [MATCHING_VALUE, OTHER_VALUE]
        )
        table_2 = _marker_table(self._schema, self._table_size, [MATCHING_VALUE])
        return table_1, table_2

    def guess(
        self, view: ChallengeView, oracle: QueryEncryptionOracle | None = None
    ) -> int:
        """Decide from the largest observed result size."""
        if not view.observed_queries:
            return 1
        largest = max(q.result_size for q in view.observed_queries)
        if largest * 4 >= 3 * self._table_size:
            return 2
        return 1

    @staticmethod
    def workload(chosen_table: Relation, rng: RandomSource) -> list[Query]:
        """The query workload Alex runs: one exact select on a value he stores.

        Alex picks a value uniformly from the ``marker`` values actually
        present in his table -- this is ordinary, non-adversarial behaviour,
        which is the point of the passive variant.
        """
        values = sorted(chosen_table.distinct_values("marker"))
        return [Selection.equals("marker", rng.choice(values))]
