"""Adversary interfaces and the adversary's view of a challenge.

The security games of Definitions 1.2 and 2.1 are interactions between a
*challenger* (playing Alex) and an *adversary* (Eve).  This module defines

* :class:`ChallengeView` -- everything Eve gets to see: the encrypted table,
  the keyless server evaluator (she controls the server, so she can run
  ``psi`` as often as she wants), and any encrypted queries she passively
  observed together with their encrypted results;
* :class:`QueryEncryptionOracle` -- the query-encryption oracle of the active
  variant of Definition 2.1, with a budget of ``q`` uses;
* :class:`Adversary` -- the two-phase interface (choose tables, guess) every
  concrete attack implements.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.dph import (
    DatabasePrivacyHomomorphism,
    EncryptedQuery,
    EncryptedRelation,
    ServerEvaluator,
)
from repro.relational.query import Query
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


class SecurityError(Exception):
    """Base error of the security framework."""


class OracleBudgetExceeded(SecurityError):
    """The adversary asked the query-encryption oracle for more than ``q`` queries."""


@dataclass(frozen=True)
class ObservedQuery:
    """One encrypted query Eve observed, with the result the server computed.

    In the passive game these are queries Alex issued; Eve sees the ciphertext
    query ``psi_i`` and -- because she runs the server -- the set of matching
    tuple ciphertexts.
    """

    encrypted_query: EncryptedQuery
    result: EncryptedRelation

    @property
    def result_size(self) -> int:
        """Number of tuple ciphertexts the query returned."""
        return len(self.result)

    def result_tuple_ids(self) -> frozenset[bytes]:
        """The public identifiers of the matching tuple ciphertexts."""
        return frozenset(t.tuple_id for t in self.result.encrypted_tuples)


@dataclass
class ChallengeView:
    """Eve's complete view of one run of the game."""

    schema: RelationSchema
    encrypted_relation: EncryptedRelation
    evaluator: ServerEvaluator
    observed_queries: tuple[ObservedQuery, ...] = field(default_factory=tuple)

    def evaluate(self, encrypted_query: EncryptedQuery) -> ObservedQuery:
        """Run the keyless server evaluation herself (Eve controls the server)."""
        result = self.evaluator.evaluate(encrypted_query, self.encrypted_relation)
        return ObservedQuery(encrypted_query=encrypted_query, result=result.matching)


class QueryEncryptionOracle:
    """The ``Eq_k`` oracle of the active game, restricted to ``budget`` uses."""

    def __init__(self, dph: DatabasePrivacyHomomorphism, budget: int) -> None:
        if budget < 0:
            raise SecurityError("oracle budget must be non-negative")
        self._dph = dph
        self._budget = budget
        self._used = 0

    @property
    def budget(self) -> int:
        """Maximum number of queries the adversary may have encrypted."""
        return self._budget

    @property
    def used(self) -> int:
        """Number of oracle calls made so far."""
        return self._used

    @property
    def remaining(self) -> int:
        """Remaining oracle budget."""
        return self._budget - self._used

    def encrypt_query(self, query: Query) -> EncryptedQuery:
        """Encrypt a plaintext query of the adversary's choice."""
        if self._used >= self._budget:
            raise OracleBudgetExceeded(
                f"query encryption oracle budget of {self._budget} exhausted"
            )
        self._used += 1
        return self._dph.encrypt_query(query)


class Adversary(ABC):
    """A (passive or active) adversary for the indistinguishability games.

    The game proceeds in two phases:

    1. :meth:`choose_tables` -- Eve outputs two tables of the same size;
    2. :meth:`guess` -- Eve receives her view of the challenge (and, in the
       active game, a query-encryption oracle) and outputs 1 or 2.

    Implementations must be stateless across trials or reset themselves in
    :meth:`choose_tables`, because the game runner reuses one adversary object
    for many independent trials.
    """

    #: Human-readable attack name used in reports.
    name: str = "adversary"

    @abstractmethod
    def choose_tables(self, schema: RelationSchema) -> tuple[Relation, Relation]:
        """Output the two challenge tables ``(T1, T2)`` (equal tuple counts)."""

    @abstractmethod
    def guess(
        self, view: ChallengeView, oracle: QueryEncryptionOracle | None = None
    ) -> int:
        """Output 1 or 2: which table the challenge encrypts."""


class PassiveAdversary(Adversary):
    """Marker base class: never uses the oracle (ignores it if given one)."""


class ActiveAdversary(Adversary):
    """Marker base class: expects a :class:`QueryEncryptionOracle` in :meth:`guess`."""
