"""Server-side access methods: how a provider answers an exact select.

The provider's evaluate path is a strategy choice between two
:class:`AccessMethod` implementations:

* :class:`ScanAccess` -- the paper's baseline: run the relation's keyless
  evaluator over every stored ciphertext, O(data) work per query.
* :class:`IndexAccess` -- the client shipped an encrypted inverted index
  (``INDEX_PUT`` / ``INDEX_DELTA``): intersect the posting sets of the
  query's trapdoor labels and fetch the candidate ciphertexts by public
  tuple id, O(result) work per query.

:class:`RelationIndex` is the provider's in-memory view of one relation's
index.  It is *soft state*: losing it (restart, new shard, rebalance)
merely degrades that provider to the scan fallback embedded in every
``INDEX_LOOKUP`` -- it can never make an answer wrong, because the stored
relation stays the source of truth and candidate ids that the store does
not hold simply fetch nothing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable

from repro.core.dph import EncryptedRelation, EncryptedTuple, EvaluationResult
from repro.index.wire import IndexDelta, IndexLookupRequest, IndexSnapshot
from repro.obs import MetricsRegistry


class RelationIndex:
    """One relation's encrypted inverted index, as the provider holds it.

    Buckets arriving in a snapshot are kept *sealed* exactly as shipped
    (they already carry the client's padding).  Incremental additions
    accumulate per label in an open spill list that is sealed into a new
    bucket whenever it reaches capacity -- the bucket-cap overflow spill.
    Removals tombstone ids instead of rewriting sealed buckets, so sealed
    bucket counts never shrink (the provider cannot distinguish a removal
    of a real id from one of a dummy).
    """

    def __init__(self, bucket_capacity: int) -> None:
        if bucket_capacity < 1:
            raise ValueError("bucket capacity must be positive")
        self.bucket_capacity = bucket_capacity
        self._sealed: dict[bytes, list[tuple[bytes, ...]]] = {}
        self._spill: dict[bytes, list[bytes]] = {}
        self._members: dict[bytes, set[bytes]] = {}
        self._tombstones: dict[bytes, set[bytes]] = {}

    @classmethod
    def from_snapshot(cls, snapshot: IndexSnapshot) -> "RelationIndex":
        index = cls(snapshot.bucket_capacity)
        for label, buckets in snapshot.entries.items():
            index._sealed[label] = list(buckets)
            members = index._members.setdefault(label, set())
            for bucket in buckets:
                members.update(bucket)
        return index

    def apply_delta(self, delta: IndexDelta) -> None:
        """Apply posting additions/removals; idempotent under replay."""
        for label, tuple_id in delta.additions:
            tombstones = self._tombstones.get(label)
            if tombstones and tuple_id in tombstones:
                tombstones.discard(tuple_id)  # resurrection after delete
                continue
            members = self._members.setdefault(label, set())
            if tuple_id in members:
                continue  # replayed addition
            members.add(tuple_id)
            spill = self._spill.setdefault(label, [])
            spill.append(tuple_id)
            if len(spill) >= self.bucket_capacity:
                self._sealed.setdefault(label, []).append(tuple(spill))
                spill.clear()
        for label, tuple_id in delta.removals:
            if tuple_id in self._members.get(label, ()):  # ignore unknown postings
                self._tombstones.setdefault(label, set()).add(tuple_id)

    def candidates(self, labels: Iterable[bytes]) -> set[bytes]:
        """Intersection of the live posting sets of ``labels``.

        A label with no postings (never indexed, or emptied by deletes)
        makes the whole intersection empty.  The result may contain dummy
        padding ids and stale ids; both fetch nothing from the store.
        """
        result: set[bytes] | None = None
        for label in labels:
            live = self._members.get(label, set()) - self._tombstones.get(label, set())
            result = live if result is None else result & live
            if not result:
                return set()
        return result if result is not None else set()

    def live_posting_count(self, label: bytes) -> int:
        """Live (non-tombstoned) posting slots of one label, dummies included."""
        return len(self._members.get(label, set()) - self._tombstones.get(label, set()))

    def sealed_bucket_count(self, label: bytes | None = None) -> int:
        if label is not None:
            return len(self._sealed.get(label, ()))
        return sum(len(buckets) for buckets in self._sealed.values())

    def spill_length(self, label: bytes) -> int:
        return len(self._spill.get(label, ()))

    @property
    def label_count(self) -> int:
        return len(self._members)

    def stats(self) -> dict[str, int]:
        return {
            "labels": len(self._members),
            "sealed_buckets": self.sealed_bucket_count(),
            "spilled_postings": sum(len(s) for s in self._spill.values()),
            "tombstones": sum(len(t) for t in self._tombstones.values()),
            "bucket_capacity": self.bucket_capacity,
        }


class AccessMethod(ABC):
    """A strategy for answering one exact select at the provider."""

    name: str

    @abstractmethod
    def can_serve(self, relation_name: str, request: IndexLookupRequest) -> bool:
        """Whether this method can answer the lookup for that relation."""

    @abstractmethod
    def search(
        self,
        relation_name: str,
        stored: EncryptedRelation,
        request: IndexLookupRequest,
    ) -> EvaluationResult:
        """Answer the lookup against the stored ciphertext relation."""


class ScanAccess(AccessMethod):
    """The baseline linear scan: evaluate the fallback query over all tuples.

    ``evaluate`` is the server's own scheme-checked query execution, so the
    scan path through an ``INDEX_LOOKUP`` is byte-for-byte the path a plain
    ``QUERY`` takes.
    """

    name = "scan"

    def __init__(
        self, evaluate: Callable[[str, object], EvaluationResult]
    ) -> None:
        self._evaluate = evaluate

    def can_serve(self, relation_name: str, request: IndexLookupRequest) -> bool:
        return request.fallback_query is not None

    def search(
        self,
        relation_name: str,
        stored: EncryptedRelation,
        request: IndexLookupRequest,
    ) -> EvaluationResult:
        return self._evaluate(relation_name, request.fallback_query)


class IndexAccess(AccessMethod):
    """Answer exact selects via the client-shipped encrypted inverted index.

    Besides the per-relation :class:`RelationIndex`, this keeps a lazy
    ``tuple_id -> ciphertext`` map per relation so a lookup fetches
    candidates in O(result) instead of rescanning the store; the server's
    mutation hooks (:meth:`note_insert`, :meth:`note_delete`, ...) keep the
    map aligned with the storage backend.
    """

    name = "index"

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self._indexes: dict[str, RelationIndex] = {}
        self._id_maps: dict[str, dict[bytes, EncryptedTuple]] = {}
        # Registry-backed counters (thread-safe under the dispatch pool);
        # the old attribute names stay readable as properties below.
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._puts = self._metrics.counter("index_puts_total")
        self._deltas = self._metrics.counter("index_deltas_total")
        self._lookups = self._metrics.counter("index_lookups_total")

    @property
    def puts(self) -> int:
        """Snapshots installed so far."""
        return self._puts.value

    @property
    def deltas(self) -> int:
        """Posting deltas applied so far."""
        return self._deltas.value

    @property
    def lookups(self) -> int:
        """Lookups served from the index so far."""
        return self._lookups.value

    # -- index lifecycle ------------------------------------------------- #

    def put(self, relation_name: str, snapshot: IndexSnapshot) -> None:
        """Install (or replace) a relation's index from a full snapshot."""
        self._indexes[relation_name] = RelationIndex.from_snapshot(snapshot)
        self._id_maps.pop(relation_name, None)
        self._puts.inc()

    def apply_delta(self, relation_name: str, delta: IndexDelta) -> bool:
        """Apply a posting delta; ``False`` when the relation has no index.

        A provider without the index (restarted, freshly added shard)
        acknowledges deltas as no-ops: the index is soft state and the
        next lookup simply scans.
        """
        index = self._indexes.get(relation_name)
        if index is None:
            return False
        index.apply_delta(delta)
        self._deltas.inc()
        return True

    def index_for(self, relation_name: str) -> RelationIndex | None:
        return self._indexes.get(relation_name)

    # -- serving --------------------------------------------------------- #

    def can_serve(self, relation_name: str, request: IndexLookupRequest) -> bool:
        return relation_name in self._indexes

    def search(
        self,
        relation_name: str,
        stored: EncryptedRelation,
        request: IndexLookupRequest,
    ) -> EvaluationResult:
        index = self._indexes[relation_name]
        candidate_ids = index.candidates(request.labels)
        id_map = self._id_map(relation_name, stored)
        fetched = tuple(
            id_map[tuple_id] for tuple_id in candidate_ids if tuple_id in id_map
        )
        self._lookups.inc()
        return EvaluationResult(
            matching=EncryptedRelation(schema=stored.schema, encrypted_tuples=fetched),
            examined=len(fetched),  # the O(result) headline stat
            token_evaluations=0,
        )

    # -- storage mutation hooks ------------------------------------------ #

    def note_store(self, relation_name: str) -> None:
        """A full relation (re)store invalidates index and id map alike."""
        self._indexes.pop(relation_name, None)
        self._id_maps.pop(relation_name, None)

    def note_insert(self, relation_name: str, encrypted_tuple: EncryptedTuple) -> None:
        id_map = self._id_maps.get(relation_name)
        if id_map is not None:
            id_map[encrypted_tuple.tuple_id] = encrypted_tuple

    def note_delete(self, relation_name: str, tuple_ids: Iterable[bytes]) -> None:
        id_map = self._id_maps.get(relation_name)
        if id_map is not None:
            for tuple_id in tuple_ids:
                id_map.pop(tuple_id, None)

    def note_drop(self, relation_name: str) -> None:
        self._indexes.pop(relation_name, None)
        self._id_maps.pop(relation_name, None)

    # -- reporting ------------------------------------------------------- #

    def stats(self) -> dict[str, object]:
        return {
            "indexed_relations": sorted(self._indexes),
            "puts": self.puts,
            "deltas": self.deltas,
            "lookups": self.lookups,
            "relations": {
                name: index.stats() for name, index in sorted(self._indexes.items())
            },
        }

    # -- internals ------------------------------------------------------- #

    def _id_map(
        self, relation_name: str, stored: EncryptedRelation
    ) -> dict[bytes, EncryptedTuple]:
        id_map = self._id_maps.get(relation_name)
        if id_map is None:
            id_map = {t.tuple_id: t for t in stored.encrypted_tuples}
            self._id_maps[relation_name] = id_map
        return id_map
