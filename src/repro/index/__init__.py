"""Encrypted inverted indexes on the serving path.

The paper's outsourcing model answers every exact select with an O(data)
linear scan: the provider applies the searchable scheme's evaluator to each
stored ciphertext.  This package puts a *client-maintained encrypted
inverted index* next to the data so the provider can answer the same
selects in O(result):

* :mod:`repro.index.wire` -- the ciphertext index objects that travel on
  the protocol (``INDEX_PUT`` / ``INDEX_DELTA`` / ``INDEX_LOOKUP`` bodies):
  a snapshot of PRF-derived keyword labels mapping to capped, padded
  buckets of public tuple ids, incremental posting deltas, and the lookup
  request carrying trapdoor labels plus a scan-fallback query.
* :mod:`repro.index.client` -- :class:`TableIndexer`, the key-holding side:
  derives per-keyword labels with a keyed PRF (the same construction as
  the secure-index SSE backend), builds snapshots from plaintext rows and
  deltas from every insert/delete.
* :mod:`repro.index.access` -- the server side: pluggable
  :class:`AccessMethod` strategies.  :class:`ScanAccess` is today's
  evaluator scan (kept as the fallback); :class:`IndexAccess` holds the
  client-shipped index and answers lookups by bucket intersection plus
  fetch-by-id.

The index is *soft state*: the provider's stored relation remains the
source of truth, and a provider that lost (or never had) the index answers
the embedded fallback query with a scan -- degraded to O(data), never
wrong.  Conversely the index can only ever return a superset of stale
postings (ids the store no longer holds fetch nothing), so an indexed
lookup never misses a live tuple that was indexed.
"""

from repro.index.access import AccessMethod, IndexAccess, RelationIndex, ScanAccess
from repro.index.client import DEFAULT_BUCKET_CAPACITY, TableIndexer
from repro.index.wire import (
    IndexDelta,
    IndexLookupRequest,
    IndexSnapshot,
    IndexingError,
    decode_index_delta,
    decode_index_lookup,
    decode_index_snapshot,
    encode_index_delta,
    encode_index_lookup,
    encode_index_snapshot,
)

__all__ = [
    "AccessMethod",
    "IndexAccess",
    "RelationIndex",
    "ScanAccess",
    "DEFAULT_BUCKET_CAPACITY",
    "TableIndexer",
    "IndexDelta",
    "IndexLookupRequest",
    "IndexSnapshot",
    "IndexingError",
    "decode_index_delta",
    "decode_index_lookup",
    "decode_index_snapshot",
    "encode_index_delta",
    "encode_index_lookup",
    "encode_index_snapshot",
]
