"""Client-side construction and maintenance of the encrypted inverted index.

:class:`TableIndexer` is the key-holding half of ``repro.index``: it turns
plaintext attribute values into PRF-derived labels (the same keyed-PRF
construction the secure-index SSE backend uses for its per-word labels),
builds an :class:`~repro.index.wire.IndexSnapshot` when a relation is
first outsourced, and emits :class:`~repro.index.wire.IndexDelta` posting
updates for every insert and delete.

What the provider learns from the shipped objects:

* labels are PRF outputs under a per-table subkey -- unlinkable to the
  values they encode and to the labels of any other table;
* postings are chunked into fixed-capacity buckets with the final bucket
  padded by dummy ids and shuffled, so a snapshot reveals only the bucket
  *count* per label (frequency rounded up to a multiple of the capacity),
  not exact counts;
* deltas necessarily reveal that one tuple touched ``len(schema)`` labels
  -- that is the incremental-maintenance leakage documented in the README.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.dph import EncryptedRelation
from repro.crypto.kdf import derive_key
from repro.crypto.prf import Prf
from repro.crypto.rng import RandomSource, SystemRng
from repro.index.wire import IndexDelta, IndexLookupRequest, IndexSnapshot, IndexingError
from repro.relational.encoding import ValueCodec
from repro.relational.query import Query, selection_predicates
from repro.relational.relation import Relation, RelationTuple
from repro.relational.schema import RelationSchema

#: Label length in bytes -- matches the secure-index SSE construction.
LABEL_LEN = 32

#: Default ids per bucket.  Small enough that padding waste stays modest,
#: large enough that low-frequency keywords are indistinguishable.
DEFAULT_BUCKET_CAPACITY = 8

#: Length of the public tuple-id nonces (see repro.schemes.base.TUPLE_ID_LEN);
#: dummy padding ids are drawn at the same length so they are
#: indistinguishable from real ids.
_TUPLE_ID_LEN = 16


class TableIndexer:
    """Build and maintain the encrypted inverted index of one table."""

    def __init__(
        self,
        schema: RelationSchema,
        key: bytes,
        *,
        bucket_capacity: int = DEFAULT_BUCKET_CAPACITY,
        rng: RandomSource | None = None,
    ) -> None:
        if bucket_capacity < 1:
            raise IndexingError("bucket capacity must be positive")
        self._schema = schema
        self._label_prf = Prf(derive_key(key, "index/label"))
        self._bucket_capacity = bucket_capacity
        self._rng = rng if rng is not None else SystemRng()

    @property
    def bucket_capacity(self) -> int:
        return self._bucket_capacity

    def label(self, attribute_name: str, value: object) -> bytes:
        """The opaque index label of one ``attribute = value`` keyword."""
        attribute = self._schema.attribute(attribute_name)
        encoded = ValueCodec.encode(attribute, value)
        return self._label_prf.evaluate(
            attribute_name.encode("ascii") + b"\x00" + encoded, LABEL_LEN
        )

    def tuple_labels(self, row: RelationTuple | Mapping[str, object]) -> tuple[bytes, ...]:
        """All labels one tuple contributes postings to (one per attribute)."""
        if isinstance(row, RelationTuple):
            values = {name: row.value(name) for name in self._schema.attribute_names}
        else:
            values = dict(row)
        return tuple(self.label(name, value) for name, value in values.items())

    def query_labels(self, query: Query) -> tuple[bytes, ...]:
        """The trapdoor labels of a selection query's equality predicates.

        Raises :class:`~repro.relational.query.QueryError` for query shapes
        the index cannot serve; callers fall back to the scan path.
        """
        predicates = selection_predicates(query)
        return tuple(self.label(p.attribute, p.value) for p in predicates)

    def lookup_request(self, query: Query, fallback_query=None) -> IndexLookupRequest:
        """Build an ``INDEX_LOOKUP`` body for ``query``."""
        return IndexLookupRequest(
            labels=self.query_labels(query), fallback_query=fallback_query
        )

    def snapshot(
        self, relation: Relation, encrypted: EncryptedRelation
    ) -> IndexSnapshot:
        """Build the full index from a plaintext relation and its ciphertext.

        ``relation`` and ``encrypted`` must be positionally aligned (tuple i
        of the plaintext encrypts to ciphertext i), which is how
        ``encrypt_relation`` produces them.
        """
        if len(relation.tuples) != len(encrypted.encrypted_tuples):
            raise IndexingError(
                "plaintext relation and ciphertext relation have different sizes"
            )
        postings: dict[bytes, list[bytes]] = {}
        id_len = _TUPLE_ID_LEN
        for row, encrypted_tuple in zip(relation.tuples, encrypted.encrypted_tuples):
            id_len = len(encrypted_tuple.tuple_id)
            for label in self.tuple_labels(row):
                postings.setdefault(label, []).append(encrypted_tuple.tuple_id)
        entries: dict[bytes, tuple[tuple[bytes, ...], ...]] = {}
        labels = list(postings)
        self._rng.shuffle(labels)  # don't leak keyword insertion order
        for label in labels:
            entries[label] = self._bucketize(postings[label], id_len)
        return IndexSnapshot(bucket_capacity=self._bucket_capacity, entries=entries)

    def _bucketize(
        self, tuple_ids: list[bytes], id_len: int
    ) -> tuple[tuple[bytes, ...], ...]:
        """Chunk postings into capacity-sized buckets, padding the last."""
        capacity = self._bucket_capacity
        buckets = []
        for start in range(0, len(tuple_ids), capacity):
            chunk = list(tuple_ids[start : start + capacity])
            if len(chunk) < capacity:
                # Dummy ids are fresh random nonces of the real id length:
                # absent from the provider's store, they match no fetch and
                # are indistinguishable from live ids.
                chunk.extend(
                    self._rng.bytes(id_len) for _ in range(capacity - len(chunk))
                )
                self._rng.shuffle(chunk)
            buckets.append(tuple(chunk))
        return tuple(buckets)

    def insert_delta(
        self, row: RelationTuple | Mapping[str, object], tuple_id: bytes
    ) -> IndexDelta:
        """The posting additions generated by inserting one tuple."""
        return IndexDelta(
            additions=tuple((label, tuple_id) for label in self.tuple_labels(row))
        )

    def remove_delta(
        self, rows_with_ids: Iterable[tuple[RelationTuple | Mapping[str, object], bytes]]
    ) -> IndexDelta:
        """The posting removals generated by deleting the given tuples."""
        removals = []
        for row, tuple_id in rows_with_ids:
            for label in self.tuple_labels(row):
                removals.append((label, tuple_id))
        return IndexDelta(removals=tuple(removals))
