"""Wire-format objects for the encrypted inverted index.

Three ciphertext objects cross the trust boundary:

* :class:`IndexSnapshot` -- the full index for one relation, shipped by
  ``INDEX_PUT`` when a table is created or attached.  Labels are opaque
  PRF outputs; each label maps to fixed-capacity buckets of public tuple
  ids, the last bucket padded with dummy ids so the provider sees only a
  bucket *count* per label, never an exact posting count.
* :class:`IndexDelta` -- incremental maintenance shipped by
  ``INDEX_DELTA`` on every insert/delete: ``(label, tuple_id)`` pairs to
  add or tombstone.
* :class:`IndexLookupRequest` -- an ``INDEX_LOOKUP`` body: the trapdoor
  labels for a query's predicates plus the ordinary encrypted fallback
  query, so a provider without the index (v1 fleet member, restarted
  shard, mid-rebalance arrival) can answer by scan instead of failing.

Everything here is deliberately dumb bytes-in/bytes-out: the PRF key
material lives in :mod:`repro.index.client`, the serving logic in
:mod:`repro.index.access`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dph import EncryptedQuery
from repro.outsourcing.protocol import (
    ProtocolError,
    _decode_bytes,
    _decode_sequence,
    _encode_bytes,
    _encode_sequence,
    decode_encrypted_query,
    encode_encrypted_query,
)


class IndexingError(ValueError):
    """A malformed index object or an index invariant violation.

    Subclasses :class:`ValueError` so the provider's message handler turns
    it into an ``ERROR`` envelope instead of letting it escape.
    """


@dataclass(frozen=True)
class IndexSnapshot:
    """A complete encrypted inverted index for one relation.

    ``entries`` maps an opaque label to its ordered buckets; every bucket
    except possibly the last is exactly ``bucket_capacity`` ids long, and
    the last is padded to capacity with dummy ids by the client.
    """

    bucket_capacity: int
    entries: dict[bytes, tuple[tuple[bytes, ...], ...]]

    def posting_slots(self) -> int:
        """Total id slots across all buckets (real postings + padding)."""
        return sum(
            len(bucket) for buckets in self.entries.values() for bucket in buckets
        )


@dataclass(frozen=True)
class IndexDelta:
    """Incremental posting maintenance: pairs of ``(label, tuple_id)``."""

    additions: tuple[tuple[bytes, bytes], ...] = ()
    removals: tuple[tuple[bytes, bytes], ...] = ()

    def __bool__(self) -> bool:
        return bool(self.additions or self.removals)


@dataclass(frozen=True)
class IndexLookupRequest:
    """Trapdoor labels plus the scan-fallback query they stand in for."""

    labels: tuple[bytes, ...]
    fallback_query: EncryptedQuery | None = None


def encode_index_snapshot(snapshot: IndexSnapshot) -> bytes:
    if snapshot.bucket_capacity < 1:
        raise IndexingError("bucket capacity must be positive")
    label_blobs = []
    for label, buckets in snapshot.entries.items():
        bucket_blobs = [_encode_sequence(list(bucket)) for bucket in buckets]
        label_blobs.append(_encode_bytes(label) + _encode_sequence(bucket_blobs))
    return snapshot.bucket_capacity.to_bytes(4, "big") + _encode_sequence(label_blobs)


def decode_index_snapshot(raw: bytes) -> IndexSnapshot:
    if len(raw) < 4:
        raise ProtocolError("truncated index snapshot")
    bucket_capacity = int.from_bytes(raw[:4], "big")
    if bucket_capacity < 1:
        raise ProtocolError("index snapshot declares non-positive bucket capacity")
    label_blobs, offset = _decode_sequence(raw, 4)
    if offset != len(raw):
        raise ProtocolError("trailing bytes after index snapshot")
    entries: dict[bytes, tuple[tuple[bytes, ...], ...]] = {}
    for blob in label_blobs:
        label, inner = _decode_bytes(blob, 0)
        bucket_blobs, inner = _decode_sequence(blob, inner)
        if inner != len(blob):
            raise ProtocolError("trailing bytes after index snapshot entry")
        buckets = []
        for bucket_blob in bucket_blobs:
            ids, used = _decode_sequence(bucket_blob, 0)
            if used != len(bucket_blob):
                raise ProtocolError("trailing bytes after index bucket")
            if len(ids) > bucket_capacity:
                raise ProtocolError("index bucket exceeds declared capacity")
            buckets.append(tuple(ids))
        entries[label] = tuple(buckets)
    return IndexSnapshot(bucket_capacity=bucket_capacity, entries=entries)


def _encode_pairs(pairs: tuple[tuple[bytes, bytes], ...]) -> bytes:
    return _encode_sequence(
        [_encode_bytes(label) + _encode_bytes(tuple_id) for label, tuple_id in pairs]
    )


def _decode_pairs(raw: bytes, offset: int) -> tuple[tuple[tuple[bytes, bytes], ...], int]:
    blobs, offset = _decode_sequence(raw, offset)
    pairs = []
    for blob in blobs:
        label, inner = _decode_bytes(blob, 0)
        tuple_id, inner = _decode_bytes(blob, inner)
        if inner != len(blob):
            raise ProtocolError("trailing bytes after index posting pair")
        pairs.append((label, tuple_id))
    return tuple(pairs), offset


def encode_index_delta(delta: IndexDelta) -> bytes:
    return _encode_pairs(delta.additions) + _encode_pairs(delta.removals)


def decode_index_delta(raw: bytes) -> IndexDelta:
    additions, offset = _decode_pairs(raw, 0)
    removals, offset = _decode_pairs(raw, offset)
    if offset != len(raw):
        raise ProtocolError("trailing bytes after index delta")
    return IndexDelta(additions=additions, removals=removals)


def encode_index_lookup(request: IndexLookupRequest) -> bytes:
    body = _encode_sequence(list(request.labels))
    if request.fallback_query is None:
        return body + b"\x00"
    return body + b"\x01" + encode_encrypted_query(request.fallback_query)


def decode_index_lookup(raw: bytes) -> IndexLookupRequest:
    labels, offset = _decode_sequence(raw, 0)
    if offset >= len(raw):
        raise ProtocolError("truncated index lookup request")
    flag = raw[offset]
    offset += 1
    if flag == 0:
        if offset != len(raw):
            raise ProtocolError("trailing bytes after index lookup request")
        return IndexLookupRequest(labels=tuple(labels))
    if flag != 1:
        raise ProtocolError(f"unknown index lookup fallback flag {flag}")
    fallback = decode_encrypted_query(raw[offset:])
    return IndexLookupRequest(labels=tuple(labels), fallback_query=fallback)
