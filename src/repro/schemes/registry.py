"""Scheme registry: one named factory per database privacy homomorphism.

The paper treats a database PH as a pluggable service ``(K, E, Eq, D)``; the
registry makes that literal.  Every scheme in the reproduction registers a
factory under a stable name (plus optional aliases), and every consumer --
the CLI, the :class:`~repro.api.EncryptedDatabase` facade, experiments and
benchmarks -- instantiates schemes through :func:`create` instead of
hard-coding imports.  Adding a scheme is then a single decorated function::

    @register_scheme("my-scheme", description="...")
    def _build_my_scheme(schema, secret_key, rng=None, **options):
        return MySchemeDph(schema, secret_key, rng=rng, **options)

Factories receive ``(schema, secret_key, rng=None, **options)`` and return a
freshly keyed :class:`~repro.core.dph.DatabasePrivacyHomomorphism`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.core.construction import SearchableSelectDph
from repro.core.dph import DatabasePrivacyHomomorphism
from repro.crypto.keys import SecretKey
from repro.crypto.rng import RandomSource
from repro.relational.schema import RelationSchema
from repro.schemes.damiani import DamianiDph
from repro.schemes.deterministic import DeterministicDph
from repro.schemes.hacigumus import BucketizationConfig, HacigumusDph
from repro.schemes.plaintext import PlaintextDph


class SchemeNotRegisteredError(ValueError):
    """No scheme is registered under the requested name."""


class SchemeAlreadyRegisteredError(ValueError):
    """A scheme (or alias) name is already taken."""


class SchemeFactory(Protocol):
    """Signature every registered factory satisfies."""

    def __call__(
        self,
        schema: RelationSchema,
        secret_key: SecretKey,
        rng: RandomSource | None = None,
        **options,
    ) -> DatabasePrivacyHomomorphism: ...


@dataclass(frozen=True)
class SchemeEntry:
    """One registered scheme: canonical name, factory and documentation."""

    name: str
    factory: Callable
    description: str = ""
    aliases: tuple[str, ...] = field(default_factory=tuple)


#: Canonical name -> entry, in registration order (drives ``--scheme`` choices).
_REGISTRY: dict[str, SchemeEntry] = {}
#: Alias -> canonical name.
_ALIASES: dict[str, str] = {}


def register_scheme(
    name: str, *, description: str = "", aliases: tuple[str, ...] = ()
) -> Callable[[Callable], Callable]:
    """Class/function decorator registering a scheme factory under ``name``."""

    def decorator(factory: Callable) -> Callable:
        for taken in (name, *aliases):
            if taken in _REGISTRY or taken in _ALIASES:
                raise SchemeAlreadyRegisteredError(
                    f"scheme name {taken!r} is already registered"
                )
        entry = SchemeEntry(
            name=name, factory=factory, description=description, aliases=tuple(aliases)
        )
        _REGISTRY[name] = entry
        for alias in aliases:
            _ALIASES[alias] = name
        return factory

    return decorator


def unregister_scheme(name: str) -> None:
    """Remove a registered scheme (used by tests; built-ins stay put)."""
    entry = _REGISTRY.pop(resolve_name(name))
    for alias in entry.aliases:
        _ALIASES.pop(alias, None)


def resolve_name(name: str) -> str:
    """Map a name or alias to the canonical scheme name."""
    if name in _REGISTRY:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    raise SchemeNotRegisteredError(
        f"unknown scheme {name!r}; available: {', '.join(available_schemes())}"
    )


def get_entry(name: str) -> SchemeEntry:
    """The registry entry for a name or alias."""
    return _REGISTRY[resolve_name(name)]


def available_schemes() -> tuple[str, ...]:
    """Canonical names of every registered scheme, in registration order."""
    return tuple(_REGISTRY)


def create(
    name: str,
    schema: RelationSchema,
    secret_key: SecretKey | bytes | None = None,
    rng: RandomSource | None = None,
    **options,
) -> DatabasePrivacyHomomorphism:
    """Instantiate the scheme registered under ``name`` (or an alias).

    A fresh random key is generated when ``secret_key`` is omitted; scheme
    specific keyword ``options`` are passed through to the factory.
    """
    entry = get_entry(name)
    if secret_key is None:
        secret_key = SecretKey.generate(rng=rng)
    elif isinstance(secret_key, (bytes, bytearray)):
        secret_key = SecretKey(bytes(secret_key))
    return entry.factory(schema, secret_key, rng=rng, **options)


# --------------------------------------------------------------------------- #
# Built-in schemes
# --------------------------------------------------------------------------- #

@register_scheme(
    "swp",
    description="paper's construction over Song-Wagner-Perrig searchable encryption",
    aliases=("dph-swp",),
)
def _build_swp(schema, secret_key, rng=None, **options):
    return SearchableSelectDph(schema, secret_key, backend="swp", rng=rng, **options)


@register_scheme(
    "index",
    description="paper's construction with the secure-index optimization",
    aliases=("index-sse", "dph-index"),
)
def _build_index(schema, secret_key, rng=None, **options):
    return SearchableSelectDph(schema, secret_key, backend="index", rng=rng, **options)


@register_scheme(
    "bucketization",
    description="Hacigumus et al. interval bucketization baseline",
    aliases=("hacigumus",),
)
def _build_bucketization(schema, secret_key, rng=None, config=None, **options):
    if config is None:
        config = BucketizationConfig.uniform(
            schema, num_buckets=16, minimum=0, maximum=10000
        )
    return HacigumusDph(schema, secret_key, config=config, rng=rng, **options)


@register_scheme(
    "damiani",
    description="Damiani et al. truncated keyed-hash baseline",
    aliases=("damiani-hash",),
)
def _build_damiani(schema, secret_key, rng=None, **options):
    return DamianiDph(schema, secret_key, rng=rng, **options)


@register_scheme(
    "deterministic",
    description="per-value deterministic encryption baseline",
)
def _build_deterministic(schema, secret_key, rng=None, **options):
    return DeterministicDph(schema, secret_key, rng=rng, **options)


@register_scheme(
    "plaintext",
    description="no encryption; performance floor",
)
def _build_plaintext(schema, secret_key, rng=None, **options):
    return PlaintextDph(schema, secret_key, rng=rng, **options)
