"""Baseline outsourced-database schemes the paper discusses and attacks.

* :class:`repro.schemes.hacigumus.HacigumusDph` -- interval bucketization with
  secretly permuted bucket identifiers (SIGMOD 2002, the paper's reference [4]).
* :class:`repro.schemes.damiani.DamianiDph` -- truncated keyed-hash indexes
  (CCS 2003, reference [3]).
* :class:`repro.schemes.deterministic.DeterministicDph` -- per-value
  deterministic encryption, the idealized "no collisions" variant of the above.
* :class:`repro.schemes.plaintext.PlaintextDph` -- no encryption; performance
  floor for the overhead experiments.

All of them implement the same
:class:`repro.core.dph.DatabasePrivacyHomomorphism` interface as the paper's
construction, so the security games and benchmarks can treat every scheme
uniformly.
"""

from repro.schemes.base import FieldMatchDph, FieldMatchEvaluator
from repro.schemes.damiani import DamianiDph
from repro.schemes.deterministic import DeterministicDph
from repro.schemes.hacigumus import (
    AttributeBucketing,
    BucketizationConfig,
    HacigumusDph,
)
from repro.schemes.plaintext import PlaintextDph
from repro.schemes.registry import (
    SchemeAlreadyRegisteredError,
    SchemeEntry,
    SchemeNotRegisteredError,
    available_schemes,
    create,
    get_entry,
    register_scheme,
)

__all__ = [
    "FieldMatchDph",
    "FieldMatchEvaluator",
    "DamianiDph",
    "DeterministicDph",
    "AttributeBucketing",
    "BucketizationConfig",
    "HacigumusDph",
    "PlaintextDph",
    "SchemeAlreadyRegisteredError",
    "SchemeEntry",
    "SchemeNotRegisteredError",
    "available_schemes",
    "create",
    "get_entry",
    "register_scheme",
]
