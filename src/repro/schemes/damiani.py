"""The Damiani et al. hashed-index scheme (CCS 2003), reference [3].

"Balancing Confidentiality and Efficiency in Untrusted Relational DBMSs"
attaches, to each strongly encrypted tuple, a *keyed hash* of every indexed
attribute value, deliberately truncated so that several plaintext values
collide in the same index value (reducing what the index reveals at the cost
of false positives).

Reproduction details:

* the index value of attribute ``a`` with value ``v`` is
  ``PRF_{k_a}(encode(v)) mod num_hash_values``, serialized on 4 bytes;
* queries map the searched value through the same function;
* the client filters the colliding tuples after decryption.

Like bucketization, the mapping is deterministic, so the paper's
distinguishing attack applies essentially unchanged (experiment E2): two
tables that differ only in whether a salary value repeats are told apart by
comparing index values for equality.
"""

from __future__ import annotations

from repro.core.dph import DphError
from repro.crypto.keys import SecretKey
from repro.crypto.prf import Prf
from repro.crypto.rng import RandomSource
from repro.relational.encoding import ValueCodec
from repro.relational.schema import Attribute, RelationSchema
from repro.schemes.base import FieldMatchDph

#: Default number of distinct hash index values per attribute.
DEFAULT_NUM_HASH_VALUES = 64

#: Width in bytes of the serialized index value.
INDEX_LEN = 4


class DamianiDph(FieldMatchDph):
    """Hashed-index database PH: strong payload + truncated keyed hashes."""

    def __init__(
        self,
        schema: RelationSchema,
        secret_key: SecretKey | bytes,
        num_hash_values: int = DEFAULT_NUM_HASH_VALUES,
        rng: RandomSource | None = None,
    ) -> None:
        if num_hash_values < 1:
            raise DphError("num_hash_values must be at least 1")
        self._num_hash_values = num_hash_values
        super().__init__(schema, secret_key, rng=rng, encrypt_payload=True)
        self._prfs: dict[str, Prf] = {}

    @property
    def name(self) -> str:
        """Scheme identifier."""
        return "damiani-hash"

    @property
    def num_hash_values(self) -> int:
        """Number of distinct index values each attribute hashes into."""
        return self._num_hash_values

    def index_value_of(self, attribute: Attribute, value) -> int:
        """The (collision-prone) hash index value of ``value``."""
        if attribute.name not in self._prfs:
            self._prfs[attribute.name] = Prf(
                self.keys.get(f"damiani/index/{attribute.name}")
            )
        encoded = ValueCodec.encode(attribute, value)
        return self._prfs[attribute.name].evaluate_int(encoded, self._num_hash_values)

    def _search_field(self, attribute: Attribute, value) -> bytes:
        return self.index_value_of(attribute, value).to_bytes(INDEX_LEN, "big")
