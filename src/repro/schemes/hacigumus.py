"""The Hacigumus et al. bucketization scheme (SIGMOD 2002), reference [4].

"Every tuple is encrypted with a secure cipher first, then weakly encrypted
attributes are attached to the ciphertext.  These weak encryptions are
obtained by taking a plaintext attribute value, mapping it to a containing
interval, and encrypting that interval using a secret permutation."

Reproduction details:

* integer attributes are partitioned into ``num_buckets`` equal-width
  intervals over a configurable domain;
* string attributes are partitioned by an (unkeyed) hash into ``num_buckets``
  partitions -- the partitioning itself is not secret, only the bucket
  *identifiers* are, exactly as in the original scheme;
* the bucket identifier is encrypted with a secret pseudorandom permutation
  of ``{0, ..., num_buckets - 1}`` (:class:`repro.crypto.prp.IntegerPrp`),
  independently keyed per attribute;
* queries map the searched value to its (permuted) bucket label; the server
  returns every tuple in the bucket and the client filters false positives.

Because the weak encryption is deterministic, two tuples with equal values in
an attribute always carry equal labels -- the property the paper's two-table
salary attack uses to win the indistinguishability game with probability
close to 1 (experiment E1).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.dph import DphError
from repro.crypto.keys import SecretKey
from repro.crypto.prp import IntegerPrp
from repro.crypto.rng import RandomSource
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType
from repro.schemes.base import FieldMatchDph

#: Default number of buckets per attribute.
DEFAULT_NUM_BUCKETS = 16

#: Width in bytes of the serialized bucket label.
LABEL_LEN = 4


@dataclass(frozen=True)
class AttributeBucketing:
    """Bucketization parameters of one attribute.

    Attributes
    ----------
    num_buckets:
        Number of intervals / partitions the attribute domain is split into.
    minimum, maximum:
        Integer domain bounds (inclusive) used for equal-width intervals;
        ignored for string attributes.
    """

    num_buckets: int = DEFAULT_NUM_BUCKETS
    minimum: int = 0
    maximum: int = 10**6

    def __post_init__(self) -> None:
        if self.num_buckets < 1:
            raise DphError("num_buckets must be at least 1")
        if self.maximum < self.minimum:
            raise DphError("maximum must not be smaller than minimum")


class BucketizationConfig:
    """Per-attribute bucketization parameters for a whole schema."""

    def __init__(
        self,
        schema: RelationSchema,
        default: AttributeBucketing | None = None,
        overrides: dict[str, AttributeBucketing] | None = None,
    ) -> None:
        self._schema = schema
        self._default = default if default is not None else AttributeBucketing()
        self._overrides = dict(overrides or {})
        for name in self._overrides:
            schema.attribute(name)  # raises on unknown attribute

    def for_attribute(self, name: str) -> AttributeBucketing:
        """Return the bucketization of one attribute."""
        return self._overrides.get(name, self._default)

    @classmethod
    def uniform(
        cls, schema: RelationSchema, num_buckets: int = DEFAULT_NUM_BUCKETS,
        minimum: int = 0, maximum: int = 10**6,
    ) -> "BucketizationConfig":
        """Same bucketization for every attribute."""
        return cls(schema, AttributeBucketing(num_buckets, minimum, maximum))


class HacigumusDph(FieldMatchDph):
    """Bucketization database PH: strong payload + permuted bucket labels."""

    def __init__(
        self,
        schema: RelationSchema,
        secret_key: SecretKey | bytes,
        config: BucketizationConfig | None = None,
        rng: RandomSource | None = None,
    ) -> None:
        self._config = config if config is not None else BucketizationConfig.uniform(schema)
        super().__init__(schema, secret_key, rng=rng, encrypt_payload=True)
        self._permutations: dict[str, IntegerPrp] = {}
        # Bucket labels are deterministic, so cache them per (attribute, bucket).
        self._label_cache: dict[tuple[str, int], bytes] = {}

    @property
    def name(self) -> str:
        """Scheme identifier."""
        return "bucketization"

    @property
    def config(self) -> BucketizationConfig:
        """The bucketization parameters in use."""
        return self._config

    def bucket_of(self, attribute: Attribute, value) -> int:
        """Map a plaintext value to its (unpermuted) bucket index."""
        bucketing = self._config.for_attribute(attribute.name)
        if attribute.attribute_type is AttributeType.INTEGER:
            clipped = min(max(int(value), bucketing.minimum), bucketing.maximum)
            span = bucketing.maximum - bucketing.minimum + 1
            return (clipped - bucketing.minimum) * bucketing.num_buckets // span
        digest = hashlib.sha256(str(value).encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % bucketing.num_buckets

    def _permutation(self, attribute: Attribute) -> IntegerPrp:
        if attribute.name not in self._permutations:
            bucketing = self._config.for_attribute(attribute.name)
            key = self.keys.get(f"bucketization/permutation/{attribute.name}")
            self._permutations[attribute.name] = IntegerPrp(key, bucketing.num_buckets)
        return self._permutations[attribute.name]

    def _search_field(self, attribute: Attribute, value) -> bytes:
        bucket = self.bucket_of(attribute, value)
        cache_key = (attribute.name, bucket)
        if cache_key not in self._label_cache:
            label = self._permutation(attribute).permute(bucket)
            self._label_cache[cache_key] = label.to_bytes(LABEL_LEN, "big")
        return self._label_cache[cache_key]
