"""Shared machinery of the baseline ("field match") schemes.

The three baselines the paper discusses -- the Hacigumus bucketization scheme,
the Damiani hashed-index scheme and plain deterministic encryption -- share a
common shape: every tuple ciphertext carries a strongly encrypted payload plus
one *deterministic* searchable field per attribute, and an encrypted query is
the deterministic image of the searched value.  What distinguishes the schemes
is only the function that maps an attribute value to its searchable field.

That determinism is precisely what the paper's distinguishing attacks exploit
(equal plaintext values produce equal fields, Section 1), so keeping the
mechanism in one base class makes the comparison with the randomized
construction of Section 3 as direct as possible.

:class:`FieldMatchDph` implements Definition 1.1's ``(E, Eq, D)`` generically;
subclasses provide :meth:`FieldMatchDph._search_field`.
:class:`FieldMatchEvaluator` is the keyless server-side ``psi``.
"""

from __future__ import annotations

from abc import abstractmethod

from repro.core.dph import (
    DatabasePrivacyHomomorphism,
    DphError,
    EncryptedQuery,
    EncryptedRelation,
    EncryptedTuple,
    EvaluationResult,
    ServerEvaluator,
)
from repro.crypto.keys import KeyHierarchy, SecretKey
from repro.crypto.rng import RandomSource, SystemRng
from repro.crypto.symmetric import SymmetricCipher
from repro.relational.encoding import TupleCodec
from repro.relational.query import Query, selection_predicates
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.tuples import RelationTuple

#: Length in bytes of the random per-tuple identifier.
TUPLE_ID_LEN = 16


def encode_field_token(attribute_index: int, field: bytes) -> bytes:
    """Serialize a query token as ``attribute_index (2 bytes) || field``."""
    if not 0 <= attribute_index <= 0xFFFF:
        raise DphError("attribute index out of range")
    return attribute_index.to_bytes(2, "big") + field


def decode_field_token(raw: bytes) -> tuple[int, bytes]:
    """Parse a token serialized by :func:`encode_field_token`."""
    if len(raw) < 2:
        raise DphError("malformed field token")
    return int.from_bytes(raw[:2], "big"), raw[2:]


class FieldMatchDph(DatabasePrivacyHomomorphism):
    """Base class of schemes with one deterministic searchable field per attribute."""

    def __init__(
        self,
        schema: RelationSchema,
        secret_key: SecretKey | bytes,
        rng: RandomSource | None = None,
        encrypt_payload: bool = True,
    ) -> None:
        if isinstance(secret_key, (bytes, bytearray)):
            secret_key = SecretKey(bytes(secret_key))
        self._schema = schema
        self._keys = KeyHierarchy(secret_key)
        self._rng = rng if rng is not None else SystemRng()
        self._tuple_codec = TupleCodec(schema)
        self._encrypt_payload = encrypt_payload
        self._payload_cipher = (
            SymmetricCipher(self._keys.get(f"{self.name}/payload"), rng=self._rng)
            if encrypt_payload
            else None
        )

    # ------------------------------------------------------------------ #
    # Subclass hooks
    # ------------------------------------------------------------------ #

    @abstractmethod
    def _search_field(self, attribute: Attribute, value) -> bytes:
        """Deterministic searchable field for ``value`` of ``attribute``."""

    # ------------------------------------------------------------------ #
    # DatabasePrivacyHomomorphism interface
    # ------------------------------------------------------------------ #

    @property
    def schema(self) -> RelationSchema:
        """The outsourced relation's schema."""
        return self._schema

    @property
    def keys(self) -> KeyHierarchy:
        """The key hierarchy (exposed for subclasses)."""
        return self._keys

    def encrypt_relation(self, relation: Relation) -> EncryptedRelation:
        """``E``: payload encryption plus per-attribute deterministic fields."""
        if relation.schema != self._schema:
            raise DphError("relation schema does not match the scheme's schema")
        encrypted = tuple(self.encrypt_tuple(t) for t in relation)
        return EncryptedRelation(schema=self._schema, encrypted_tuples=encrypted)

    def encrypt_tuple(self, relation_tuple: RelationTuple) -> EncryptedTuple:
        """Encrypt a single tuple."""
        tuple_id = self._rng.bytes(TUPLE_ID_LEN)
        serialized = self._tuple_codec.encode(relation_tuple)
        if self._payload_cipher is not None:
            payload = self._payload_cipher.encrypt_bytes(serialized, associated_data=tuple_id)
        else:
            payload = serialized
        fields = tuple(
            self._search_field(attribute, relation_tuple.value(attribute.name))
            for attribute in self._schema.attributes
        )
        return EncryptedTuple(tuple_id=tuple_id, payload=payload, search_fields=fields)

    def decrypt_relation(self, encrypted_relation: EncryptedRelation) -> Relation:
        """``D``: decrypt every payload."""
        return Relation(
            self._schema,
            [self.decrypt_tuple(t) for t in encrypted_relation.encrypted_tuples],
        )

    def decrypt_tuple(self, encrypted_tuple: EncryptedTuple) -> RelationTuple:
        """Decrypt a single tuple ciphertext."""
        if self._payload_cipher is not None:
            raw = self._payload_cipher.decrypt_bytes(
                encrypted_tuple.payload, associated_data=encrypted_tuple.tuple_id
            )
        else:
            raw = encrypted_tuple.payload
        return self._tuple_codec.decode(raw)

    def encrypt_query(self, query: Query) -> EncryptedQuery:
        """``Eq``: the deterministic field of the searched value, per predicate."""
        tokens = []
        for predicate in selection_predicates(query):
            attribute = self._schema.attribute(predicate.attribute)
            attribute.validate_value(predicate.value)
            index = self._schema.attribute_names.index(predicate.attribute)
            field = self._search_field(attribute, predicate.value)
            tokens.append(encode_field_token(index, field))
        return EncryptedQuery(scheme_name=self.name, tokens=tuple(tokens))

    def server_evaluator(self) -> "FieldMatchEvaluator":
        """The keyless field-equality evaluator."""
        return FieldMatchEvaluator(self.name)


class FieldMatchEvaluator(ServerEvaluator):
    """Keyless server-side evaluation: match tokens against stored fields."""

    def __init__(self, scheme_name: str) -> None:
        self._scheme_name = scheme_name

    @property
    def scheme_name(self) -> str:
        """Identifier matched against :attr:`EncryptedQuery.scheme_name`."""
        return self._scheme_name

    def describe(self) -> dict:
        """Public parameters for remote deployment (no key material)."""
        return {"type": "field-match", "scheme_name": self._scheme_name}

    def evaluate(
        self, encrypted_query: EncryptedQuery, encrypted_relation: EncryptedRelation
    ) -> EvaluationResult:
        """Return tuples whose fields equal every token's field (conjunction)."""
        if encrypted_query.scheme_name != self._scheme_name:
            raise DphError(
                f"query was encrypted for {encrypted_query.scheme_name!r}, "
                f"this evaluator handles {self._scheme_name!r}"
            )
        conditions = [decode_field_token(t) for t in encrypted_query.tokens]
        matching = []
        token_evaluations = 0
        for encrypted_tuple in encrypted_relation.encrypted_tuples:
            matched_all = True
            for attribute_index, field in conditions:
                token_evaluations += 1
                if attribute_index >= len(encrypted_tuple.search_fields):
                    matched_all = False
                    break
                if encrypted_tuple.search_fields[attribute_index] != field:
                    matched_all = False
                    break
            if matched_all:
                matching.append(encrypted_tuple)
        return EvaluationResult(
            matching=EncryptedRelation(
                schema=encrypted_relation.schema, encrypted_tuples=tuple(matching)
            ),
            examined=len(encrypted_relation),
            token_evaluations=token_evaluations,
        )
