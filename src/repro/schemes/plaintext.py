"""Plaintext passthrough "scheme".

Stores tuples and searchable fields in the clear.  It provides no security at
all; its only purpose is to serve as the performance floor in the overhead
experiments (E8, E9): the cost of the outsourcing machinery itself, with the
cryptography removed.
"""

from __future__ import annotations

from repro.crypto.keys import SecretKey
from repro.crypto.rng import RandomSource
from repro.relational.encoding import ValueCodec
from repro.relational.schema import Attribute, RelationSchema
from repro.schemes.base import FieldMatchDph


class PlaintextDph(FieldMatchDph):
    """No-op "encryption": plaintext payloads and plaintext searchable fields."""

    def __init__(
        self,
        schema: RelationSchema,
        secret_key: SecretKey | bytes | None = None,
        rng: RandomSource | None = None,
    ) -> None:
        if secret_key is None:
            secret_key = SecretKey.generate()
        super().__init__(schema, secret_key, rng=rng, encrypt_payload=False)

    @property
    def name(self) -> str:
        """Scheme identifier."""
        return "plaintext"

    def _search_field(self, attribute: Attribute, value) -> bytes:
        return ValueCodec.encode(attribute, value)
