"""Deterministic-encryption database PH.

The simplest way to make exact selects work over ciphertext is to encrypt
every attribute value deterministically (a full-width PRF image) and match on
equality.  Unlike bucketization or hashed indexes there are no false
positives, but the scheme reveals the complete equality pattern of every
attribute -- it is the clearest illustration of why deterministic weak
encryptions lose the indistinguishability game of Definition 1.2, and it is
the strongest baseline in terms of query efficiency.
"""

from __future__ import annotations

from repro.crypto.keys import SecretKey
from repro.crypto.prf import Prf
from repro.crypto.rng import RandomSource
from repro.relational.encoding import ValueCodec
from repro.relational.schema import Attribute, RelationSchema
from repro.schemes.base import FieldMatchDph

#: Width in bytes of the deterministic field (collisions are negligible).
FIELD_LEN = 16


class DeterministicDph(FieldMatchDph):
    """Database PH whose searchable fields are full-width deterministic PRF images."""

    def __init__(
        self,
        schema: RelationSchema,
        secret_key: SecretKey | bytes,
        rng: RandomSource | None = None,
    ) -> None:
        super().__init__(schema, secret_key, rng=rng, encrypt_payload=True)
        self._prfs: dict[str, Prf] = {}

    @property
    def name(self) -> str:
        """Scheme identifier."""
        return "deterministic"

    def _search_field(self, attribute: Attribute, value) -> bytes:
        if attribute.name not in self._prfs:
            self._prfs[attribute.name] = Prf(
                self.keys.get(f"deterministic/field/{attribute.name}")
            )
        encoded = ValueCodec.encode(attribute, value)
        return self._prfs[attribute.name].evaluate(encoded, FIELD_LEN)
