"""Command-line interface.

Installed as ``python -m repro.cli`` (or imported and called programmatically),
the CLI exposes the reproduction's main entry points without writing any code:

``experiments``
    Run one or all of the E1-E10 experiments with the registry's quick
    parameters and print the resulting tables.

``demo``
    Outsource a synthetic employee database with a chosen scheme and run a few
    exact selects against the untrusted server, printing what the provider
    observed.

``attack``
    Run one of the paper's attacks (``salary-pair``, ``hospital``, ``john``)
    and report the outcome.

``serve``
    Run a standalone untrusted provider over TCP (see :mod:`repro.net`),
    optionally file-backed, until interrupted.  Sessions connect with
    ``EncryptedDatabase.connect("tcp://host:port")``.

Examples::

    python -m repro.cli experiments --only E1 E4
    python -m repro.cli demo --scheme swp --size 500
    python -m repro.cli attack hospital --size 2000
    python -m repro.cli serve --port 7707 --data-dir /var/lib/repro
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from typing import Sequence

from repro.crypto.keys import SecretKey
from repro.experiments import EXPERIMENTS
from repro.outsourcing import OutsourcedDatabaseServer, OutsourcingClient
from repro.schemes.registry import available_schemes, create as create_scheme
from repro.security import IndistinguishabilityGame
from repro.security.attacks import (
    SalaryPairAdversary,
    run_active_query_attack,
    run_hospital_inference,
)
from repro.workloads import EmployeeWorkload, HospitalWorkload

def build_scheme(name: str, schema):
    """Instantiate a freshly keyed scheme by registry name."""
    return create_scheme(name, schema, SecretKey.generate())


def command_experiments(args: argparse.Namespace) -> int:
    """Run registered experiments and print their tables."""
    wanted = {identifier.upper() for identifier in (args.only or [])}
    unknown = wanted - {spec.identifier for spec in EXPERIMENTS}
    if unknown:
        print(f"unknown experiment id(s): {sorted(unknown)}", file=sys.stderr)
        return 2
    for spec in EXPERIMENTS:
        if wanted and spec.identifier not in wanted:
            continue
        print(f"[{spec.identifier}] {spec.claim}")
        result = spec.run_quick()
        print(result.to_table().render())
        print()
    return 0


def command_demo(args: argparse.Namespace) -> int:
    """Outsource a synthetic employee relation and run a few queries."""
    workload = EmployeeWorkload.generate(args.size, seed=args.seed)
    scheme = build_scheme(args.scheme, workload.schema)
    server = OutsourcedDatabaseServer()
    client = OutsourcingClient(scheme, server, relation_name="Emp")
    shipped = client.outsource(workload.relation)
    print(f"Outsourced {workload.size} tuples with {scheme.name}: {shipped} ciphertext bytes.")

    statements = [
        "SELECT * FROM Emp WHERE dept = 'HR'",
        f"SELECT name, salary FROM Emp WHERE name = 'emp{args.size // 2}'",
    ]
    for statement in statements:
        outcome = client.select(statement)
        print(f"{statement}")
        print(
            f"  -> {len(outcome.relation)} tuple(s), "
            f"{outcome.false_positives} false positive(s) filtered"
        )
    print(f"Provider's view: {server.audit_log.summary()}")
    return 0


def command_attack(args: argparse.Namespace) -> int:
    """Run one of the paper's attacks."""
    if args.attack == "salary-pair":
        scheme = args.scheme or "bucketization"
        table_schema = SalaryPairAdversary().schema

        def factory(schema, rng):
            return build_scheme(scheme, schema)

        result = IndistinguishabilityGame(factory, scheme).run(
            SalaryPairAdversary(), trials=args.trials, seed=args.seed
        )
        print(
            f"salary-pair attack vs {scheme} (schema {table_schema.name}): "
            f"success {result.success_rate:.2f}, advantage {result.advantage:+.2f} "
            f"over {result.trials} trials"
        )
        return 0

    workload = HospitalWorkload.generate(args.size, target_name="John", seed=args.seed)
    dph = build_scheme("index", workload.schema)
    if args.attack == "hospital":
        result = run_hospital_inference(dph, workload)
        print(f"query identification correct: {result.identification_correct}")
        for hospital in sorted(result.true_fatality):
            print(
                f"  hospital {hospital}: estimated fatality "
                f"{result.estimated_fatality[hospital]:.4f} "
                f"(true {result.true_fatality[hospital]:.4f})"
            )
        return 0
    if args.attack == "john":
        result = run_active_query_attack(dph, workload)
        print(
            f"target {result.target_name!r}: hospital {result.inferred_hospital} "
            f"(true {result.true_hospital}), outcome {result.inferred_outcome!r} "
            f"(true {result.true_outcome!r}), oracle queries {result.oracle_queries_used}"
        )
        return 0
    print(f"unknown attack {args.attack!r}", file=sys.stderr)
    return 2


def command_serve(args: argparse.Namespace) -> int:
    """Run a standalone TCP provider until interrupted."""
    from repro.net.server import DatabaseTcpServer
    from repro.outsourcing import (
        FileStorageBackend,
        OutsourcedDatabaseServer,
        ServerAuditLog,
    )

    storage = FileStorageBackend(args.data_dir) if args.data_dir else None
    database = OutsourcedDatabaseServer(
        # A long-running provider caps its observation log; the full view
        # only matters to the in-process security experiments.
        audit_log=ServerAuditLog(max_events=args.max_audit_events),
        storage=storage,
    )
    tcp = DatabaseTcpServer(
        database,
        host=args.host,
        port=args.port,
        max_frame_size=args.max_frame_size,
    )

    async def _serve() -> None:
        await tcp.start()
        host, port = tcp.address
        where = f"{len(database.relation_names)} relation(s) on disk" if storage else "in-memory"
        print(f"repro provider listening on tcp://{host}:{port} ({where})", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("repro provider shutting down...", flush=True)
        await tcp.stop()
        print(f"repro provider stopped: {tcp.stats.throughput_summary()}", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass  # platforms without signal-handler support land here
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Provable Security for Outsourcing Database Operations' (ICDE 2006)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser("experiments", help="run E1-E10 with quick parameters")
    experiments.add_argument("--only", nargs="*", metavar="ID", help="experiment ids, e.g. E1 E4")
    experiments.set_defaults(handler=command_experiments)

    demo = subparsers.add_parser("demo", help="outsource a synthetic employee database")
    demo.add_argument("--scheme", choices=available_schemes(), default="swp")
    demo.add_argument("--size", type=int, default=500)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(handler=command_demo)

    attack = subparsers.add_parser("attack", help="run one of the paper's attacks")
    attack.add_argument("attack", choices=("salary-pair", "hospital", "john"))
    attack.add_argument("--scheme", choices=available_schemes(), default=None,
                        help="target scheme for salary-pair (default bucketization)")
    attack.add_argument("--size", type=int, default=1000, help="hospital database size")
    attack.add_argument("--trials", type=int, default=100, help="game trials for salary-pair")
    attack.add_argument("--seed", type=int, default=0)
    attack.set_defaults(handler=command_attack)

    serve = subparsers.add_parser("serve", help="run a standalone TCP provider")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=7707,
                       help="bind port (0 picks an ephemeral one)")
    serve.add_argument("--data-dir", default=None, metavar="DIR",
                       help="persist relations as files under DIR (default in-memory)")
    serve.add_argument("--max-audit-events", type=int, default=10_000,
                       help="ring-buffer cap on the provider's audit log")
    serve.add_argument("--max-frame-size", type=int, default=64 * 1024 * 1024,
                       help="reject frames larger than this many bytes")
    serve.set_defaults(handler=command_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
