"""Command-line interface.

Installed as ``python -m repro.cli`` (or imported and called programmatically),
the CLI exposes the reproduction's main entry points without writing any code:

``experiments``
    Run one or all of the E1-E10 experiments with the registry's quick
    parameters and print the resulting tables.

``demo``
    Outsource a synthetic employee database with a chosen scheme and run a few
    exact selects against the untrusted server, printing what the provider
    observed.

``attack``
    Run one of the paper's attacks (``salary-pair``, ``hospital``, ``john``)
    and report the outcome.

``serve``
    Run a standalone untrusted provider over TCP (see :mod:`repro.net`),
    optionally file-backed, until interrupted.  Requests touching
    different relations dispatch in parallel (``--dispatch-workers``);
    same-relation requests stay FIFO.  Sessions connect with
    ``EncryptedDatabase.connect("tcp://host:port[?async=1]")``.

``stats`` / ``trace``
    The observability plane of a running provider or fleet: ``stats``
    scrapes the merged metrics snapshot (counters, gauges, p50/p95/p99
    latency summaries; ``--prometheus`` for the text exposition format)
    and ``trace`` lists recent end-to-end traces and slow queries, or
    assembles one trace by id across every shard.  Both accept a
    ``tcp://`` or ``cluster://`` URL and ``--watch SECONDS``.

``bench``
    The declarative experiment orchestrator (see :mod:`repro.bench`):
    ``run`` executes a JSON matrix config (benchmark x scheme x transport
    x shards x in-flight depth) with warmup/repeat discipline and records
    per-repeat samples plus latency summaries under
    ``benchmarks/results/<git-rev>/``, ``report`` renders a markdown
    trend table across the accumulated revisions, and ``gate`` evaluates
    the config's declared thresholds (``max_regression_pct``,
    ``max_p99_s``) against a baseline revision, exiting nonzero on
    violation -- the CI regression gate.

``cluster``
    Sharded multi-provider tools (see :mod:`repro.cluster`): ``spawn`` a
    local fleet of providers on ephemeral ports (``--manifest`` persists
    the topology for ``cluster+file://`` sessions), ``route`` keys through
    the deterministic placement ring offline (including the per-key replica
    sets of a ``?replicas=R`` deployment), and ``status`` a running fleet
    over its stats control channel (by URL or ``--manifest``).  Sessions
    connect with
    ``EncryptedDatabase.connect("cluster://h1:p1,...[?replicas=R&async=1]")``.

Examples::

    python -m repro.cli experiments --only E1 E4
    python -m repro.cli demo --scheme swp --size 500
    python -m repro.cli attack hospital --size 2000
    python -m repro.cli serve --port 7707 --data-dir /var/lib/repro
    python -m repro.cli cluster spawn --shards 4
    python -m repro.cli cluster status cluster://127.0.0.1:7707,127.0.0.1:7708
    python -m repro.cli bench run --config benchmarks/configs/quick.json
    python -m repro.cli bench report --experiment quick
    python -m repro.cli bench gate --config benchmarks/configs/quick.json
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import dataclasses
import signal
import sys
from typing import Sequence

from repro.crypto.keys import SecretKey
from repro.experiments import EXPERIMENTS
from repro.outsourcing import OutsourcedDatabaseServer, OutsourcingClient
from repro.schemes.registry import available_schemes, create as create_scheme
from repro.security import IndistinguishabilityGame
from repro.security.attacks import (
    SalaryPairAdversary,
    run_active_query_attack,
    run_hospital_inference,
)
from repro.workloads import EmployeeWorkload, HospitalWorkload

def build_scheme(name: str, schema):
    """Instantiate a freshly keyed scheme by registry name."""
    return create_scheme(name, schema, SecretKey.generate())


def command_experiments(args: argparse.Namespace) -> int:
    """Run registered experiments and print their tables."""
    wanted = {identifier.upper() for identifier in (args.only or [])}
    unknown = wanted - {spec.identifier for spec in EXPERIMENTS}
    if unknown:
        print(f"unknown experiment id(s): {sorted(unknown)}", file=sys.stderr)
        return 2
    for spec in EXPERIMENTS:
        if wanted and spec.identifier not in wanted:
            continue
        print(f"[{spec.identifier}] {spec.claim}")
        result = spec.run_quick()
        print(result.to_table().render())
        print()
    return 0


def command_demo(args: argparse.Namespace) -> int:
    """Outsource a synthetic employee relation and run a few queries."""
    workload = EmployeeWorkload.generate(args.size, seed=args.seed)
    scheme = build_scheme(args.scheme, workload.schema)
    server = OutsourcedDatabaseServer()
    client = OutsourcingClient(scheme, server, relation_name="Emp")
    shipped = client.outsource(workload.relation)
    print(f"Outsourced {workload.size} tuples with {scheme.name}: {shipped} ciphertext bytes.")

    statements = [
        "SELECT * FROM Emp WHERE dept = 'HR'",
        f"SELECT name, salary FROM Emp WHERE name = 'emp{args.size // 2}'",
    ]
    for statement in statements:
        outcome = client.select(statement)
        print(f"{statement}")
        print(
            f"  -> {len(outcome.relation)} tuple(s), "
            f"{outcome.false_positives} false positive(s) filtered"
        )
    print(f"Provider's view: {server.audit_log.summary()}")
    return 0


def command_attack(args: argparse.Namespace) -> int:
    """Run one of the paper's attacks."""
    if args.attack == "salary-pair":
        scheme = args.scheme or "bucketization"
        table_schema = SalaryPairAdversary().schema

        def factory(schema, rng):
            return build_scheme(scheme, schema)

        result = IndistinguishabilityGame(factory, scheme).run(
            SalaryPairAdversary(), trials=args.trials, seed=args.seed
        )
        print(
            f"salary-pair attack vs {scheme} (schema {table_schema.name}): "
            f"success {result.success_rate:.2f}, advantage {result.advantage:+.2f} "
            f"over {result.trials} trials"
        )
        return 0

    workload = HospitalWorkload.generate(args.size, target_name="John", seed=args.seed)
    dph = build_scheme("index", workload.schema)
    if args.attack == "hospital":
        result = run_hospital_inference(dph, workload)
        print(f"query identification correct: {result.identification_correct}")
        for hospital in sorted(result.true_fatality):
            print(
                f"  hospital {hospital}: estimated fatality "
                f"{result.estimated_fatality[hospital]:.4f} "
                f"(true {result.true_fatality[hospital]:.4f})"
            )
        return 0
    if args.attack == "john":
        result = run_active_query_attack(dph, workload)
        print(
            f"target {result.target_name!r}: hospital {result.inferred_hospital} "
            f"(true {result.true_hospital}), outcome {result.inferred_outcome!r} "
            f"(true {result.true_outcome!r}), oracle queries {result.oracle_queries_used}"
        )
        return 0
    print(f"unknown attack {args.attack!r}", file=sys.stderr)
    return 2


def command_serve(args: argparse.Namespace) -> int:
    """Run a standalone TCP provider until interrupted."""
    from repro.net.server import DatabaseTcpServer
    from repro.outsourcing import (
        FileStorageBackend,
        OutsourcedDatabaseServer,
        ServerAuditLog,
    )

    storage = FileStorageBackend(args.data_dir) if args.data_dir else None
    database = OutsourcedDatabaseServer(
        # A long-running provider caps its observation log; the full view
        # only matters to the in-process security experiments.
        audit_log=ServerAuditLog(max_events=args.max_audit_events),
        storage=storage,
    )
    if args.dispatch_workers < 1:
        print(f"--dispatch-workers must be positive, got {args.dispatch_workers}",
              file=sys.stderr)
        return 2
    tcp = DatabaseTcpServer(
        database,
        host=args.host,
        port=args.port,
        max_frame_size=args.max_frame_size,
        dispatch_workers=args.dispatch_workers,
        slow_query_threshold=args.slow_query_threshold,
    )

    def _index_summary() -> str:
        stats = database.index_stats()
        return (
            f"{len(stats['indexed_relations'])} indexed relation(s), "
            f"{stats['puts']} put(s), {stats['deltas']} delta(s), "
            f"{stats['lookups']} lookup(s), {stats['scan_fallbacks']} scan fallback(s)"
        )

    async def _report_stats() -> None:
        from repro.obs import log_json

        # One JSON record per interval (instead of a prose line), so log
        # shippers and `jq` consume the periodic state without a parser.
        while True:
            await asyncio.sleep(args.stats_interval)
            log_json(
                "stats",
                transport=tcp.stats.as_dict(),
                index=database.index_stats(),
                slow_queries=len(tcp.slow_queries),
            )

    async def _serve() -> None:
        await tcp.start()
        host, port = tcp.address
        where = f"{len(database.relation_names)} relation(s) on disk" if storage else "in-memory"
        print(
            f"repro provider listening on tcp://{host}:{port} ({where}, "
            f"{tcp.dispatch_workers} dispatch worker(s))",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, stop.set)
        reporter = None
        if args.stats_interval > 0:
            reporter = asyncio.ensure_future(_report_stats())
        await stop.wait()
        if reporter is not None:
            reporter.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await reporter
        print("repro provider shutting down...", flush=True)
        await tcp.stop()
        print(
            f"repro provider stopped: {tcp.stats.throughput_summary()}; "
            f"index: {_index_summary()}",
            flush=True,
        )

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass  # platforms without signal-handler support land here
    return 0


def command_cluster_spawn(args: argparse.Namespace) -> int:
    """Run a local fleet of providers (ephemeral ports) until interrupted."""
    from repro.net.server import DatabaseTcpServer
    from repro.outsourcing import (
        FileStorageBackend,
        OutsourcedDatabaseServer,
        ServerAuditLog,
    )

    if args.shards < 1:
        print(f"--shards must be positive, got {args.shards}", file=sys.stderr)
        return 2
    if args.replicas < 1:
        print(f"--replicas must be positive, got {args.replicas}", file=sys.stderr)
        return 2
    if args.replicas > args.shards:
        print(
            f"--replicas {args.replicas} needs at least that many shards, "
            f"got {args.shards}",
            file=sys.stderr,
        )
        return 2

    def make_database(index: int) -> OutsourcedDatabaseServer:
        storage = None
        if args.data_dir:
            storage = FileStorageBackend(f"{args.data_dir}/shard-{index}")
        return OutsourcedDatabaseServer(
            audit_log=ServerAuditLog(max_events=args.max_audit_events),
            storage=storage,
        )

    servers = [
        DatabaseTcpServer(make_database(index), host=args.host, port=0)
        for index in range(args.shards)
    ]

    async def _serve() -> None:
        for server in servers:
            await server.start()
        addresses = []
        for index, server in enumerate(servers):
            host, port = server.address
            addresses.append(f"{host}:{port}")
            print(f"repro cluster shard {index} listening on tcp://{host}:{port}", flush=True)
        url = f"cluster://{','.join(addresses)}"
        if args.replicas > 1:
            url += f"?replicas={args.replicas}"
            print(
                f"repro cluster replication: every tuple stored on "
                f"{args.replicas} of {args.shards} shard(s); reads stay "
                f"complete with up to {args.replicas - 1} shard(s) down",
                flush=True,
            )
        if args.manifest:
            from repro.cluster import ClusterManifest, ShardEntry

            # Shard ids deliberately equal the URLs: that is the id a plain
            # cluster:// session derives, so both advertised ways of
            # connecting to this fleet build the *identical* placement
            # ring.  Hand-author symbolic ids only for fleets whose
            # addresses change while their data persists (then rebalance
            # or keep sessions manifest-only).
            manifest = ClusterManifest(
                shards=tuple(
                    ShardEntry(shard_id=f"tcp://{address}", url=f"tcp://{address}")
                    for address in addresses
                ),
                replicas=args.replicas,
            )
            path = manifest.save(args.manifest)
            print(f"repro cluster manifest written: {path}", flush=True)
            print(
                f"repro cluster sessions can restore topology with "
                f"cluster+file://{path}",
                flush=True,
            )
        print(f"repro cluster ready: {url}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("repro cluster shutting down...", flush=True)
        for server in servers:
            await server.stop()
        for index, server in enumerate(servers):
            print(f"repro cluster shard {index} stopped: "
                  f"{server.stats.throughput_summary()}", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass  # platforms without signal-handler support land here
    return 0


def command_cluster_route(args: argparse.Namespace) -> int:
    """Show the deterministic ring placement for a cluster URL (offline)."""
    from collections import Counter

    from repro.cluster import (
        ClusterError,
        ConsistentHashRing,
        DEFAULT_VIRTUAL_NODES,
        parse_cluster_options,
    )

    try:
        shard_urls, options = parse_cluster_options(args.url)
    except ClusterError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    replicas = args.replicas if args.replicas is not None else options.get("replicas", 1)
    if replicas < 1:
        print(f"--replicas must be positive, got {replicas}", file=sys.stderr)
        return 2
    if replicas > len(shard_urls):
        print(
            f"--replicas {replicas} needs at least that many shards, "
            f"got {len(shard_urls)}",
            file=sys.stderr,
        )
        return 2
    virtual_nodes = (
        args.virtual_nodes if args.virtual_nodes is not None else DEFAULT_VIRTUAL_NODES
    )
    if virtual_nodes < 1:
        print(f"--virtual-nodes must be positive, got {virtual_nodes}", file=sys.stderr)
        return 2
    ring = ConsistentHashRing(shard_urls, virtual_nodes=virtual_nodes)
    if args.key is not None:
        try:
            key = bytes.fromhex(args.key)
        except ValueError:
            print(f"--key must be hex, got {args.key!r}", file=sys.stderr)
            return 2
        print(f"{args.key} -> {', '.join(ring.successors(key, replicas))}")
        return 0
    if args.keys < 1:
        print(f"--keys must be positive, got {args.keys}", file=sys.stderr)
        return 2
    keys = [f"key-{i}".encode("ascii") for i in range(args.keys)]
    copies = Counter({shard_url: 0 for shard_url in shard_urls})
    for key in keys:
        copies.update(ring.successors(key, replicas))
    total_copies = args.keys * replicas
    mean = total_copies / len(shard_urls)
    print(
        f"ring of {len(shard_urls)} shard(s), replication factor {replicas}, "
        f"{virtual_nodes} virtual nodes, {args.keys} sample keys "
        f"({total_copies} copies):"
    )
    worst = 0.0
    for shard_url in shard_urls:
        count = copies[shard_url]
        deviation = (count - mean) / mean if mean else 0.0
        worst = max(worst, abs(deviation))
        print(
            f"  {shard_url}: {count} copies "
            f"({count / total_copies:.1%}, {deviation:+.1%} of fair share)"
        )
    print(f"max deviation from fair share: {worst:.1%}")
    if replicas > 1:
        print(
            f"every key is stored on {replicas} distinct shard(s); reads stay "
            f"complete with up to {replicas - 1} shard(s) down"
        )
    return 0


def command_cluster_status(args: argparse.Namespace) -> int:
    """Probe every shard of a running fleet over the stats control channel."""
    from repro.cluster import ClusterError, parse_cluster_options
    from repro.net.client import RemoteError, RemoteServerProxy

    if (args.url is None) == (args.manifest is None):
        print("pass exactly one of a cluster:// URL or --manifest", file=sys.stderr)
        return 2
    if args.manifest is not None:
        from repro.cluster import ManifestError
        from repro.cluster.manifest import ClusterManifest

        try:
            manifest = ClusterManifest.load(args.manifest)
        except ManifestError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        shard_urls = manifest.shard_urls
        replicas = manifest.replicas
        print(
            f"fleet of {len(shard_urls)} shard(s) from manifest {args.manifest} "
            f"(ids: {', '.join(manifest.shard_ids)})"
        )
    else:
        try:
            shard_urls, options = parse_cluster_options(args.url)
        except ClusterError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        replicas = options.get("replicas", 1)
    if replicas < 1 or replicas > len(shard_urls):
        print(
            f"URL replicas={replicas} is impossible for {len(shard_urls)} "
            f"shard(s); no session can run with it",
            file=sys.stderr,
        )
        return 2
    unreachable = 0
    for shard_url in shard_urls:
        try:
            with RemoteServerProxy.connect(
                shard_url, pool_size=1, timeout=args.timeout
            ) as proxy:
                stats = proxy.server_stats()
                names = proxy.relation_names
                counts = {name: proxy.tuple_count(name) for name in names}
        except RemoteError as exc:
            unreachable += 1
            print(f"{shard_url}: DOWN ({exc})")
            continue
        transport = stats.get("stats", {})
        relations = ", ".join(f"{name}={count}" for name, count in counts.items()) or "none"
        print(
            f"{shard_url}: up, relations: {relations}; "
            f"{transport.get('connections_total', 0)} connection(s), "
            f"{transport.get('envelope_frames', 0)} envelope / "
            f"{transport.get('control_frames', 0)} control frame(s), "
            f"{transport.get('bytes_received', 0)} B in / "
            f"{transport.get('bytes_sent', 0)} B out"
        )
        indexes = stats.get("indexes")
        if indexes:
            indexed = ", ".join(indexes.get("indexed_relations", [])) or "none"
            print(
                f"  index: relations: {indexed}; "
                f"{indexes.get('puts', 0)} put(s), "
                f"{indexes.get('deltas', 0)} delta(s), "
                f"{indexes.get('lookups', 0)} lookup(s), "
                f"{indexes.get('scan_fallbacks', 0)} scan fallback(s)"
            )
    print(f"{len(shard_urls) - unreachable}/{len(shard_urls)} shard(s) up")
    if replicas > 1:
        tolerated = replicas - 1
        if unreachable <= tolerated:
            print(
                f"replication factor {replicas}: reads stay complete "
                f"({unreachable}/{tolerated} tolerated outage(s) in use)"
            )
        else:
            print(
                f"replication factor {replicas}: {unreachable} shard(s) down "
                f"exceeds the {tolerated} the replicas absorb -- reads may "
                f"be incomplete"
            )
    return 1 if unreachable else 0


def _observability_shard_urls(url: str) -> list[str] | None:
    """Resolve a ``tcp://`` or ``cluster://`` URL to per-shard TCP URLs."""
    if url.startswith("cluster"):
        from repro.cluster import ClusterError, parse_cluster_options

        try:
            shard_urls, _options = parse_cluster_options(url)
        except ClusterError as exc:
            print(str(exc), file=sys.stderr)
            return None
        return list(shard_urls)
    return [url]


def _each_watch_tick(interval: float | None):
    """Yield once, or forever every ``interval`` seconds (Ctrl-C stops)."""
    import time as _time

    yield 0
    tick = 0
    while interval is not None:
        try:
            _time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return
        tick += 1
        print(flush=True)
        yield tick


def command_stats(args: argparse.Namespace) -> int:
    """Scrape and merge the metrics plane of a provider or a whole fleet."""
    from repro.net.client import RemoteError, RemoteServerProxy
    from repro.obs import histogram_summaries, merge_snapshots, render_prometheus

    shard_urls = _observability_shard_urls(args.url)
    if shard_urls is None:
        return 2

    def scrape() -> int:
        snapshots = []
        unreachable = 0
        for shard_url in shard_urls:
            try:
                with RemoteServerProxy.connect(
                    shard_url, pool_size=1, timeout=args.timeout
                ) as proxy:
                    snapshot = proxy.metrics().get("metrics")
            except RemoteError as exc:
                unreachable += 1
                print(f"{shard_url}: DOWN ({exc})", file=sys.stderr)
                continue
            if snapshot:
                snapshots.append(snapshot)
        merged = merge_snapshots(*snapshots)
        if args.prometheus:
            sys.stdout.write(render_prometheus(merged))
            return 1 if unreachable else 0
        print(
            f"metrics from {len(shard_urls) - unreachable}/{len(shard_urls)} "
            f"shard(s)"
        )
        for kind in ("counters", "gauges"):
            for entry in sorted(
                merged[kind], key=lambda e: (e["name"], sorted(e["labels"].items()))
            ):
                print(f"  {_metric_label(entry)} {entry['value']}")
        summaries = histogram_summaries(merged)
        if summaries:
            print("latency (seconds):")
        for entry in sorted(
            summaries, key=lambda e: (e["name"], sorted(e["labels"].items()))
        ):
            print(
                f"  {_metric_label(entry)} count={entry['count']} "
                f"mean={entry['mean']:.6f} p50={entry['p50']:.6f} "
                f"p95={entry['p95']:.6f} p99={entry['p99']:.6f}"
            )
        return 1 if unreachable else 0

    status = 0
    for _ in _each_watch_tick(args.watch):
        status = scrape()
    return status


def _metric_label(entry: dict) -> str:
    labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
    return f"{entry['name']}{{{labels}}}" if labels else entry["name"]


def command_trace(args: argparse.Namespace) -> int:
    """List recent traces / slow queries, or assemble one trace by id."""
    from repro.net.client import RemoteError, RemoteServerProxy

    shard_urls = _observability_shard_urls(args.url)
    if shard_urls is None:
        return 2
    trace_id = None
    if args.trace_id is not None:
        try:
            trace_id = bytes.fromhex(args.trace_id)
        except ValueError:
            print(f"--trace-id {args.trace_id!r} is not hex", file=sys.stderr)
            return 2

    def poll() -> int:
        unreachable = 0
        spans: list[dict] = []
        for shard_url in shard_urls:
            try:
                with RemoteServerProxy.connect(
                    shard_url, pool_size=1, timeout=args.timeout
                ) as proxy:
                    if trace_id is not None:
                        spans.extend(proxy.collect_trace(trace_id))
                        continue
                    recent = proxy.recent_traces(args.limit)
            except RemoteError as exc:
                unreachable += 1
                print(f"{shard_url}: DOWN ({exc})", file=sys.stderr)
                continue
            traces = recent.get("traces", ())
            slow = recent.get("slow", ())
            print(f"{shard_url}: {len(traces)} recent trace(s), {len(slow)} slow")
            for trace in traces:
                _print_trace(trace)
            if slow:
                print("  slow queries:")
                for entry in slow:
                    print(
                        f"    {entry['trace_id']} {entry['duration_s']:.6f}s "
                        f"({entry.get('span_count', len(entry.get('spans', ())))} span(s))"
                    )
        if trace_id is not None:
            if not spans:
                print(f"trace {trace_id.hex()}: not found on any shard")
                return 1
            _print_trace({"trace_id": trace_id.hex(), "spans": spans})
        return 1 if unreachable else 0

    status = 0
    for _ in _each_watch_tick(args.watch):
        status = poll()
    return status


def _print_trace(trace: dict) -> None:
    spans = sorted(trace.get("spans", ()), key=lambda s: s.get("start_s", 0.0))
    print(f"  trace {trace['trace_id']}:")
    if not spans:
        return
    origin = spans[0].get("start_s", 0.0)
    for span in spans:
        offset_ms = (span.get("start_s", 0.0) - origin) * 1000.0
        duration_ms = span.get("duration_s", 0.0) * 1000.0
        annotations = span.get("annotations") or {}
        suffix = " ".join(f"{k}={v}" for k, v in sorted(annotations.items()))
        line = f"    +{offset_ms:9.3f}ms {duration_ms:9.3f}ms {span['name']}"
        print(f"{line}  {suffix}" if suffix else line)


def _bench_store(args: argparse.Namespace):
    from repro.bench import ResultStore

    return ResultStore(args.results_dir)


def _bench_config(args: argparse.Namespace):
    from repro.bench import ConfigError, MatrixConfig

    try:
        return MatrixConfig.load(args.config)
    except ConfigError as exc:
        print(str(exc), file=sys.stderr)
        return None


def command_bench_run(args: argparse.Namespace) -> int:
    """Execute a declared benchmark matrix and persist the run per-rev."""
    from repro.bench import BenchError, run_matrix
    from repro.bench.report import render_config_summary

    config = _bench_config(args)
    if config is None:
        return 2
    if args.repeats is not None:
        if args.repeats < 1:
            print(f"--repeats must be positive, got {args.repeats}", file=sys.stderr)
            return 2
        config = dataclasses.replace(config, repeats=args.repeats)
    if args.warmup is not None:
        if args.warmup < 0:
            print(f"--warmup must be >= 0, got {args.warmup}", file=sys.stderr)
            return 2
        config = dataclasses.replace(config, warmup=args.warmup)
    store = _bench_store(args)
    print(render_config_summary(config))
    try:
        payload = run_matrix(config, store=store, rev=args.rev, log=print)
    except BenchError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"recorded {len(payload['cells'])} cell(s): {payload['result_path']}")
    for cell in payload["cells"]:
        print(
            f"  {cell['config_id']}: {cell['mean_ops_per_s']:.1f} "
            f"\N{PLUS-MINUS SIGN}{cell['stddev_ops_per_s']:.1f} ops/s "
            f"over {len(cell['samples']['ops_per_s'])} repeat(s)"
        )
    return 0


def command_bench_report(args: argparse.Namespace) -> int:
    """Render the markdown trend table across recorded revisions."""
    from repro.bench import render_trend_markdown

    if (args.experiment is None) == (args.config is None):
        print("pass exactly one of --config or --experiment", file=sys.stderr)
        return 2
    if args.experiment is not None:
        experiment = args.experiment
    else:
        config = _bench_config(args)
        if config is None:
            return 2
        experiment = config.experiment
    rendered = render_trend_markdown(_bench_store(args), experiment)
    if args.output:
        import pathlib

        path = pathlib.Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
        print(f"trend report written: {path}")
    else:
        sys.stdout.write(rendered)
    return 0


def command_bench_gate(args: argparse.Namespace) -> int:
    """Evaluate the experiment's declared thresholds against a baseline."""
    from repro.bench import GateError, evaluate_gates

    config = _bench_config(args)
    if config is None:
        return 2
    try:
        report = evaluate_gates(
            config,
            _bench_store(args),
            candidate=args.candidate,
            baseline=args.baseline,
            require_baseline=args.require_baseline,
        )
    except GateError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Provable Security for Outsourcing Database Operations' (ICDE 2006)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser("experiments", help="run E1-E10 with quick parameters")
    experiments.add_argument("--only", nargs="*", metavar="ID", help="experiment ids, e.g. E1 E4")
    experiments.set_defaults(handler=command_experiments)

    demo = subparsers.add_parser("demo", help="outsource a synthetic employee database")
    demo.add_argument("--scheme", choices=available_schemes(), default="swp")
    demo.add_argument("--size", type=int, default=500)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(handler=command_demo)

    attack = subparsers.add_parser("attack", help="run one of the paper's attacks")
    attack.add_argument("attack", choices=("salary-pair", "hospital", "john"))
    attack.add_argument("--scheme", choices=available_schemes(), default=None,
                        help="target scheme for salary-pair (default bucketization)")
    attack.add_argument("--size", type=int, default=1000, help="hospital database size")
    attack.add_argument("--trials", type=int, default=100, help="game trials for salary-pair")
    attack.add_argument("--seed", type=int, default=0)
    attack.set_defaults(handler=command_attack)

    serve = subparsers.add_parser("serve", help="run a standalone TCP provider")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=7707,
                       help="bind port (0 picks an ephemeral one)")
    serve.add_argument("--data-dir", default=None, metavar="DIR",
                       help="persist relations as files under DIR (default in-memory)")
    serve.add_argument("--max-audit-events", type=int, default=10_000,
                       help="ring-buffer cap on the provider's audit log")
    serve.add_argument("--max-frame-size", type=int, default=64 * 1024 * 1024,
                       help="reject frames larger than this many bytes")
    serve.add_argument("--stats-interval", type=float, default=0.0, metavar="SECONDS",
                       help="log a transport-stats line every SECONDS (0 disables)")
    serve.add_argument("--dispatch-workers", type=int, default=4, metavar="N",
                       help="requests touching different relations execute on up "
                            "to N threads (same-relation requests stay FIFO)")
    serve.add_argument("--slow-query-threshold", type=float, default=1.0,
                       metavar="SECONDS",
                       help="traced requests slower than this land in the "
                            "slow-query log (inspect with `repro trace`)")
    serve.set_defaults(handler=command_serve)

    cluster = subparsers.add_parser("cluster", help="sharded multi-provider tools")
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    spawn = cluster_sub.add_parser(
        "spawn", help="run a local fleet of providers on ephemeral ports")
    spawn.add_argument("--shards", type=int, default=2, help="number of providers")
    spawn.add_argument("--replicas", type=int, default=1,
                       help="replication factor advertised in the cluster URL "
                            "(tuples stored on this many shards)")
    spawn.add_argument("--host", default="127.0.0.1", help="bind address")
    spawn.add_argument("--data-dir", default=None, metavar="DIR",
                       help="persist each shard under DIR/shard-<i> (default in-memory)")
    spawn.add_argument("--max-audit-events", type=int, default=10_000,
                       help="ring-buffer cap on each provider's audit log")
    spawn.add_argument("--manifest", default=None, metavar="FILE",
                       help="write the fleet topology (shard ids/addresses, "
                            "replication, ring config) to FILE; sessions restore "
                            "it with cluster+file://FILE")
    spawn.set_defaults(handler=command_cluster_spawn)

    route = cluster_sub.add_parser(
        "route", help="show the deterministic ring placement (offline)")
    route.add_argument("url", help="cluster://host:port,...[?replicas=R] URL")
    route.add_argument("--keys", type=int, default=10_000,
                       help="number of sample keys for the distribution")
    route.add_argument("--key", default=None, metavar="HEX",
                       help="show the replica shards of one key instead")
    route.add_argument("--replicas", type=int, default=None,
                       help="replication factor (default: the URL's ?replicas, else 1)")
    route.add_argument("--virtual-nodes", type=int, default=None,
                       help="virtual nodes per shard (default: the ring's default)")
    route.set_defaults(handler=command_cluster_route)

    status = cluster_sub.add_parser(
        "status", help="probe every shard of a running fleet")
    status.add_argument("url", nargs="?", default=None,
                        help="cluster://host:port,...[?replicas=R] URL")
    status.add_argument("--manifest", default=None, metavar="FILE",
                        help="read the fleet topology from a manifest file "
                             "instead of a URL")
    status.add_argument("--timeout", type=float, default=10.0,
                        help="per-shard connection timeout in seconds")
    status.set_defaults(handler=command_cluster_status)

    stats_cmd = subparsers.add_parser(
        "stats", help="scrape the metrics plane of a provider or fleet")
    stats_cmd.add_argument("url", help="tcp://host:port or cluster://host:port,... URL")
    stats_cmd.add_argument("--prometheus", action="store_true",
                           help="print the Prometheus text exposition instead "
                                "of the human summary")
    stats_cmd.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                           help="rescrape every SECONDS until interrupted")
    stats_cmd.add_argument("--timeout", type=float, default=10.0,
                           help="per-shard connection timeout in seconds")
    stats_cmd.set_defaults(handler=command_stats)

    trace_cmd = subparsers.add_parser(
        "trace", help="inspect recent traces and slow queries of a provider or fleet")
    trace_cmd.add_argument("url", help="tcp://host:port or cluster://host:port,... URL")
    trace_cmd.add_argument("--trace-id", default=None, metavar="HEX",
                           help="assemble one trace by id across every shard "
                                "instead of listing recent ones")
    trace_cmd.add_argument("--limit", type=int, default=10,
                           help="recent traces / slow queries to show per shard")
    trace_cmd.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                           help="re-poll every SECONDS until interrupted")
    trace_cmd.add_argument("--timeout", type=float, default=10.0,
                           help="per-shard connection timeout in seconds")
    trace_cmd.set_defaults(handler=command_trace)

    bench = subparsers.add_parser(
        "bench", help="declarative benchmark matrices, trend reports, gates")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    def _bench_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--results-dir", default="benchmarks/results",
                         metavar="DIR",
                         help="result store root (per-rev history lives in "
                              "DIR/<git-rev>/)")

    bench_run = bench_sub.add_parser(
        "run", help="execute a matrix config with warmup/repeat discipline")
    bench_run.add_argument("--config", required=True, metavar="FILE",
                           help="JSON matrix config (see benchmarks/configs/)")
    bench_run.add_argument("--rev", default=None, metavar="LABEL",
                           help="record under this revision label instead of "
                                "the current git revision (CI uses synthetic "
                                "labels to compare runs of one checkout)")
    bench_run.add_argument("--repeats", type=int, default=None,
                           help="override the config's repeat count")
    bench_run.add_argument("--warmup", type=int, default=None,
                           help="override the config's warmup rounds")
    _bench_common(bench_run)
    bench_run.set_defaults(handler=command_bench_run)

    bench_report = bench_sub.add_parser(
        "report", help="render the markdown trend table across revisions")
    bench_report.add_argument("--config", default=None, metavar="FILE",
                              help="matrix config naming the experiment")
    bench_report.add_argument("--experiment", default=None, metavar="NAME",
                              help="experiment name (instead of --config)")
    bench_report.add_argument("--output", default=None, metavar="FILE",
                              help="write the report here instead of stdout")
    _bench_common(bench_report)
    bench_report.set_defaults(handler=command_bench_report)

    bench_gate = bench_sub.add_parser(
        "gate", help="evaluate declared thresholds against a baseline rev")
    bench_gate.add_argument("--config", required=True, metavar="FILE",
                            help="JSON matrix config declaring the gates")
    bench_gate.add_argument("--baseline", default=None, metavar="REV",
                            help="baseline revision label (default: the run "
                                 "recorded just before the candidate)")
    bench_gate.add_argument("--candidate", default=None, metavar="REV",
                            help="candidate revision label (default: the "
                                 "newest recorded run)")
    bench_gate.add_argument("--require-baseline", action="store_true",
                            help="fail instead of noting when no baseline "
                                 "run exists")
    _bench_common(bench_gate)
    bench_gate.set_defaults(handler=command_bench_gate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
