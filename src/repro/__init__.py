"""Reproduction of *Provable Security for Outsourcing Database Operations*.

Evdokimov, Fischmann, Günther -- ICDE 2006.

The library implements, from scratch:

* the **database privacy homomorphism** framework of Definition 1.1
  (:mod:`repro.core`), including the paper's construction of a DPH preserving
  exact selects from searchable encryption (Section 3);
* the **searchable encryption substrate** (:mod:`repro.searchable`): the
  Song--Wagner--Perrig scheme and a secure-index optimization;
* the **relational substrate** (:mod:`repro.relational`): schemas, relations,
  exact-select queries, a small SQL parser and a plaintext reference engine;
* the **baseline schemes** the paper attacks (:mod:`repro.schemes`):
  Hacigumus bucketization, Damiani hashed indexes, deterministic encryption;
* the **security framework** (:mod:`repro.security`): the indistinguishability
  games of Definitions 1.2 and 2.1, the concrete attacks of Sections 1 and 2,
  the generic Theorem-2.1 adversary and empirical advantage estimation;
* the **outsourcing protocol** (:mod:`repro.outsourcing`): an untrusted server
  (Eve) with pluggable ciphertext storage, a client (Alex) and the versioned
  byte-level messages they exchange (v2 adds ``DELETE_TUPLES`` and
  ``BATCH_QUERY`` for full CRUD);
* the **network serving layer** (:mod:`repro.net`): length-prefixed framing,
  an asyncio TCP provider (``repro serve``) for many concurrent clients, and
  a pooled client proxy so ``EncryptedDatabase.connect("tcp://host:port")``
  targets a remote provider transparently;
* the **cluster layer** (:mod:`repro.cluster`): consistent-hash sharding of
  one logical database across many providers with scatter-gather query
  execution and rebalancing, so
  ``EncryptedDatabase.connect("cluster://h1:p1,h2:p2")`` targets a whole
  fleet transparently (``repro cluster`` spawns/inspects one);
* the **public session API** (:mod:`repro.api`): the
  :class:`~repro.api.EncryptedDatabase` facade driving any scheme registered
  in :mod:`repro.schemes.registry` through the wire protocol;
* **workload generators** and **analysis utilities** for the experiment suite
  (:mod:`repro.workloads`, :mod:`repro.analysis`).

Quickstart::

    from repro import EncryptedDatabase

    db = EncryptedDatabase.open(scheme="swp")   # fresh key, in-memory provider
    db.create_table(
        "Emp(name:string[10], dept:string[5], salary:int[6])",
        rows=[("Montgomery", "HR", 7500), ("Smith", "IT", 5200)],
    )
    outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
    print(outcome.relation.tuples)
    db.update("SELECT * FROM Emp WHERE name = 'Smith'", {"salary": 5500})
    db.delete("SELECT * FROM Emp WHERE dept = 'HR'")

The lower-level objects (``SearchableSelectDph``, ``OutsourcingClient``, the
security games) remain available for experiments that need to drive single
pieces of the stack.
"""

from repro.api import DatabaseError, EncryptedDatabase
from repro.core.construction import SearchableSelectDph
from repro.core.dph import (
    DatabasePrivacyHomomorphism,
    EncryptedQuery,
    EncryptedRelation,
    EncryptedTuple,
)
from repro.crypto.keys import SecretKey
from repro.schemes.registry import available_schemes

__version__ = "1.3.0"

__all__ = [
    "DatabaseError",
    "EncryptedDatabase",
    "SearchableSelectDph",
    "DatabasePrivacyHomomorphism",
    "EncryptedQuery",
    "EncryptedRelation",
    "EncryptedTuple",
    "SecretKey",
    "available_schemes",
    "__version__",
]
