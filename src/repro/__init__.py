"""Reproduction of *Provable Security for Outsourcing Database Operations*.

Evdokimov, Fischmann, Günther -- ICDE 2006.

The library implements, from scratch:

* the **database privacy homomorphism** framework of Definition 1.1
  (:mod:`repro.core`), including the paper's construction of a DPH preserving
  exact selects from searchable encryption (Section 3);
* the **searchable encryption substrate** (:mod:`repro.searchable`): the
  Song--Wagner--Perrig scheme and a secure-index optimization;
* the **relational substrate** (:mod:`repro.relational`): schemas, relations,
  exact-select queries, a small SQL parser and a plaintext reference engine;
* the **baseline schemes** the paper attacks (:mod:`repro.schemes`):
  Hacigumus bucketization, Damiani hashed indexes, deterministic encryption;
* the **security framework** (:mod:`repro.security`): the indistinguishability
  games of Definitions 1.2 and 2.1, the concrete attacks of Sections 1 and 2,
  the generic Theorem-2.1 adversary and empirical advantage estimation;
* the **outsourcing protocol** (:mod:`repro.outsourcing`): an untrusted server
  (Eve), a client (Alex) and the messages they exchange;
* **workload generators** and **analysis utilities** for the experiment suite
  (:mod:`repro.workloads`, :mod:`repro.analysis`).

Quickstart::

    from repro import SearchableSelectDph, SecretKey
    from repro.relational import Relation, RelationSchema, Selection

    schema = RelationSchema.parse("Emp(name:string[10], dept:string[5], salary:int[6])")
    emp = Relation.from_rows(schema, [("Montgomery", "HR", 7500), ("Smith", "IT", 5200)])

    dph = SearchableSelectDph(schema, SecretKey.generate())
    encrypted = dph.encrypt_relation(emp)              # E_k(R), stored at the provider
    psi = dph.encrypt_query(Selection.equals("dept", "HR"))   # Eq_k(sigma)
    result = dph.server_evaluator().evaluate(psi, encrypted)  # runs at the provider
    report = dph.decrypt_result(result, Selection.equals("dept", "HR"))
    print(report.relation.tuples)
"""

from repro.core.construction import SearchableSelectDph
from repro.core.dph import (
    DatabasePrivacyHomomorphism,
    EncryptedQuery,
    EncryptedRelation,
    EncryptedTuple,
)
from repro.crypto.keys import SecretKey

__version__ = "1.0.0"

__all__ = [
    "SearchableSelectDph",
    "DatabasePrivacyHomomorphism",
    "EncryptedQuery",
    "EncryptedRelation",
    "EncryptedTuple",
    "SecretKey",
    "__version__",
]
