"""The gate engine: declarative thresholds over recorded history.

Gates make the result store *enforceable*: CI runs the quick-tier matrix,
then evaluates the experiment's declared thresholds against a baseline
revision and fails the build on violation, so a hot-path regression is a
red build instead of a number someone might notice.

Two threshold kinds (see :class:`~repro.bench.config.GateSpec`):

``max_regression_pct``
    Differential: each cell's mean throughput may not drop more than this
    percentage against the same cell at the baseline revision.  Cells
    without a baseline counterpart are noted, not failed -- a brand-new
    matrix cell must not brick CI.

``max_p99_s``
    Absolute: the candidate's p99 for a named latency histogram may not
    exceed its ceiling, baseline or no baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.config import MatrixConfig
from repro.bench.report import cell_p99
from repro.bench.store import ResultStore


class GateError(ValueError):
    """A gate evaluation that cannot even start (missing runs, bad revs)."""


@dataclass(frozen=True)
class GateViolation:
    """One tripped threshold."""

    config_id: str
    kind: str  # "regression" | "p99"
    measured: float
    limit: float
    detail: str

    def render(self) -> str:
        return f"FAIL {self.config_id}: {self.detail}"


@dataclass
class GateReport:
    """The outcome of one gate evaluation."""

    experiment: str
    baseline_rev: str | None
    candidate_rev: str
    violations: list[GateViolation] = field(default_factory=list)
    checks: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def render(self) -> str:
        baseline = self.baseline_rev or "(none)"
        lines = [
            f"gate {self.experiment}: candidate {self.candidate_rev} "
            f"vs baseline {baseline}: {self.checks} check(s), "
            f"{len(self.violations)} violation(s)"
        ]
        for note in self.notes:
            lines.append(f"  note: {note}")
        for violation in self.violations:
            lines.append(f"  {violation.render()}")
        lines.append("gate PASSED" if self.passed else "gate FAILED")
        return "\n".join(lines)


def evaluate_gates(
    config: MatrixConfig,
    store: ResultStore,
    *,
    candidate: str | None = None,
    baseline: str | None = None,
    require_baseline: bool = False,
) -> GateReport:
    """Check an experiment's thresholds; raises :class:`GateError` on
    missing candidate runs or unknown revision labels.

    ``candidate`` defaults to the newest recorded revision, ``baseline``
    to the one recorded just before it.
    """
    result_name = config.result_name
    revisions = store.revisions(result_name)
    if not revisions:
        raise GateError(
            f"no recorded runs of {result_name} under {store.root}; "
            f"run `repro bench run` first"
        )
    if candidate is None:
        candidate = revisions[-1]
    candidate_payload = store.load(result_name, candidate)
    if candidate_payload is None:
        raise GateError(
            f"candidate revision {candidate!r} has no {result_name} result "
            f"(recorded: {', '.join(revisions)})"
        )
    if baseline is None:
        earlier = [rev for rev in revisions if rev != candidate]
        # The newest run that is not the candidate itself.
        baseline = earlier[-1] if earlier else None
    baseline_payload = store.load(result_name, baseline) if baseline else None
    if baseline is not None and baseline_payload is None:
        raise GateError(
            f"baseline revision {baseline!r} has no {result_name} result "
            f"(recorded: {', '.join(revisions)})"
        )

    report = GateReport(
        experiment=config.experiment,
        baseline_rev=baseline,
        candidate_rev=candidate,
    )
    if baseline_payload is None:
        note = "no baseline revision recorded; regression checks skipped"
        if require_baseline:
            raise GateError(note)
        report.notes.append(note)

    baseline_cells = {
        cell["config_id"]: cell
        for cell in (baseline_payload or {}).get("cells", ())
        if "config_id" in cell
    }
    for cell in candidate_payload.get("cells", ()):
        config_id = cell.get("config_id", "?")
        _check_regression(report, config, config_id, cell, baseline_cells)
        _check_p99(report, config, config_id, cell)
    return report


def _check_regression(
    report: GateReport,
    config: MatrixConfig,
    config_id: str,
    cell: dict,
    baseline_cells: dict,
) -> None:
    limit = config.gates.max_regression_pct
    if limit is None or not baseline_cells:
        return
    base = baseline_cells.get(config_id)
    if base is None:
        report.notes.append(
            f"{config_id}: not in the baseline run; regression check skipped"
        )
        return
    base_mean = base.get("mean_ops_per_s")
    cand_mean = cell.get("mean_ops_per_s")
    if not base_mean or cand_mean is None:
        report.notes.append(
            f"{config_id}: baseline throughput unusable; regression check skipped"
        )
        return
    report.checks += 1
    regression_pct = (base_mean - cand_mean) / base_mean * 100.0
    if regression_pct > limit:
        report.violations.append(
            GateViolation(
                config_id=config_id,
                kind="regression",
                measured=regression_pct,
                limit=limit,
                detail=(
                    f"throughput {cand_mean:.1f} ops/s is {regression_pct:.1f}% "
                    f"below baseline {base_mean:.1f} ops/s "
                    f"(max_regression_pct {limit:g})"
                ),
            )
        )


def _check_p99(
    report: GateReport, config: MatrixConfig, config_id: str, cell: dict
) -> None:
    for metric, ceiling in config.gates.max_p99_s.items():
        p99 = cell_p99(cell, metric)
        if p99 is None:
            report.notes.append(
                f"{config_id}: no {metric} samples; p99 check skipped"
            )
            continue
        report.checks += 1
        if p99 > ceiling:
            report.violations.append(
                GateViolation(
                    config_id=config_id,
                    kind="p99",
                    measured=p99,
                    limit=ceiling,
                    detail=(
                        f"{metric} p99 {p99:.6f}s exceeds the "
                        f"{ceiling:g}s ceiling (max_p99_s)"
                    ),
                )
            )
