"""Markdown trend reports over the per-revision result history.

The report walks every revision the store has recorded for one experiment
(oldest run first), pivots the cells into a ``config x revision`` grid and
renders GitHub-flavoured markdown: one throughput table (mean +- stddev
ops/s, with the percentage change against the previous recorded revision
inline) and one latency table (the p99 of each cell's dominant
``session_op_seconds`` histogram).  Because every payload is stamped with
its ``git_rev`` and ``dirty`` flag by the store, the trajectory is read
straight off disk -- no benchmark re-runs, no external state.
"""

from __future__ import annotations

from repro.bench.config import MatrixConfig
from repro.bench.store import ResultStore

#: The latency histogram summarized per cell in the p99 table: the
#: session-level end-to-end op time exists for every transport.
HEADLINE_LATENCY_METRIC = "session_op_seconds"


def collect_trend(store: ResultStore, result_name: str) -> dict:
    """The pivoted history: revisions (oldest first), config ids, cells.

    Returns ``{"revisions": [...], "payloads": {rev: payload},
    "config_ids": [...]}`` where config ids keep first-seen order.
    """
    revisions = store.revisions(result_name)
    payloads: dict[str, dict] = {}
    config_ids: list[str] = []
    for rev in revisions:
        payload = store.load(result_name, rev)
        if payload is None:
            continue
        payloads[rev] = payload
        for cell in payload.get("cells", ()):
            config_id = cell.get("config_id")
            if config_id and config_id not in config_ids:
                config_ids.append(config_id)
    return {
        "revisions": [rev for rev in revisions if rev in payloads],
        "payloads": payloads,
        "config_ids": config_ids,
    }


def cell_p99(cell: dict, metric: str = HEADLINE_LATENCY_METRIC) -> float | None:
    """The worst p99 of a cell's summaries for ``metric``, or None."""
    candidates = [
        entry["p99"]
        for entry in cell.get("latency", ())
        if entry.get("name") == metric and entry.get("count")
    ]
    return max(candidates) if candidates else None


def _cells_by_id(payload: dict) -> dict[str, dict]:
    return {
        cell["config_id"]: cell
        for cell in payload.get("cells", ())
        if "config_id" in cell
    }


def _rev_heading(rev: str, payload: dict) -> str:
    label = rev if len(rev) <= 10 else rev[:10]
    if payload.get("dirty"):
        label += "\N{DAGGER}"
    return label


def render_trend_markdown(store: ResultStore, experiment: str) -> str:
    """The full markdown trend report for one experiment's history."""
    result_name = f"bench_{experiment}"
    trend = collect_trend(store, result_name)
    revisions = trend["revisions"]
    lines = [f"# Benchmark trend: {experiment}", ""]
    if not revisions:
        lines.append(
            f"No recorded runs of `{result_name}` in `{store.root}`; "
            f"run `repro bench run` first."
        )
        return "\n".join(lines) + "\n"
    payloads = trend["payloads"]
    headings = [_rev_heading(rev, payloads[rev]) for rev in revisions]
    generated = [payloads[rev].get("generated_at", "?") for rev in revisions]
    lines.append(
        f"{len(revisions)} recorded revision(s), oldest first "
        f"({generated[0]} .. {generated[-1]}). "
        "\N{DAGGER} marks a dirty checkout."
    )
    lines.append("")

    lines.append("## Throughput (mean \N{PLUS-MINUS SIGN} stddev ops/s)")
    lines.append("")
    lines.append("| config | " + " | ".join(headings) + " |")
    lines.append("|---" * (len(headings) + 1) + "|")
    for config_id in trend["config_ids"]:
        row = [f"`{config_id}`"]
        previous_mean: float | None = None
        for rev in revisions:
            cell = _cells_by_id(payloads[rev]).get(config_id)
            if cell is None:
                row.append("-")
                continue
            mean = cell.get("mean_ops_per_s")
            stddev = cell.get("stddev_ops_per_s", 0.0)
            if mean is None:
                row.append("-")
                continue
            rendered = f"{mean:.1f} \N{PLUS-MINUS SIGN}{stddev:.1f}"
            if previous_mean:
                change = (mean - previous_mean) / previous_mean * 100.0
                rendered += f" ({change:+.1f}%)"
            previous_mean = mean
            row.append(rendered)
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")

    lines.append(f"## Latency p99 (s, `{HEADLINE_LATENCY_METRIC}`)")
    lines.append("")
    lines.append("| config | " + " | ".join(headings) + " |")
    lines.append("|---" * (len(headings) + 1) + "|")
    for config_id in trend["config_ids"]:
        row = [f"`{config_id}`"]
        for rev in revisions:
            cell = _cells_by_id(payloads[rev]).get(config_id)
            p99 = cell_p99(cell) if cell is not None else None
            row.append(f"{p99:.6f}" if p99 is not None else "-")
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    return "\n".join(lines) + "\n"


def render_config_summary(config: MatrixConfig) -> str:
    """A one-line-per-cell description of what an experiment will run."""
    lines = [
        f"experiment {config.experiment!r}: {len(config.cells)} cell(s), "
        f"warmup {config.warmup}, repeats {config.repeats}, seed {config.seed}"
    ]
    for cell in config.cells:
        lines.append(f"  {cell.config_id}")
    return "\n".join(lines)
