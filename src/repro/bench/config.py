"""Declarative experiment matrix configs.

An experiment is a JSON document naming a matrix of benchmark cells plus
the measurement discipline and regression gates applied to all of them
(FuzzBench-style: the *what* of an experiment lives in config, the *how*
in the runner)::

    {
      "experiment": "quick",
      "warmup": 1,
      "repeats": 3,
      "seed": 8,
      "matrix": [
        {"benchmark": "exact_select", "scheme": "swp",
         "transport": ["in-process", "tcp"], "table_size": 96,
         "operations": 12},
        {"benchmark": "exact_select", "transport": "cluster",
         "shards": 2, "in_flight": 2, "table_size": 96, "operations": 12}
      ],
      "gates": {
        "max_regression_pct": 20,
        "max_p99_s": {"session_op_seconds": 5.0}
      }
    }

Every axis of a matrix entry may be a scalar or a list; lists expand to
the Cartesian product, so one entry declares a whole sweep.  Each expanded
cell gets a stable ``config_id`` -- the join key under which the store,
report and gates track its trajectory across revisions.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from dataclasses import dataclass, field

#: Workload kinds the runner knows how to drive.
BENCHMARKS = ("exact_select", "insert")

#: Transport axis values (cluster uses ``shards`` providers; the ``-async``
#: variants ride the pipelined ``?async=1`` client).
TRANSPORTS = ("in-process", "tcp", "tcp-async", "cluster", "cluster-async")

#: Key-popularity axis for read workloads: ``uniform`` cycles evenly over
#: the table, ``zipfian`` skews towards hot keys (the million-user regime
#: the cache tier targets), shaped by ``zipf_exponent``.
WORKLOADS = ("uniform", "zipfian")

#: Cache-tier axis: which hot-key result caches (see :mod:`repro.cache`)
#: the deployment runs with.  ``coordinator`` and ``both`` need a cluster
#: transport (the coordinator cache lives in the shard router).
CACHE_MODES = ("off", "client", "coordinator", "both")

#: Default Zipf skew; only recorded in the config_id when it matters
#: (zipfian cells), so pre-existing ids stay stable.
DEFAULT_ZIPF_EXPONENT = 1.1


class ConfigError(ValueError):
    """A matrix config that cannot be run."""


@dataclass(frozen=True)
class CellConfig:
    """One fully expanded point of the experiment matrix."""

    benchmark: str
    scheme: str = "swp"
    transport: str = "in-process"
    shards: int = 1
    in_flight: int = 1
    table_size: int = 100
    operations: int = 10
    workload: str = "uniform"
    zipf_exponent: float = DEFAULT_ZIPF_EXPONENT
    cache: str = "off"

    @property
    def config_id(self) -> str:
        """Stable identity of this cell across revisions (the join key).

        The workload and cache axes only appear for non-default values,
        so every pre-existing cell keeps the id its history was recorded
        under.
        """
        suffix = ""
        if self.workload != "uniform":
            suffix += f":w{self.workload}:z{self.zipf_exponent:g}"
        if self.cache != "off":
            suffix += f":c{self.cache}"
        return (
            f"{self.benchmark}:{self.scheme}:{self.transport}"
            f":s{self.shards}:d{self.in_flight}"
            f":n{self.table_size}:q{self.operations}{suffix}"
        )

    @property
    def uses_subprocess_fleet(self) -> bool:
        return self.transport != "in-process"

    def as_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "transport": self.transport,
            "shards": self.shards,
            "in_flight": self.in_flight,
            "table_size": self.table_size,
            "operations": self.operations,
            "workload": self.workload,
            "zipf_exponent": self.zipf_exponent,
            "cache": self.cache,
        }

    def validate(self) -> None:
        if self.benchmark not in BENCHMARKS:
            raise ConfigError(
                f"unknown benchmark {self.benchmark!r}; pick one of {BENCHMARKS}"
            )
        if self.transport not in TRANSPORTS:
            raise ConfigError(
                f"unknown transport {self.transport!r}; pick one of {TRANSPORTS}"
            )
        for knob in ("shards", "in_flight", "table_size", "operations"):
            value = getattr(self, knob)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ConfigError(f"{knob} must be a positive integer, got {value!r}")
        if self.transport.startswith("cluster"):
            if self.shards < 1:
                raise ConfigError("cluster transports need shards >= 1")
        elif self.shards != 1:
            raise ConfigError(
                f"transport {self.transport!r} runs one provider; shards must be 1"
            )
        if self.transport == "in-process" and self.in_flight != 1:
            raise ConfigError(
                "in-process sessions are single-threaded; in_flight must be 1 "
                "(use a tcp or cluster transport for concurrent clients)"
            )
        if self.workload not in WORKLOADS:
            raise ConfigError(
                f"unknown workload {self.workload!r}; pick one of {WORKLOADS}"
            )
        if (
            not isinstance(self.zipf_exponent, (int, float))
            or isinstance(self.zipf_exponent, bool)
            or self.zipf_exponent <= 0
        ):
            raise ConfigError(
                f"zipf_exponent must be a positive number, got {self.zipf_exponent!r}"
            )
        if self.cache not in CACHE_MODES:
            raise ConfigError(
                f"unknown cache mode {self.cache!r}; pick one of {CACHE_MODES}"
            )
        if self.cache in ("coordinator", "both") and not self.transport.startswith(
            "cluster"
        ):
            raise ConfigError(
                f"cache mode {self.cache!r} needs a cluster transport "
                "(the coordinator cache lives in the shard router)"
            )
        if self.benchmark != "exact_select" and self.workload != "uniform":
            raise ConfigError(
                f"the workload axis shapes read key popularity; "
                f"benchmark {self.benchmark!r} only supports 'uniform'"
            )


@dataclass(frozen=True)
class GateSpec:
    """Declarative thresholds evaluated by :mod:`repro.bench.gates`.

    ``max_regression_pct`` bounds the throughput drop of every cell against
    the baseline revision; ``max_p99_s`` maps latency-histogram metric
    names to absolute p99 ceilings checked on the candidate alone.
    """

    max_regression_pct: float | None = None
    max_p99_s: dict = field(default_factory=dict)

    @classmethod
    def from_dict(cls, raw: dict) -> "GateSpec":
        if not isinstance(raw, dict):
            raise ConfigError(f"gates must be an object, got {type(raw).__name__}")
        unknown = set(raw) - {"max_regression_pct", "max_p99_s"}
        if unknown:
            raise ConfigError(f"unknown gate key(s): {sorted(unknown)}")
        regression = raw.get("max_regression_pct")
        if regression is not None:
            if not isinstance(regression, (int, float)) or regression <= 0:
                raise ConfigError(
                    f"max_regression_pct must be a positive number, got {regression!r}"
                )
        ceilings = raw.get("max_p99_s", {})
        if not isinstance(ceilings, dict):
            raise ConfigError("max_p99_s must map metric names to ceilings")
        for metric, ceiling in ceilings.items():
            if not isinstance(ceiling, (int, float)) or ceiling <= 0:
                raise ConfigError(
                    f"max_p99_s[{metric!r}] must be a positive number, got {ceiling!r}"
                )
        return cls(
            max_regression_pct=float(regression) if regression is not None else None,
            max_p99_s={str(k): float(v) for k, v in ceilings.items()},
        )


@dataclass(frozen=True)
class MatrixConfig:
    """A named experiment: expanded cells + discipline + gates."""

    experiment: str
    cells: tuple[CellConfig, ...]
    warmup: int = 1
    repeats: int = 3
    seed: int = 0
    gates: GateSpec = field(default_factory=GateSpec)

    @property
    def result_name(self) -> str:
        """The store entry this experiment writes (``bench_<experiment>``)."""
        return f"bench_{self.experiment}"

    @classmethod
    def from_dict(cls, raw: dict) -> "MatrixConfig":
        if not isinstance(raw, dict):
            raise ConfigError(f"config must be an object, got {type(raw).__name__}")
        unknown = set(raw) - {"experiment", "warmup", "repeats", "seed", "matrix", "gates"}
        if unknown:
            raise ConfigError(f"unknown config key(s): {sorted(unknown)}")
        experiment = raw.get("experiment")
        if not isinstance(experiment, str) or not experiment.strip():
            raise ConfigError("experiment must be a non-empty string")
        warmup = raw.get("warmup", 1)
        repeats = raw.get("repeats", 3)
        seed = raw.get("seed", 0)
        if not isinstance(warmup, int) or isinstance(warmup, bool) or warmup < 0:
            raise ConfigError(f"warmup must be a non-negative integer, got {warmup!r}")
        if not isinstance(repeats, int) or isinstance(repeats, bool) or repeats < 1:
            raise ConfigError(f"repeats must be a positive integer, got {repeats!r}")
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ConfigError(f"seed must be an integer, got {seed!r}")
        matrix = raw.get("matrix")
        if not isinstance(matrix, list) or not matrix:
            raise ConfigError("matrix must be a non-empty list of entries")
        cells: list[CellConfig] = []
        seen: set[str] = set()
        for position, entry in enumerate(matrix):
            for cell in expand_matrix_entry(entry, position=position):
                cell.validate()
                if cell.config_id in seen:
                    raise ConfigError(
                        f"matrix expands to duplicate cell {cell.config_id}"
                    )
                seen.add(cell.config_id)
                cells.append(cell)
        gates = GateSpec.from_dict(raw.get("gates", {}))
        return cls(
            experiment=experiment.strip(),
            cells=tuple(cells),
            warmup=warmup,
            repeats=repeats,
            seed=seed,
            gates=gates,
        )

    @classmethod
    def load(cls, path: pathlib.Path | str) -> "MatrixConfig":
        """Parse and validate a JSON matrix config file."""
        path = pathlib.Path(path)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ConfigError(f"cannot read config {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigError(f"config {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(raw)


_AXES = ("benchmark", "scheme", "transport", "shards", "in_flight",
         "table_size", "operations", "workload", "zipf_exponent", "cache")


def expand_matrix_entry(entry: dict, *, position: int = 0) -> list[CellConfig]:
    """Expand one matrix entry (scalar-or-list axes) to concrete cells."""
    if not isinstance(entry, dict):
        raise ConfigError(
            f"matrix[{position}] must be an object, got {type(entry).__name__}"
        )
    unknown = set(entry) - set(_AXES)
    if unknown:
        raise ConfigError(f"matrix[{position}] has unknown axis/axes: {sorted(unknown)}")
    if "benchmark" not in entry:
        raise ConfigError(f"matrix[{position}] needs a benchmark")
    choices: list[list] = []
    for axis in _AXES:
        if axis not in entry:
            choices.append([None])
            continue
        value = entry[axis]
        values = list(value) if isinstance(value, (list, tuple)) else [value]
        if not values:
            raise ConfigError(f"matrix[{position}].{axis} expands to nothing")
        choices.append(values)
    cells = []
    for combination in itertools.product(*choices):
        kwargs = {
            axis: value
            for axis, value in zip(_AXES, combination)
            if value is not None
        }
        cells.append(CellConfig(**kwargs))
    return cells
