"""Matrix execution: warmup/repeat discipline over real deployments.

The runner turns each :class:`~repro.bench.config.CellConfig` into a live
deployment -- an in-process session, a ``repro serve`` provider subprocess,
or a whole ephemeral-port fleet behind ``cluster://`` (the e13/e15 harness
pattern, promoted from benchmark-local code to the library) -- seeds it
with a deterministic relation, then measures throughput with warmup rounds
discarded and every repeat recorded as its own sample.  Alongside the
wall-clock samples each cell captures a *delta* of the process-wide
metrics plane (PR 7), so p50/p95/p99 latency summaries are first-class
result fields scoped to that cell's own operations.

``REPRO_BENCH_SLOWDOWN_S`` injects a per-operation sleep into the timed
loop.  It exists for the CI gate smoke: a second run with the knob set
must trip ``repro bench gate`` against the clean baseline.
"""

from __future__ import annotations

import os
import pathlib
import re
import signal
import statistics
import subprocess
import sys
import threading
import time

from repro.bench.config import CellConfig, MatrixConfig
from repro.bench.store import ResultStore
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.obs.metrics import (
    aggregate_snapshot,
    histogram_summaries,
    snapshot_delta,
)

#: Fault-injection knob: seconds slept per operation inside the timed loop.
SLOWDOWN_ENV = "REPRO_BENCH_SLOWDOWN_S"

TABLE_DECL = "Bench(name:string[14], grp:string[5], val:int[6])"
TABLE_NAME = "Bench"
STARTUP_TIMEOUT_S = 30

_SRC = str(pathlib.Path(__file__).resolve().parent.parent.parent)


class BenchError(RuntimeError):
    """A benchmark deployment or measurement that went wrong."""


def injected_slowdown_s() -> float:
    """The per-operation sleep requested via :data:`SLOWDOWN_ENV` (>= 0)."""
    raw = os.environ.get(SLOWDOWN_ENV, "").strip()
    if not raw:
        return 0.0
    try:
        value = float(raw)
    except ValueError as exc:
        raise BenchError(f"{SLOWDOWN_ENV}={raw!r} is not a number") from exc
    if value < 0:
        raise BenchError(f"{SLOWDOWN_ENV} must be non-negative, got {value}")
    return value


class ProviderFleet:
    """``count`` real ``repro serve`` subprocesses on ephemeral ports."""

    def __init__(self, procs: list[subprocess.Popen], addresses: list[str]) -> None:
        self.procs = procs
        self.addresses = addresses

    @classmethod
    def spawn(cls, count: int) -> "ProviderFleet":
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        # The providers being measured must not inherit the fault knob.
        env.pop(SLOWDOWN_ENV, None)
        procs: list[subprocess.Popen] = []
        addresses: list[str] = []
        for _ in range(count):
            procs.append(
                subprocess.Popen(
                    [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    text=True,
                    env=env,
                )
            )
        try:
            for proc in procs:
                banner = _read_banner(proc)
                match = re.search(r"tcp://([\d.]+):(\d+)", banner)
                if not match:
                    raise BenchError(f"provider did not start: {banner!r}")
                addresses.append(f"{match.group(1)}:{match.group(2)}")
        except BaseException:
            cls(procs, addresses).stop()
            raise
        return cls(procs, addresses)

    def url(self, cell: CellConfig) -> str:
        if cell.transport.startswith("cluster"):
            url = "cluster://" + ",".join(self.addresses)
        else:
            url = f"tcp://{self.addresses[0]}"
        if cell.transport.endswith("-async"):
            url += "?async=1"
        return url

    def stop(self) -> None:
        for proc in self.procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in self.procs:
            try:
                proc.communicate(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate(timeout=10)

    def __enter__(self) -> "ProviderFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _read_banner(proc: subprocess.Popen) -> str:
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    banner = ""
    while time.monotonic() < deadline:
        banner = proc.stdout.readline()
        if banner or proc.poll() is not None:
            break
    return banner


def _rows(count: int) -> list[tuple]:
    return [(f"emp{i}", f"G{i % 7}", 1000 + i) for i in range(count)]


def _statements(cell: CellConfig, seed: int = 0) -> list[str]:
    """The cell's read statements: an even sweep, or a zipfian hot-key draw.

    The zipfian variant samples row indices from
    :class:`~repro.workloads.distributions.ZipfDistribution` under a
    seeded rng, so every repeat (and every revision) replays the same
    skewed key sequence.
    """
    if cell.workload == "zipfian":
        from repro.workloads.distributions import ZipfDistribution

        distribution = ZipfDistribution(
            range(cell.table_size), exponent=cell.zipf_exponent
        )
        rng = DeterministicRng(seed)
        indices = distribution.sample_many(rng, cell.operations)
    else:
        step = max(1, cell.table_size // cell.operations)
        indices = [(i * step) % cell.table_size for i in range(cell.operations)]
    return [
        f"SELECT * FROM {TABLE_NAME} WHERE name = 'emp{index}'"
        for index in indices
    ]


def run_cell(
    cell: CellConfig,
    *,
    warmup: int,
    repeats: int,
    seed: int,
    log=None,
) -> dict:
    """Deploy, seed, warm up and measure one cell; returns its payload."""
    from repro.api import EncryptedDatabase

    cell.validate()
    slowdown = injected_slowdown_s()
    secret_key = SecretKey.generate(rng=DeterministicRng(seed))
    # "client"/"both" add the per-session cache; "coordinator"/"both" add
    # the shared router cache (cluster transports only, enforced by
    # validate): every session then rides ONE cache-enabled ShardRouter
    # instead of a private router each, which is the deployment shape the
    # coordinator tier exists for.
    session_cache = True if cell.cache in ("client", "both") else None
    router = None
    fleet: ProviderFleet | None = None
    sessions: list = []
    try:
        if cell.uses_subprocess_fleet:
            fleet = ProviderFleet.spawn(
                cell.shards if cell.transport.startswith("cluster") else 1
            )
            url = fleet.url(cell)
            if cell.cache in ("coordinator", "both"):
                from repro.cluster.router import ShardRouter

                router = ShardRouter.connect(url, cache=True)
                for _ in range(cell.in_flight):
                    sessions.append(
                        EncryptedDatabase.open(
                            secret_key,
                            server=router,
                            scheme=cell.scheme,
                            rng=DeterministicRng(seed),
                            cache=session_cache,
                        )
                    )
                seeder = sessions[0]
            else:
                seeder = EncryptedDatabase.connect(
                    url,
                    secret_key,
                    scheme=cell.scheme,
                    rng=DeterministicRng(seed),
                    cache=session_cache,
                )
                sessions.append(seeder)
                for _ in range(1, cell.in_flight):
                    extra = EncryptedDatabase.connect(
                        url,
                        secret_key,
                        scheme=cell.scheme,
                        rng=DeterministicRng(seed),
                        cache=session_cache,
                    )
                    sessions.append(extra)
        else:
            seeder = EncryptedDatabase.open(
                secret_key,
                scheme=cell.scheme,
                rng=DeterministicRng(seed),
                cache=session_cache,
            )
            sessions.append(seeder)
        seeder.create_table(TABLE_DECL, rows=_rows(cell.table_size))
        for session in sessions[1:]:
            session.attach_table(TABLE_DECL)

        fresh_names = iter(f"new{i}" for i in range(10_000_000))
        for _ in range(warmup):
            _one_round(cell, sessions, fresh_names, seed, slowdown=0.0)

        before = aggregate_snapshot()
        seconds: list[float] = []
        for repeat in range(repeats):
            elapsed = _one_round(cell, sessions, fresh_names, seed, slowdown=slowdown)
            seconds.append(elapsed)
            if log is not None:
                log(
                    f"    repeat {repeat + 1}/{repeats}: "
                    f"{cell.operations / elapsed:.1f} ops/s"
                )
        delta = snapshot_delta(before, aggregate_snapshot())
        cache_stats = {}
        if sessions and sessions[0].cache is not None:
            cache_stats["client"] = sessions[0].cache.stats()
        if router is not None and router.cache is not None:
            cache_stats["coordinator"] = router.cache.stats()
    finally:
        for session in sessions:
            try:
                session.close()
            except Exception:  # noqa: BLE001 - teardown must not mask results
                pass
        if router is not None:
            try:
                router.close()
            except Exception:  # noqa: BLE001 - teardown must not mask results
                pass
        if fleet is not None:
            fleet.stop()

    ops_per_s = [cell.operations / s for s in seconds]
    return {
        "config_id": cell.config_id,
        "params": cell.as_dict(),
        "ops_per_repeat": cell.operations,
        "samples": {
            "seconds": [round(s, 6) for s in seconds],
            "ops_per_s": [round(v, 3) for v in ops_per_s],
        },
        "mean_seconds": round(statistics.fmean(seconds), 6),
        "mean_ops_per_s": round(statistics.fmean(ops_per_s), 3),
        "stddev_ops_per_s": round(statistics.pstdev(ops_per_s), 3),
        "latency": histogram_summaries(delta),
        "slowdown_injected_s": slowdown,
        "cache": cache_stats,
    }


def _one_round(
    cell: CellConfig, sessions: list, fresh_names, seed: int = 0, *, slowdown: float
) -> float:
    """One timed pass over the cell's operations; returns elapsed seconds."""
    if cell.benchmark == "exact_select":
        statements = _statements(cell, seed)
        work = [
            (session, statements[index :: len(sessions)])
            for index, session in enumerate(sessions)
        ]

        def execute(session, statement) -> None:
            outcome = session.select(statement)
            if len(outcome.relation) != 1:
                raise BenchError(
                    f"{cell.config_id}: {statement!r} answered "
                    f"{len(outcome.relation)} tuple(s), expected exactly 1"
                )
    else:  # insert
        rows = [
            {"name": next(fresh_names), "grp": "NEW", "val": i}
            for i in range(cell.operations)
        ]
        work = [
            (session, rows[index :: len(sessions)])
            for index, session in enumerate(sessions)
        ]

        def execute(session, row) -> None:
            session.insert(TABLE_NAME, row)

    errors: list[BaseException] = []

    def worker(session, items) -> None:
        try:
            for item in items:
                execute(session, item)
                if slowdown:
                    time.sleep(slowdown)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    if len(sessions) == 1:
        start = time.perf_counter()
        worker(sessions[0], work[0][1])
        elapsed = time.perf_counter() - start
    else:
        threads = [
            threading.Thread(target=worker, args=(session, items))
            for session, items in work
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        elapsed = time.perf_counter() - start
    if errors:
        raise BenchError(f"{cell.config_id}: worker failed: {errors[0]}") from errors[0]
    if elapsed <= 0:
        elapsed = 1e-9
    return elapsed


def run_matrix(
    config: MatrixConfig,
    *,
    store: ResultStore | None = None,
    rev: str | None = None,
    log=None,
) -> dict:
    """Run every cell of an experiment; persist via ``store`` when given."""
    before = aggregate_snapshot()
    cells = []
    for index, cell in enumerate(config.cells):
        if log is not None:
            log(f"[{index + 1}/{len(config.cells)}] {cell.config_id}")
        cells.append(
            run_cell(
                cell,
                warmup=config.warmup,
                repeats=config.repeats,
                seed=config.seed,
                log=log,
            )
        )
    payload = {
        "kind": "bench-matrix",
        "experiment": config.experiment,
        "params": {
            "warmup": config.warmup,
            "repeats": config.repeats,
            "seed": config.seed,
        },
        "gates": {
            "max_regression_pct": config.gates.max_regression_pct,
            "max_p99_s": dict(config.gates.max_p99_s),
        },
        "cells": cells,
        "runtime_metrics": snapshot_delta(before, aggregate_snapshot()),
    }
    if store is not None:
        payload["result_path"] = str(
            store.write(config.result_name, payload, rev=rev)
        )
    return payload
