"""Per-revision benchmark result store.

Every benchmark artifact -- the ``bench_e*`` JSON twins and the
:mod:`repro.bench` orchestrator's experiment runs -- lands in one layout::

    <root>/<git-rev>/<name>.json     the durable per-revision history
    <root>/<name>.json               a "latest" copy at the legacy path

The per-revision copy is what :mod:`repro.bench.report` and
:mod:`repro.bench.gates` consume: results accumulate across commits instead
of clobbering each other, so metric trajectories and regression checks are
computed from recorded history rather than a single overwritten file.

Payloads are stamped with a ``schema_version``, the producing ``git_rev``,
a ``dirty`` flag (uncommitted changes make a number non-attributable to its
revision) and a ``generated_at`` UTC timestamp.  Revisions are ordered by
the newest ``generated_at`` they contain, so "previous revision" means
"previous *run*" even when branch history is nonlinear.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import time

#: Bumped whenever the stamped payload layout changes shape.
SCHEMA_VERSION = 2

#: Revision label used when the store runs outside a usable git checkout.
UNVERSIONED = "unversioned"


def git_revision(cwd: pathlib.Path | str | None = None) -> str | None:
    """The current commit hash, or None outside a usable git checkout."""
    completed = _git(["rev-parse", "HEAD"], cwd)
    if completed is None or completed.returncode != 0:
        return None
    revision = completed.stdout.strip()
    return revision or None


def git_dirty(cwd: pathlib.Path | str | None = None) -> bool | None:
    """True when the checkout has uncommitted changes, None outside git."""
    completed = _git(["status", "--porcelain"], cwd)
    if completed is None or completed.returncode != 0:
        return None
    return bool(completed.stdout.strip())


def _git(args: list[str], cwd) -> subprocess.CompletedProcess | None:
    try:
        return subprocess.run(
            ["git", *args],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None


class ResultStore:
    """Reads and writes the per-revision result layout under ``root``."""

    def __init__(self, root: pathlib.Path | str) -> None:
        self.root = pathlib.Path(root)

    def write(
        self,
        name: str,
        payload: dict,
        *,
        rev: str | None = None,
        latest_copy: bool = True,
    ) -> pathlib.Path:
        """Stamp and persist one result; returns the per-revision path.

        ``rev`` overrides the revision label (CI uses synthetic labels to
        record several runs of one checkout); it defaults to the current
        git revision, or :data:`UNVERSIONED` outside a checkout.
        """
        if rev is None:
            rev = git_revision(self.root) or UNVERSIONED
        stamped = {
            "schema_version": SCHEMA_VERSION,
            "git_rev": rev,
            "dirty": git_dirty(self.root),
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **payload,
        }
        rendered = json.dumps(stamped, indent=2, sort_keys=False) + "\n"
        rev_dir = self.root / _safe_rev(rev)
        rev_dir.mkdir(parents=True, exist_ok=True)
        path = rev_dir / f"{name}.json"
        path.write_text(rendered, encoding="utf-8")
        if latest_copy:
            (self.root / f"{name}.json").write_text(rendered, encoding="utf-8")
        return path

    def revisions(self, name: str | None = None) -> list[str]:
        """Recorded revision labels, oldest run first.

        With ``name`` given, only revisions holding that result count.
        """
        stamps: list[tuple[float, str]] = []
        if not self.root.is_dir():
            return []
        for rev_dir in self.root.iterdir():
            if not rev_dir.is_dir():
                continue
            files = (
                [rev_dir / f"{name}.json"]
                if name is not None
                else list(rev_dir.glob("*.json"))
            )
            newest: float | None = None
            for path in files:
                if not path.is_file():
                    continue
                stamp = _generated_stamp(path)
                if newest is None or stamp > newest:
                    newest = stamp
            if newest is not None:
                stamps.append((newest, rev_dir.name))
        return [rev for _, rev in sorted(stamps)]

    def names(self, rev: str) -> list[str]:
        """Result names recorded at one revision."""
        rev_dir = self.root / _safe_rev(rev)
        if not rev_dir.is_dir():
            return []
        return sorted(path.stem for path in rev_dir.glob("*.json"))

    def load(self, name: str, rev: str | None = None) -> dict | None:
        """One stamped payload, or None; ``rev=None`` reads the latest copy."""
        if rev is None:
            path = self.root / f"{name}.json"
        else:
            path = self.root / _safe_rev(rev) / f"{name}.json"
        if not path.is_file():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None


def _safe_rev(rev: str) -> str:
    # Revision labels become directory names; keep path separators out.
    return rev.replace("/", "_") or UNVERSIONED


def _generated_stamp(path: pathlib.Path) -> float:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        recorded = payload.get("generated_at")
        if recorded:
            return time.mktime(time.strptime(recorded, "%Y-%m-%dT%H:%M:%SZ"))
    except (OSError, json.JSONDecodeError, ValueError, OverflowError):
        pass
    try:
        return path.stat().st_mtime
    except OSError:
        return 0.0
