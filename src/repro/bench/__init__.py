"""Declarative benchmark orchestration with per-revision history and gates.

The measurement discipline of the repository, FuzzBench-style: *what* to
measure is a checked-in JSON matrix config (benchmark x scheme x transport
x shards x in-flight depth, see :mod:`repro.bench.config`), *how* is the
runner's warmup/repeat/variance loop over real deployments
(:mod:`repro.bench.runner`), and every run lands in a per-git-revision
result store (:mod:`repro.bench.store`) that the trend report
(:mod:`repro.bench.report`) and the CI regression gates
(:mod:`repro.bench.gates`) consume.  Surfaced as ``repro bench
run / report / gate``.
"""

from repro.bench.config import (
    BENCHMARKS,
    CellConfig,
    ConfigError,
    GateSpec,
    MatrixConfig,
    TRANSPORTS,
    expand_matrix_entry,
)
from repro.bench.gates import GateError, GateReport, GateViolation, evaluate_gates
from repro.bench.report import collect_trend, render_trend_markdown
from repro.bench.runner import (
    BenchError,
    ProviderFleet,
    SLOWDOWN_ENV,
    injected_slowdown_s,
    run_cell,
    run_matrix,
)
from repro.bench.store import (
    ResultStore,
    SCHEMA_VERSION,
    UNVERSIONED,
    git_dirty,
    git_revision,
)

__all__ = [
    "BENCHMARKS",
    "BenchError",
    "CellConfig",
    "ConfigError",
    "GateError",
    "GateReport",
    "GateSpec",
    "GateViolation",
    "MatrixConfig",
    "ProviderFleet",
    "ResultStore",
    "SCHEMA_VERSION",
    "SLOWDOWN_ENV",
    "TRANSPORTS",
    "UNVERSIONED",
    "collect_trend",
    "evaluate_gates",
    "expand_matrix_entry",
    "git_dirty",
    "git_revision",
    "injected_slowdown_s",
    "render_trend_markdown",
    "run_cell",
    "run_matrix",
]
