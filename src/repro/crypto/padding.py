"""Padding schemes.

Two kinds of padding appear in the reproduction:

* **PKCS#7** byte padding, used by the block-cipher modes when a plaintext is
  not a multiple of the block size.
* **Fixed-width '#' padding**, which is exactly the padding the paper uses to
  bring attribute values to the globally fixed word length::

      <name:"Montgomery", dept:"HR", sal:7500>
          |-> {"MontgomeryN", "HR########D", "7500######S"}

  The functions :func:`hash_pad` / :func:`hash_unpad` implement that scheme
  over byte strings; the relational encoding layer
  (:mod:`repro.relational.encoding`) uses them for string attributes.
"""

from __future__ import annotations

from repro.crypto.errors import PaddingError

#: The padding byte used by the paper's examples (the ``'#'`` symbol).
PAD_BYTE = b"#"


def pkcs7_pad(data: bytes, block_size: int) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` using PKCS#7."""
    if not 1 <= block_size <= 255:
        raise PaddingError("block size must be in [1, 255]")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int) -> bytes:
    """Remove PKCS#7 padding, validating it fully."""
    if not 1 <= block_size <= 255:
        raise PaddingError("block size must be in [1, 255]")
    if not data or len(data) % block_size != 0:
        raise PaddingError("padded data length is not a multiple of the block size")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise PaddingError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_len]


def hash_pad(value: bytes, width: int, pad_byte: bytes = PAD_BYTE) -> bytes:
    """Right-pad ``value`` with ``pad_byte`` (default ``'#'``) to exactly ``width`` bytes.

    Raises :class:`PaddingError` if the value is longer than the target width
    or if it already contains the padding byte (which would make unpadding
    ambiguous, the same restriction the paper implicitly relies on).
    """
    if len(pad_byte) != 1:
        raise PaddingError("pad byte must be a single byte")
    if len(value) > width:
        raise PaddingError(
            f"value of length {len(value)} does not fit in a width-{width} field"
        )
    if pad_byte in value:
        raise PaddingError("value must not contain the padding byte")
    return value + pad_byte * (width - len(value))


def hash_unpad(padded: bytes, pad_byte: bytes = PAD_BYTE) -> bytes:
    """Strip trailing ``pad_byte`` characters added by :func:`hash_pad`."""
    if len(pad_byte) != 1:
        raise PaddingError("pad byte must be a single byte")
    stripped = padded.rstrip(pad_byte)
    if pad_byte in stripped:
        raise PaddingError("padding byte occurs in the interior of the value")
    return stripped


def zero_pad(value: bytes, width: int) -> bytes:
    """Left-pad with ASCII ``'0'`` to ``width`` -- used for numeric attribute values."""
    if len(value) > width:
        raise PaddingError(
            f"value of length {len(value)} does not fit in a width-{width} field"
        )
    return b"0" * (width - len(value)) + value
