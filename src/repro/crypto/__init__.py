"""Cryptographic substrate for the reproduction.

The paper builds its database privacy homomorphism on top of generic
symmetric primitives ("a secure cipher", a searchable encryption scheme,
pseudorandom functions).  This package provides those primitives from
scratch, on top of :mod:`hashlib` / :mod:`hmac` only:

* :mod:`repro.crypto.prf` -- pseudorandom functions (HMAC-SHA256 based) with
  arbitrary output length.
* :mod:`repro.crypto.prg` -- a pseudorandom generator / keystream producer.
* :mod:`repro.crypto.prp` -- pseudorandom permutations: a byte-string Feistel
  network and a small-domain integer permutation (cycle walking), used e.g.
  for the secret bucket permutation of the Hacigumus scheme.
* :mod:`repro.crypto.blockcipher` -- a 16-byte Luby--Rackoff block cipher and
  the classic modes of operation (ECB/CBC/CTR) in :mod:`repro.crypto.modes`.
* :mod:`repro.crypto.symmetric` -- a randomized, authenticated symmetric
  encryption scheme (CTR + encrypt-then-MAC), the "secure cipher" used to
  protect tuple payloads.
* :mod:`repro.crypto.mac` -- message authentication codes.
* :mod:`repro.crypto.kdf` -- HKDF-style key derivation, used to derive
  independent sub-keys from a single master key.
* :mod:`repro.crypto.padding` -- PKCS#7 padding and the fixed-width ``'#'``
  padding used by the paper for attribute values.
* :mod:`repro.crypto.keys` -- key generation and hierarchical key management.
* :mod:`repro.crypto.rng` -- deterministic (seedable) and system randomness
  sources.

All primitives are deterministic given their key/nonce inputs, which makes the
security games in :mod:`repro.security` reproducible under a seeded RNG.
"""

from repro.crypto.errors import (
    CryptoError,
    DecryptionError,
    IntegrityError,
    KeyError_,
    PaddingError,
)
from repro.crypto.kdf import hkdf_expand, hkdf_extract, derive_key
from repro.crypto.keys import KeyHierarchy, SecretKey, generate_key
from repro.crypto.mac import Hmac, verify_mac
from repro.crypto.padding import (
    hash_pad,
    hash_unpad,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.prf import Prf
from repro.crypto.prg import Prg, keystream
from repro.crypto.prp import FeistelPrp, IntegerPrp, UnbalancedFeistelPrp
from repro.crypto.rng import DeterministicRng, SystemRng, RandomSource
from repro.crypto.symmetric import SymmetricCipher, SymmetricCiphertext

__all__ = [
    "CryptoError",
    "DecryptionError",
    "IntegrityError",
    "KeyError_",
    "PaddingError",
    "hkdf_expand",
    "hkdf_extract",
    "derive_key",
    "KeyHierarchy",
    "SecretKey",
    "generate_key",
    "Hmac",
    "verify_mac",
    "hash_pad",
    "hash_unpad",
    "pkcs7_pad",
    "pkcs7_unpad",
    "Prf",
    "Prg",
    "keystream",
    "FeistelPrp",
    "IntegerPrp",
    "UnbalancedFeistelPrp",
    "DeterministicRng",
    "SystemRng",
    "RandomSource",
    "SymmetricCipher",
    "SymmetricCiphertext",
]
