"""Pseudorandom permutations.

Two permutations are needed by the reproduced schemes:

* :class:`FeistelPrp` -- a balanced Feistel network over byte strings of a
  fixed even length.  It is the keyed, invertible "scrambling" primitive used
  to build the block cipher and to permute fixed-length identifiers.
* :class:`IntegerPrp` -- a permutation over the integer domain ``[0, n)`` for
  arbitrary ``n``, obtained from a Feistel network over the next power of two
  by *cycle walking*.  This is exactly the "secret permutation" with which the
  Hacigumus bucketization scheme encrypts interval identifiers: each bucket
  index is deterministically mapped to another index under the secret key.
"""

from __future__ import annotations

from repro.crypto.errors import ParameterError
from repro.crypto.prf import Prf
from repro.crypto.prg import xor_bytes

#: Number of Feistel rounds.  Four rounds already give a strong PRP in the
#: Luby--Rackoff sense; we use eight for margin since performance is not a
#: bottleneck at reproduction scale.
DEFAULT_ROUNDS = 8


class FeistelPrp:
    """Balanced Feistel permutation over byte strings of length ``block_len``.

    ``block_len`` must be even and at least 2.  Each round function is an
    independent PRF derived from the key and the round index, evaluated over
    the opposite half together with an optional *tweak* so the same key can
    safely permute several independent domains.
    """

    def __init__(self, key: bytes, block_len: int, rounds: int = DEFAULT_ROUNDS) -> None:
        if block_len < 2 or block_len % 2 != 0:
            raise ParameterError("block length must be an even number >= 2")
        if rounds < 4:
            raise ParameterError("at least 4 Feistel rounds are required")
        self._half = block_len // 2
        self._block_len = block_len
        self._round_prfs = [Prf(key, label=f"feistel-round-{r}") for r in range(rounds)]

    @property
    def block_len(self) -> int:
        """Length in bytes of the strings this permutation acts on."""
        return self._block_len

    def _round(self, index: int, half: bytes, tweak: bytes) -> bytes:
        return self._round_prfs[index].evaluate(tweak + b"|" + half, self._half)

    def permute(self, block: bytes, tweak: bytes = b"") -> bytes:
        """Apply the forward permutation."""
        if len(block) != self._block_len:
            raise ParameterError(
                f"block must be exactly {self._block_len} bytes, got {len(block)}"
            )
        left, right = block[: self._half], block[self._half:]
        for index in range(len(self._round_prfs)):
            left, right = right, xor_bytes(left, self._round(index, right, tweak))
        return left + right

    def invert(self, block: bytes, tweak: bytes = b"") -> bytes:
        """Apply the inverse permutation."""
        if len(block) != self._block_len:
            raise ParameterError(
                f"block must be exactly {self._block_len} bytes, got {len(block)}"
            )
        left, right = block[: self._half], block[self._half:]
        for index in reversed(range(len(self._round_prfs))):
            left, right = xor_bytes(right, self._round(index, left, tweak)), left
        return left + right


class UnbalancedFeistelPrp:
    """Feistel permutation over byte strings of *any* length >= 2.

    For odd lengths a balanced Feistel is impossible, so the string is split
    into a left part of ``ceil(n/2)`` bytes and a right part of ``floor(n/2)``
    bytes and the rounds alternate which half is masked (an alternating
    unbalanced Feistel network).  This is the permutation used to
    pre-encrypt words in the Song--Wagner--Perrig scheme, whose word length
    (longest attribute value + attribute-id width) is rarely even.
    """

    def __init__(self, key: bytes, block_len: int, rounds: int = DEFAULT_ROUNDS) -> None:
        if block_len < 2:
            raise ParameterError("block length must be at least 2 bytes")
        if rounds < 4:
            raise ParameterError("at least 4 Feistel rounds are required")
        self._block_len = block_len
        self._left_len = (block_len + 1) // 2
        self._right_len = block_len - self._left_len
        self._round_prfs = [Prf(key, label=f"ufeistel-round-{r}") for r in range(rounds)]

    @property
    def block_len(self) -> int:
        """Length in bytes of the strings this permutation acts on."""
        return self._block_len

    def _mask(self, index: int, source: bytes, out_len: int, tweak: bytes) -> bytes:
        return self._round_prfs[index].evaluate(tweak + b"|" + source, out_len)

    def permute(self, block: bytes, tweak: bytes = b"") -> bytes:
        """Apply the forward permutation."""
        if len(block) != self._block_len:
            raise ParameterError(
                f"block must be exactly {self._block_len} bytes, got {len(block)}"
            )
        left, right = block[: self._left_len], block[self._left_len:]
        for index in range(len(self._round_prfs)):
            if index % 2 == 0:
                left = xor_bytes(left, self._mask(index, right, self._left_len, tweak))
            else:
                right = xor_bytes(right, self._mask(index, left, self._right_len, tweak))
        return left + right

    def invert(self, block: bytes, tweak: bytes = b"") -> bytes:
        """Apply the inverse permutation."""
        if len(block) != self._block_len:
            raise ParameterError(
                f"block must be exactly {self._block_len} bytes, got {len(block)}"
            )
        left, right = block[: self._left_len], block[self._left_len:]
        for index in reversed(range(len(self._round_prfs))):
            if index % 2 == 0:
                left = xor_bytes(left, self._mask(index, right, self._left_len, tweak))
            else:
                right = xor_bytes(right, self._mask(index, left, self._right_len, tweak))
        return left + right


class IntegerPrp:
    """A pseudorandom permutation of the integers ``{0, ..., domain_size - 1}``.

    Implemented as a balanced Feistel network over the smallest even number of
    *bits* that covers the domain, with cycle walking for values that land in
    the (at most 4x larger) enclosing power-of-two domain but outside the
    target domain.  The tight enclosing domain keeps the expected number of
    walk steps below four, which matters because the bucketization baseline
    evaluates this permutation once per attribute of every encrypted tuple.
    """

    def __init__(self, key: bytes, domain_size: int, rounds: int = DEFAULT_ROUNDS) -> None:
        if domain_size < 1:
            raise ParameterError("domain size must be at least 1")
        if rounds < 4:
            raise ParameterError("at least 4 Feistel rounds are required")
        self._domain_size = domain_size
        bits = max(2, max(domain_size - 1, 1).bit_length())
        if bits % 2:
            bits += 1
        self._half_bits = bits // 2
        self._half_mask = (1 << self._half_bits) - 1
        self._round_prfs = [Prf(key, label=f"intprp-round-{r}") for r in range(rounds)]

    @property
    def domain_size(self) -> int:
        """Number of elements in the permuted domain."""
        return self._domain_size

    def _round(self, index: int, half: int) -> int:
        digest = self._round_prfs[index].evaluate(half.to_bytes(8, "big"), 8)
        return int.from_bytes(digest, "big") & self._half_mask

    def _feistel_forward(self, value: int) -> int:
        left = (value >> self._half_bits) & self._half_mask
        right = value & self._half_mask
        for index in range(len(self._round_prfs)):
            left, right = right, left ^ self._round(index, right)
        return (left << self._half_bits) | right

    def _feistel_backward(self, value: int) -> int:
        left = (value >> self._half_bits) & self._half_mask
        right = value & self._half_mask
        for index in reversed(range(len(self._round_prfs))):
            left, right = right ^ self._round(index, left), left
        return (left << self._half_bits) | right

    def _walk(self, value: int, forward: bool) -> int:
        step = self._feistel_forward if forward else self._feistel_backward
        current = value
        while True:
            current = step(current)
            if current < self._domain_size:
                return current

    def permute(self, value: int) -> int:
        """Map ``value`` to its image under the permutation."""
        if not 0 <= value < self._domain_size:
            raise ParameterError(
                f"value {value} outside permutation domain [0, {self._domain_size})"
            )
        if self._domain_size == 1:
            return 0
        return self._walk(value, forward=True)

    def invert(self, value: int) -> int:
        """Map ``value`` back to its preimage."""
        if not 0 <= value < self._domain_size:
            raise ParameterError(
                f"value {value} outside permutation domain [0, {self._domain_size})"
            )
        if self._domain_size == 1:
            return 0
        return self._walk(value, forward=False)
