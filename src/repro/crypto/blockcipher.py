"""A 16-byte block cipher and its key schedule.

The paper assumes an abstract "secure cipher" for tuple payloads.  This module
provides one built from the Feistel PRP of :mod:`repro.crypto.prp` with a
128-bit block.  By the Luby--Rackoff theorem a Feistel network whose round
functions are PRFs is a strong pseudorandom permutation, which is the standard
modelling assumption for a block cipher.

The cipher is deliberately simple -- correctness and clean interfaces matter
more here than raw speed -- but it is a real, invertible, keyed permutation
and the modes built on it (:mod:`repro.crypto.modes`) behave exactly like
their textbook counterparts, including the ECB weakness the distinguishing
attacks of Section 1 exploit when a scheme encrypts deterministically.
"""

from __future__ import annotations

from repro.crypto.errors import KeyError_, ParameterError
from repro.crypto.prp import FeistelPrp

#: Block length in bytes (128-bit blocks).
BLOCK_LEN = 16


class BlockCipher:
    """A keyed permutation of 16-byte blocks."""

    def __init__(self, key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or len(key) < 16:
            raise KeyError_("block cipher key must be at least 16 bytes")
        self._prp = FeistelPrp(bytes(key), BLOCK_LEN)

    @property
    def block_len(self) -> int:
        """Block length in bytes."""
        return BLOCK_LEN

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_LEN:
            raise ParameterError(f"block must be {BLOCK_LEN} bytes, got {len(block)}")
        return self._prp.permute(block)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_LEN:
            raise ParameterError(f"block must be {BLOCK_LEN} bytes, got {len(block)}")
        return self._prp.invert(block)
