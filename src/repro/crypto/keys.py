"""Key generation and hierarchical key management.

Definition 1.1 models a database PH as a tuple ``(K, E, Eq, D)`` where keys
are drawn uniformly from a key space ``K`` whose bit length is the security
parameter ``n``.  :func:`generate_key` draws such keys; :class:`KeyHierarchy`
expands one of them into the labelled sub-keys every concrete scheme needs,
so that the user-visible key material stays a single secret.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.errors import KeyError_
from repro.crypto.kdf import derive_key
from repro.crypto.rng import RandomSource, SystemRng

#: Default security parameter in bits (key length = n / 8 bytes).
DEFAULT_SECURITY_PARAMETER = 256


def generate_key(
    security_parameter: int = DEFAULT_SECURITY_PARAMETER,
    rng: RandomSource | None = None,
) -> bytes:
    """Draw a uniformly random key of ``security_parameter`` bits.

    ``security_parameter`` must be a multiple of 8 and at least 128.
    """
    if security_parameter % 8 != 0:
        raise KeyError_("security parameter must be a multiple of 8 bits")
    if security_parameter < 128:
        raise KeyError_("security parameter must be at least 128 bits")
    rng = rng if rng is not None else SystemRng()
    return rng.bytes(security_parameter // 8)


@dataclass(frozen=True)
class SecretKey:
    """A master secret together with its security parameter."""

    material: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.material, (bytes, bytearray)) or len(self.material) < 16:
            raise KeyError_("secret key material must be at least 16 bytes")

    @property
    def security_parameter(self) -> int:
        """Key length in bits (the ``n`` of the paper)."""
        return len(self.material) * 8

    @classmethod
    def generate(
        cls,
        security_parameter: int = DEFAULT_SECURITY_PARAMETER,
        rng: RandomSource | None = None,
    ) -> "SecretKey":
        """Generate a fresh uniformly random key."""
        return cls(generate_key(security_parameter, rng))

    def subkey(self, label: str, length: int = 32) -> bytes:
        """Derive the sub-key identified by ``label``."""
        return derive_key(self.material, label, length)

    def __repr__(self) -> str:  # never print key material
        return f"SecretKey(<{self.security_parameter} bits>)"


class KeyHierarchy:
    """Caches labelled sub-keys derived from a single :class:`SecretKey`.

    The concrete schemes ask for keys by purpose, e.g.::

        keys = KeyHierarchy(master)
        payload_key = keys.get("dph/payload")
        word_key = keys.get("swp/word")
    """

    def __init__(self, master: SecretKey) -> None:
        self._master = master
        self._cache: dict[tuple[str, int], bytes] = {}

    @property
    def master(self) -> SecretKey:
        """The master secret this hierarchy derives from."""
        return self._master

    def get(self, label: str, length: int = 32) -> bytes:
        """Return (and cache) the sub-key for ``label``."""
        cache_key = (label, length)
        if cache_key not in self._cache:
            self._cache[cache_key] = self._master.subkey(label, length)
        return self._cache[cache_key]
