"""Key derivation (HKDF, RFC 5869 style).

A single master key per outsourced database is expanded into the family of
sub-keys the construction needs: the tuple-payload encryption key, the
word-encryption key of the searchable scheme, the check-PRF key, the stream
key, the MAC key, and the bucket-permutation key of the baseline schemes.
Deriving them all from one secret keeps the user-facing API of
:class:`repro.core.construction.SearchableSelectDph` down to "one key",
exactly like the abstract ``(K, E, Eq, D)`` of Definition 1.1.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.errors import ParameterError

_DIGEST = hashlib.sha256
_DIGEST_SIZE = _DIGEST().digest_size


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract: concentrate possibly non-uniform key material into a PRK."""
    if not salt:
        salt = b"\x00" * _DIGEST_SIZE
    return hmac.new(salt, input_key_material, _DIGEST).digest()


def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: derive ``length`` output bytes bound to ``info``."""
    if length <= 0:
        raise ParameterError("derived key length must be positive")
    if length > 255 * _DIGEST_SIZE:
        raise ParameterError("derived key length too large for HKDF-Expand")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(
            pseudo_random_key, previous + info + bytes([counter]), _DIGEST
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def derive_key(master_key: bytes, label: str, length: int = 32, salt: bytes = b"repro") -> bytes:
    """Derive a ``length``-byte sub-key identified by ``label`` from ``master_key``.

    Distinct labels yield computationally independent keys.
    """
    prk = hkdf_extract(salt, master_key)
    return hkdf_expand(prk, label.encode("utf-8"), length)
