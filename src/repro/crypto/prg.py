"""Pseudorandom generator / keystream.

The SWP searchable encryption scheme encrypts the i-th word of a document by
XORing it with a pseudorandom value ``S_i`` drawn from a keystream.  This
module provides that keystream: a counter-mode generator built on the PRF of
:mod:`repro.crypto.prf`.

:class:`Prg` supports both sequential expansion (``next_block``) and random
access (``block_at``), the latter being what allows the server in the SWP
scheme to check a candidate position without replaying the whole stream.
"""

from __future__ import annotations

from repro.crypto.errors import ParameterError
from repro.crypto.prf import Prf


class Prg:
    """Counter-mode pseudorandom generator.

    Parameters
    ----------
    key:
        Seed key (>= 16 bytes).
    block_size:
        Size in bytes of each generated block.
    label:
        Domain-separation label, so several independent streams can be derived
        from the same key.
    """

    def __init__(self, key: bytes, block_size: int = 32, label: bytes | str = b"prg") -> None:
        if block_size <= 0:
            raise ParameterError("block size must be positive")
        self._prf = Prf(key, label=label)
        self._block_size = block_size
        self._position = 0

    @property
    def block_size(self) -> int:
        """Size in bytes of each block produced by this generator."""
        return self._block_size

    def block_at(self, index: int) -> bytes:
        """Return the ``index``-th block of the stream (random access)."""
        if index < 0:
            raise ParameterError("block index must be non-negative")
        return self._prf.evaluate(index.to_bytes(8, "big"), self._block_size)

    def next_block(self) -> bytes:
        """Return the next block in sequence, advancing the internal cursor."""
        block = self.block_at(self._position)
        self._position += 1
        return block

    def reset(self) -> None:
        """Rewind the sequential cursor to the start of the stream."""
        self._position = 0

    def generate(self, n: int) -> bytes:
        """Return ``n`` bytes starting from the current sequential position.

        The cursor advances by the number of whole blocks consumed; partial
        blocks are not re-consumed on the next call (the generator is meant
        for block-aligned use, as in SWP; arbitrary-length needs are served by
        :func:`keystream`).
        """
        if n < 0:
            raise ParameterError("n must be non-negative")
        out = bytearray()
        while len(out) < n:
            out.extend(self.next_block())
        return bytes(out[:n])


def keystream(key: bytes, length: int, nonce: bytes = b"", label: bytes | str = b"ks") -> bytes:
    """Return ``length`` keystream bytes bound to ``(key, nonce)``.

    This is the primitive used by the CTR mode of
    :class:`repro.crypto.symmetric.SymmetricCipher`.
    """
    if length < 0:
        raise ParameterError("length must be non-negative")
    prf = Prf(key, label=label)
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(prf.evaluate(nonce + counter.to_bytes(8, "big"), 32))
        counter += 1
    return bytes(out[:length])


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ParameterError(f"xor operands must have equal length ({len(a)} != {len(b)})")
    return bytes(x ^ y for x, y in zip(a, b))
