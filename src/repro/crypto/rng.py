"""Randomness sources.

The security games of the paper (Definitions 1.2 and 2.1) are probabilistic
experiments; to make the reproduction's measurements repeatable we route every
random choice through a :class:`RandomSource`.  Two implementations are
provided:

* :class:`SystemRng` -- wraps :func:`os.urandom`; used by default for key
  generation in the library proper.
* :class:`DeterministicRng` -- a seeded, hash-based generator producing an
  unlimited stream of pseudorandom bytes; used by tests, benchmarks and the
  experiment harness so that every reported number can be regenerated.

The deterministic generator is *not* meant to be cryptographically strong in
an adversarial sense (its seed is known to the experimenter); it is an
instrument for reproducibility, exactly like seeding ``numpy.random``.
"""

from __future__ import annotations

import hashlib
import os
from abc import ABC, abstractmethod


class RandomSource(ABC):
    """Abstract source of random bytes and derived convenience samplers."""

    @abstractmethod
    def bytes(self, n: int) -> bytes:
        """Return ``n`` random bytes."""

    def randint(self, low: int, high: int) -> int:
        """Return a uniformly random integer in the inclusive range ``[low, high]``.

        Uses rejection sampling over the minimal number of bytes so that the
        distribution is exactly uniform.
        """
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        if span == 1:
            return low
        nbytes = (span.bit_length() + 7) // 8
        limit = (256**nbytes // span) * span
        while True:
            value = int.from_bytes(self.bytes(nbytes), "big")
            if value < limit:
                return low + (value % span)

    def bit(self) -> int:
        """Return a uniformly random bit (0 or 1)."""
        return self.bytes(1)[0] & 1

    def choice(self, sequence):
        """Return a uniformly random element of a non-empty sequence."""
        if not sequence:
            raise ValueError("cannot choose from an empty sequence")
        return sequence[self.randint(0, len(sequence) - 1)]

    def shuffle(self, items: list) -> list:
        """Return a new list with the items in a uniformly random order.

        Fisher--Yates over a copy; the input list is left untouched.
        """
        result = list(items)
        for i in range(len(result) - 1, 0, -1):
            j = self.randint(0, i)
            result[i], result[j] = result[j], result[i]
        return result

    def random(self) -> float:
        """Return a float uniform in ``[0, 1)`` with 53 bits of precision."""
        return int.from_bytes(self.bytes(7), "big") % (1 << 53) / float(1 << 53)

    def sample_distribution(self, weights: list[float]) -> int:
        """Sample an index proportionally to the given non-negative weights."""
        if any(weight < 0 for weight in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        point = self.random() * total
        acc = 0.0
        for index, weight in enumerate(weights):
            acc += weight
            if point < acc:
                return index
        return len(weights) - 1


class SystemRng(RandomSource):
    """Operating-system randomness (``os.urandom``)."""

    def bytes(self, n: int) -> bytes:
        if n < 0:
            raise ValueError("n must be non-negative")
        return os.urandom(n)


class DeterministicRng(RandomSource):
    """Seeded hash-counter generator for reproducible experiments.

    The byte stream is ``SHA-256(seed || counter)`` for ``counter = 0, 1, ...``
    which gives independent-looking blocks for distinct seeds and never
    repeats state across instances with different seeds.
    """

    def __init__(self, seed: int | bytes | str = 0) -> None:
        if isinstance(seed, int):
            seed_bytes = seed.to_bytes(16, "big", signed=False)
        elif isinstance(seed, str):
            seed_bytes = seed.encode("utf-8")
        else:
            seed_bytes = bytes(seed)
        self._seed = seed_bytes
        self._counter = 0
        self._buffer = b""

    def bytes(self, n: int) -> bytes:
        if n < 0:
            raise ValueError("n must be non-negative")
        while len(self._buffer) < n:
            block = hashlib.sha256(
                self._seed + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            self._buffer += block
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent generator for a sub-experiment.

        Forking lets concurrent components (e.g. the challenger and the data
        generator of a security game) draw from independent streams that are
        still fully determined by the top-level seed.
        """
        return DeterministicRng(hashlib.sha256(self._seed + label.encode("utf-8")).digest())


def default_rng(seed: int | None = None) -> RandomSource:
    """Return a :class:`DeterministicRng` if ``seed`` is given, else :class:`SystemRng`."""
    if seed is None:
        return SystemRng()
    return DeterministicRng(seed)
