"""Randomized authenticated symmetric encryption.

This is the "secure cipher" of the paper: the scheme with which every tuple
payload is encrypted before being stored at the untrusted server.  It is a
standard encrypt-then-MAC composition:

* confidentiality: CTR keystream derived from a PRF and a fresh random nonce
  (IND-CPA under the PRF assumption);
* integrity: HMAC-SHA256 over ``nonce || ciphertext`` (INT-CTXT).

Ciphertexts are represented by :class:`SymmetricCiphertext` and serialize to
``nonce || tag || body`` via :meth:`SymmetricCiphertext.to_bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.errors import DecryptionError, KeyError_
from repro.crypto.kdf import derive_key
from repro.crypto.mac import TAG_LEN, Hmac
from repro.crypto.prg import keystream, xor_bytes
from repro.crypto.rng import RandomSource, SystemRng

#: Nonce length in bytes.
NONCE_LEN = 16


@dataclass(frozen=True)
class SymmetricCiphertext:
    """A ciphertext produced by :class:`SymmetricCipher`."""

    nonce: bytes
    tag: bytes
    body: bytes

    def to_bytes(self) -> bytes:
        """Serialize as ``nonce || tag || body``."""
        return self.nonce + self.tag + self.body

    @classmethod
    def from_bytes(cls, raw: bytes) -> "SymmetricCiphertext":
        """Parse the ``nonce || tag || body`` wire format."""
        if len(raw) < NONCE_LEN + TAG_LEN:
            raise DecryptionError("ciphertext too short")
        return cls(
            nonce=raw[:NONCE_LEN],
            tag=raw[NONCE_LEN: NONCE_LEN + TAG_LEN],
            body=raw[NONCE_LEN + TAG_LEN:],
        )

    def __len__(self) -> int:
        return NONCE_LEN + TAG_LEN + len(self.body)


class SymmetricCipher:
    """Authenticated encryption with associated data (encrypt-then-MAC)."""

    def __init__(self, key: bytes, rng: RandomSource | None = None) -> None:
        if not isinstance(key, (bytes, bytearray)) or len(key) < 16:
            raise KeyError_("symmetric key must be at least 16 bytes")
        self._enc_key = derive_key(bytes(key), "symmetric/enc")
        self._mac = Hmac(derive_key(bytes(key), "symmetric/mac"))
        self._rng = rng if rng is not None else SystemRng()

    def encrypt(self, plaintext: bytes, associated_data: bytes = b"") -> SymmetricCiphertext:
        """Encrypt and authenticate ``plaintext`` (binding ``associated_data``)."""
        nonce = self._rng.bytes(NONCE_LEN)
        body = xor_bytes(plaintext, keystream(self._enc_key, len(plaintext), nonce=nonce))
        tag = self._mac.tag(associated_data + nonce + body)
        return SymmetricCiphertext(nonce=nonce, tag=tag, body=body)

    def decrypt(self, ciphertext: SymmetricCiphertext, associated_data: bytes = b"") -> bytes:
        """Verify and decrypt; raises :class:`~repro.crypto.errors.IntegrityError` on tampering."""
        self._mac.verify(
            associated_data + ciphertext.nonce + ciphertext.body, ciphertext.tag
        )
        return xor_bytes(
            ciphertext.body,
            keystream(self._enc_key, len(ciphertext.body), nonce=ciphertext.nonce),
        )

    def encrypt_bytes(self, plaintext: bytes, associated_data: bytes = b"") -> bytes:
        """Encrypt and return the serialized wire format."""
        return self.encrypt(plaintext, associated_data).to_bytes()

    def decrypt_bytes(self, raw: bytes, associated_data: bytes = b"") -> bytes:
        """Parse the wire format and decrypt."""
        return self.decrypt(SymmetricCiphertext.from_bytes(raw), associated_data)
