"""Message authentication codes.

The authenticated symmetric cipher (:mod:`repro.crypto.symmetric`) follows the
encrypt-then-MAC composition; this module provides the MAC half.  A MAC is
also what lets the client (Alex) detect a server (Eve) that tampers with
stored ciphertexts -- not something the paper's honest-but-curious model
requires, but a property any real deployment of the construction would want.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.errors import IntegrityError, KeyError_

_DIGEST = hashlib.sha256

#: Length in bytes of the tags produced by :class:`Hmac`.
TAG_LEN = 32


class Hmac:
    """HMAC-SHA256 message authentication."""

    def __init__(self, key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or len(key) < 16:
            raise KeyError_("MAC key must be at least 16 bytes")
        self._key = bytes(key)

    def tag(self, message: bytes) -> bytes:
        """Return the authentication tag for ``message``."""
        return hmac.new(self._key, message, _DIGEST).digest()

    def verify(self, message: bytes, tag: bytes) -> None:
        """Verify a tag in constant time; raise :class:`IntegrityError` on mismatch."""
        expected = self.tag(message)
        if not hmac.compare_digest(expected, tag):
            raise IntegrityError("MAC verification failed")


def verify_mac(key: bytes, message: bytes, tag: bytes) -> None:
    """One-shot MAC verification."""
    Hmac(key).verify(message, tag)
