"""Exception hierarchy for the cryptographic substrate.

Every error raised by :mod:`repro.crypto` derives from :class:`CryptoError`,
so callers can catch a single base class at trust boundaries (e.g. the client
decrypting data returned by an untrusted server).
"""

from __future__ import annotations


class CryptoError(Exception):
    """Base class for all cryptographic errors in this package."""


class KeyError_(CryptoError):
    """A key has the wrong length, type, or is otherwise unusable.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`KeyError`.
    """


class PaddingError(CryptoError):
    """Padding is malformed and cannot be removed.

    Raised by :func:`repro.crypto.padding.pkcs7_unpad` and
    :func:`repro.crypto.padding.hash_unpad` when the padded input does not
    conform to the expected format.  Callers that decrypt attacker-controlled
    data should treat this identically to :class:`DecryptionError` to avoid
    padding-oracle style information leaks.
    """


class DecryptionError(CryptoError):
    """A ciphertext could not be decrypted (malformed or wrong key)."""


class IntegrityError(DecryptionError):
    """An authentication tag did not verify.

    Subclass of :class:`DecryptionError` because an integrity failure always
    implies the ciphertext must be rejected.
    """


class ParameterError(CryptoError):
    """A primitive was instantiated with invalid parameters."""
