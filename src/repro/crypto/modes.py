"""Block-cipher modes of operation: ECB, CBC and CTR.

The deterministic ECB mode is included on purpose: it is the cleanest way to
demonstrate *why* the distinguishing attacks of the paper work.  A scheme that
encrypts equal attribute values to equal ciphertexts (ECB-like, as the
bucketization and hashed-index baselines effectively do) loses the
indistinguishability game of Definition 1.2 immediately; the randomized CBC
and CTR modes do not.
"""

from __future__ import annotations

from repro.crypto.blockcipher import BLOCK_LEN, BlockCipher
from repro.crypto.errors import DecryptionError, ParameterError
from repro.crypto.padding import pkcs7_pad, pkcs7_unpad
from repro.crypto.prg import xor_bytes
from repro.crypto.rng import RandomSource, SystemRng


def _split_blocks(data: bytes) -> list[bytes]:
    if len(data) % BLOCK_LEN != 0:
        raise DecryptionError("ciphertext length is not a multiple of the block size")
    return [data[i: i + BLOCK_LEN] for i in range(0, len(data), BLOCK_LEN)]


class EcbMode:
    """Electronic codebook: deterministic, leaks equality of blocks."""

    def __init__(self, cipher: BlockCipher) -> None:
        self._cipher = cipher

    def encrypt(self, plaintext: bytes) -> bytes:
        padded = pkcs7_pad(plaintext, BLOCK_LEN)
        return b"".join(
            self._cipher.encrypt_block(padded[i: i + BLOCK_LEN])
            for i in range(0, len(padded), BLOCK_LEN)
        )

    def decrypt(self, ciphertext: bytes) -> bytes:
        blocks = _split_blocks(ciphertext)
        padded = b"".join(self._cipher.decrypt_block(b) for b in blocks)
        return pkcs7_unpad(padded, BLOCK_LEN)


class CbcMode:
    """Cipher block chaining with a random IV prepended to the ciphertext."""

    def __init__(self, cipher: BlockCipher, rng: RandomSource | None = None) -> None:
        self._cipher = cipher
        self._rng = rng if rng is not None else SystemRng()

    def encrypt(self, plaintext: bytes, iv: bytes | None = None) -> bytes:
        if iv is None:
            iv = self._rng.bytes(BLOCK_LEN)
        if len(iv) != BLOCK_LEN:
            raise ParameterError(f"IV must be {BLOCK_LEN} bytes")
        padded = pkcs7_pad(plaintext, BLOCK_LEN)
        out = [iv]
        previous = iv
        for i in range(0, len(padded), BLOCK_LEN):
            block = self._cipher.encrypt_block(xor_bytes(padded[i: i + BLOCK_LEN], previous))
            out.append(block)
            previous = block
        return b"".join(out)

    def decrypt(self, ciphertext: bytes) -> bytes:
        blocks = _split_blocks(ciphertext)
        if len(blocks) < 2:
            raise DecryptionError("CBC ciphertext must contain an IV and at least one block")
        iv, body = blocks[0], blocks[1:]
        out = []
        previous = iv
        for block in body:
            out.append(xor_bytes(self._cipher.decrypt_block(block), previous))
            previous = block
        return pkcs7_unpad(b"".join(out), BLOCK_LEN)


class CtrMode:
    """Counter mode with a random 8-byte nonce prepended to the ciphertext."""

    NONCE_LEN = 8

    def __init__(self, cipher: BlockCipher, rng: RandomSource | None = None) -> None:
        self._cipher = cipher
        self._rng = rng if rng is not None else SystemRng()

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < length:
            block_input = nonce + counter.to_bytes(BLOCK_LEN - self.NONCE_LEN, "big")
            out.extend(self._cipher.encrypt_block(block_input))
            counter += 1
        return bytes(out[:length])

    def encrypt(self, plaintext: bytes, nonce: bytes | None = None) -> bytes:
        if nonce is None:
            nonce = self._rng.bytes(self.NONCE_LEN)
        if len(nonce) != self.NONCE_LEN:
            raise ParameterError(f"nonce must be {self.NONCE_LEN} bytes")
        stream = self._keystream(nonce, len(plaintext))
        return nonce + xor_bytes(plaintext, stream)

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < self.NONCE_LEN:
            raise DecryptionError("CTR ciphertext shorter than the nonce")
        nonce, body = ciphertext[: self.NONCE_LEN], ciphertext[self.NONCE_LEN:]
        stream = self._keystream(nonce, len(body))
        return xor_bytes(body, stream)
