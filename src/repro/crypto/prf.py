"""Pseudorandom functions.

The Song--Wagner--Perrig searchable encryption scheme (the substrate of the
paper's construction, Section 3) is described in terms of three keyed
primitives: a pseudorandom generator *G*, a pseudorandom function *F* and a
keyed hash/PRF family *f*.  This module provides the PRF; the generator lives
in :mod:`repro.crypto.prg`.

The PRF is instantiated as HMAC-SHA256 with an output-length extension in the
style of HKDF-Expand, so callers can request arbitrary output lengths while
distinct lengths on the same input remain prefix-consistent only when the
caller asks for them to be (they are not, by design: the requested length is
mixed into the derivation to keep outputs of different lengths independent).
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.errors import KeyError_, ParameterError

_DIGEST = hashlib.sha256
_DIGEST_SIZE = _DIGEST().digest_size

#: Minimum key length (bytes) accepted by :class:`Prf`.
MIN_KEY_LEN = 16


class Prf:
    """A variable-output-length pseudorandom function keyed with ``key``.

    Parameters
    ----------
    key:
        Secret key, at least :data:`MIN_KEY_LEN` bytes.
    label:
        Optional domain-separation label.  Two PRFs with the same key but
        different labels behave as independent random functions, which is how
        the library derives the many sub-keys used by the searchable scheme
        (word key, check key, stream key, ...) from one master secret.
    """

    def __init__(self, key: bytes, label: bytes | str = b"") -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise KeyError_("PRF key must be bytes")
        if len(key) < MIN_KEY_LEN:
            raise KeyError_(
                f"PRF key must be at least {MIN_KEY_LEN} bytes, got {len(key)}"
            )
        if isinstance(label, str):
            label = label.encode("utf-8")
        self._key = bytes(key) + b"|" + bytes(label)

    def evaluate(self, message: bytes, out_len: int = _DIGEST_SIZE) -> bytes:
        """Return ``out_len`` pseudorandom bytes determined by ``message``.

        For ``out_len`` larger than one digest the output is produced by
        HKDF-Expand-style chaining: ``T_i = HMAC(key, T_{i-1} || message || i)``.
        """
        if out_len <= 0:
            raise ParameterError("output length must be positive")
        if not isinstance(message, (bytes, bytearray)):
            raise ParameterError("PRF input must be bytes")
        message = bytes(message)
        # Mix the output length in so F(x, 16) and F(x, 32) are independent.
        info = message + b"|" + out_len.to_bytes(4, "big")
        blocks = []
        previous = b""
        counter = 1
        while sum(len(b) for b in blocks) < out_len:
            previous = hmac.new(
                self._key, previous + info + bytes([counter]), _DIGEST
            ).digest()
            blocks.append(previous)
            counter += 1
            if counter > 255:
                raise ParameterError("requested PRF output too long")
        return b"".join(blocks)[:out_len]

    def evaluate_int(self, message: bytes, modulus: int) -> int:
        """Return a pseudorandom integer in ``[0, modulus)``.

        The output is taken modulo ``modulus`` from 8 extra bytes of PRF
        output, which keeps the statistical distance from uniform below
        ``2^-64`` for any modulus that fits in 64 bits fewer than the output.
        """
        if modulus <= 0:
            raise ParameterError("modulus must be positive")
        nbytes = (modulus.bit_length() + 7) // 8 + 8
        return int.from_bytes(self.evaluate(message, nbytes), "big") % modulus

    def derive(self, label: bytes | str) -> "Prf":
        """Return an independent PRF derived from this one by a label."""
        if isinstance(label, str):
            label = label.encode("utf-8")
        sub_key = self.evaluate(b"derive|" + label, _DIGEST_SIZE)
        return Prf(sub_key)

    def __call__(self, message: bytes, out_len: int = _DIGEST_SIZE) -> bytes:
        return self.evaluate(message, out_len)


def prf_once(key: bytes, message: bytes, out_len: int = _DIGEST_SIZE) -> bytes:
    """Convenience wrapper: evaluate a PRF a single time without keeping state."""
    return Prf(key).evaluate(message, out_len)
