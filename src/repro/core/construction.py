"""The paper's construction: a database PH preserving exact selects.

Section 3 of the paper constructs a database privacy homomorphism from any
secure searchable encryption scheme:

1. Fix a word layout: the globally fixed word length is the length of the
   longest attribute value plus the length of a one-character attribute
   identifier (:class:`repro.searchable.words.WordCodec`).
2. Map every tuple to a *document*: one word ``pad(value) | attr-id`` per
   attribute, e.g.::

       <name:"Montgomery", dept:"HR", sal:7500>
           |-> {"MontgomeryN", "HR########D", "7500######S"}

3. Encrypt the document with the searchable scheme and store it on the
   untrusted server.
4. Encrypt an exact select ``sigma_{attr=v}`` as the search trapdoor for the
   word ``pad(v) | attr-id``; the server returns every document that matches.
5. Decrypt the returned documents and filter out the searchable scheme's
   false positives.

:class:`SearchableSelectDph` implements this generically over the
:class:`~repro.searchable.interfaces.SearchableEncryptionScheme` interface and
ships with two backends:

* ``"swp"`` -- the Song--Wagner--Perrig scheme the paper instantiates;
* ``"index"`` -- a secure-index backend standing in for the full version's
  "straight-forward optimizations" (same security at rest, cheaper search).

In addition to the searchable words, every tuple carries an authenticated
encryption of its full serialization, so decryption is robust and tampering by
the server is detectable.  Decryption *via the words alone* (the literal
procedure described in the paper) is also provided and tested for equivalence.
"""

from __future__ import annotations

from repro.core.dph import (
    DatabasePrivacyHomomorphism,
    DphError,
    EncryptedQuery,
    EncryptedRelation,
    EncryptedTuple,
    EvaluationResult,
    ServerEvaluator,
)
from repro.crypto.keys import KeyHierarchy, SecretKey
from repro.crypto.rng import RandomSource, SystemRng
from repro.crypto.symmetric import SymmetricCipher
from repro.relational.encoding import TupleCodec, ValueCodec
from repro.relational.query import Query, selection_predicates
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.relational.tuples import RelationTuple
from repro.searchable.index_sse import (
    DEFAULT_ENTRY_LEN,
    IndexSseScheme,
    index_search,
)
from repro.searchable.interfaces import EncryptedDocument
from repro.searchable.swp import DEFAULT_CHECK_LEN, SwpScheme, swp_search
from repro.searchable.tokens import IndexToken, SwpToken
from repro.searchable.words import Word, WordCodec

#: Scheme names used on the wire so the server picks the right evaluator.
SWP_BACKEND = "dph-swp"
INDEX_BACKEND = "dph-index"


class SearchableSelectDph(DatabasePrivacyHomomorphism):
    """Database PH for exact selects built on a searchable encryption scheme.

    Parameters
    ----------
    schema:
        The relation schema to be outsourced (public).
    secret_key:
        The master secret (``k`` drawn from ``K``); a :class:`SecretKey` or raw
        bytes.
    backend:
        ``"swp"`` (paper's instantiation, linear scan per word) or ``"index"``
        (secure-index optimization).
    check_length:
        SWP check length ``m`` in bytes; controls the false-positive rate
        ``~2^{-8m}`` (experiment E7).
    entry_length:
        Index-SSE entry truncation in bytes (only used by the index backend).
    attribute_id_width:
        Width of the attribute identifier appended to each word (1 in the
        paper's example).
    rng:
        Randomness source for nonces (seedable for reproducible experiments).
    """

    def __init__(
        self,
        schema: RelationSchema,
        secret_key: SecretKey | bytes,
        backend: str = "swp",
        check_length: int = DEFAULT_CHECK_LEN,
        entry_length: int = DEFAULT_ENTRY_LEN,
        attribute_id_width: int = 1,
        rng: RandomSource | None = None,
    ) -> None:
        if isinstance(secret_key, (bytes, bytearray)):
            secret_key = SecretKey(bytes(secret_key))
        if attribute_id_width != 1:
            raise DphError("attribute identifiers are one character wide in this construction")
        self._schema = schema
        self._keys = KeyHierarchy(secret_key)
        self._rng = rng if rng is not None else SystemRng()
        self._codec = WordCodec(schema.max_value_length(), attribute_id_width)
        self._tuple_codec = TupleCodec(schema)
        self._payload_cipher = SymmetricCipher(self._keys.get("dph/payload"), rng=self._rng)
        self._check_length = check_length
        self._entry_length = entry_length

        if backend == "swp":
            self._backend = SWP_BACKEND
            self._scheme = SwpScheme(
                self._keys.get("dph/searchable"),
                word_length=self._codec.word_length,
                check_length=check_length,
                rng=self._rng,
            )
        elif backend == "index":
            self._backend = INDEX_BACKEND
            self._scheme = IndexSseScheme(
                self._keys.get("dph/searchable"),
                word_length=self._codec.word_length,
                entry_length=entry_length,
                rng=self._rng,
            )
        else:
            raise DphError(f"unknown searchable backend {backend!r}")

    # ------------------------------------------------------------------ #
    # DatabasePrivacyHomomorphism interface
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """Scheme name (includes the backend)."""
        return self._backend

    @property
    def schema(self) -> RelationSchema:
        """The outsourced relation's schema."""
        return self._schema

    @property
    def word_length(self) -> int:
        """The globally fixed word length of the underlying searchable scheme."""
        return self._codec.word_length

    def false_positive_rate(self) -> float:
        """Per-word false-positive probability of the searchable backend."""
        return self._scheme.false_positive_rate()

    def encrypt_relation(self, relation: Relation) -> EncryptedRelation:
        """``E``: encrypt every tuple into a searchable document plus payload."""
        if relation.schema != self._schema:
            raise DphError("relation schema does not match the construction's schema")
        encrypted = tuple(self.encrypt_tuple(t) for t in relation)
        return EncryptedRelation(schema=self._schema, encrypted_tuples=encrypted)

    def encrypt_tuple(self, relation_tuple: RelationTuple) -> EncryptedTuple:
        """Encrypt a single tuple (exposed for streaming inserts)."""
        words = self._tuple_to_words(relation_tuple)
        document = self._scheme.encrypt_document(words)
        payload = self._payload_cipher.encrypt_bytes(
            self._tuple_codec.encode(relation_tuple),
            associated_data=document.document_id,
        )
        return EncryptedTuple(
            tuple_id=document.document_id,
            payload=payload,
            search_fields=document.encrypted_words,
            metadata=document.index,
        )

    def decrypt_relation(
        self, encrypted_relation: EncryptedRelation, via_words: bool = False
    ) -> Relation:
        """``D``: decrypt every tuple ciphertext.

        With ``via_words=True`` the tuples are reconstructed from the decrypted
        searchable words (the literal procedure of the paper); the default uses
        the authenticated payload, which additionally detects tampering.
        """
        tuples = [
            self.decrypt_tuple(t, via_words=via_words)
            for t in encrypted_relation.encrypted_tuples
        ]
        return Relation(self._schema, tuples)

    def decrypt_tuple(
        self, encrypted_tuple: EncryptedTuple, via_words: bool = False
    ) -> RelationTuple:
        """Decrypt a single tuple ciphertext."""
        if via_words:
            document = self._document_of(encrypted_tuple)
            words = self._scheme.decrypt_document(document)
            return self._words_to_tuple(words)
        raw = self._payload_cipher.decrypt_bytes(
            encrypted_tuple.payload, associated_data=encrypted_tuple.tuple_id
        )
        return self._tuple_codec.decode(raw)

    def encrypt_query(self, query: Query) -> EncryptedQuery:
        """``Eq``: one searchable trapdoor per equality predicate."""
        predicates = selection_predicates(query)
        tokens = []
        for predicate in predicates:
            attribute = self._schema.attribute(predicate.attribute)
            attribute.validate_value(predicate.value)
            word = self._predicate_word(attribute, predicate.value)
            tokens.append(self._scheme.trapdoor(word).to_bytes())
        return EncryptedQuery(scheme_name=self._backend, tokens=tuple(tokens))

    def server_evaluator(self) -> "SearchableServerEvaluator":
        """The keyless evaluator the untrusted server runs."""
        return SearchableServerEvaluator(
            backend=self._backend,
            word_length=self._codec.word_length,
            check_length=self._check_length,
            entry_length=self._entry_length,
        )

    # ------------------------------------------------------------------ #
    # Word <-> tuple mapping
    # ------------------------------------------------------------------ #

    def _tuple_to_words(self, relation_tuple: RelationTuple) -> list[Word]:
        words = []
        for attribute in self._schema.attributes:
            value_bytes = ValueCodec.encode(attribute, relation_tuple.value(attribute.name))
            words.append(
                self._codec.encode(attribute.identifier.encode("ascii"), value_bytes)
            )
        return words

    def _words_to_tuple(self, words: list[Word]) -> RelationTuple:
        values = {}
        for word in words:
            identifier, value_bytes = self._codec.decode(word)
            attribute = self._schema.identifier_to_attribute(identifier)
            values[attribute.name] = ValueCodec.decode(attribute, value_bytes)
        return RelationTuple(self._schema, values)

    def _predicate_word(self, attribute, value) -> Word:
        value_bytes = ValueCodec.encode(attribute, value)
        return self._codec.encode(attribute.identifier.encode("ascii"), value_bytes)

    @staticmethod
    def _document_of(encrypted_tuple: EncryptedTuple) -> EncryptedDocument:
        return EncryptedDocument(
            document_id=encrypted_tuple.tuple_id,
            encrypted_words=encrypted_tuple.search_fields,
            index=encrypted_tuple.metadata,
        )


class SearchableServerEvaluator(ServerEvaluator):
    """Keyless server-side evaluation of encrypted exact selects.

    Holds only public parameters (backend name, word length, check / entry
    lengths); matching is delegated to the keyless search functions
    :func:`repro.searchable.swp.swp_search` and
    :func:`repro.searchable.index_sse.index_search`.
    """

    def __init__(
        self,
        backend: str,
        word_length: int,
        check_length: int = DEFAULT_CHECK_LEN,
        entry_length: int = DEFAULT_ENTRY_LEN,
    ) -> None:
        if backend not in (SWP_BACKEND, INDEX_BACKEND):
            raise DphError(f"unknown backend {backend!r}")
        self._backend = backend
        self._word_length = word_length
        self._check_length = check_length
        self._entry_length = entry_length

    @property
    def scheme_name(self) -> str:
        """Identifier matched against :attr:`EncryptedQuery.scheme_name`."""
        return self._backend

    def describe(self) -> dict:
        """Public parameters for remote deployment (no key material)."""
        return {
            "type": "searchable",
            "backend": self._backend,
            "word_length": self._word_length,
            "check_length": self._check_length,
            "entry_length": self._entry_length,
        }

    def evaluate(
        self, encrypted_query: EncryptedQuery, encrypted_relation: EncryptedRelation
    ) -> EvaluationResult:
        """Return every tuple ciphertext matched by *all* query tokens."""
        if encrypted_query.scheme_name != self._backend:
            raise DphError(
                f"query was encrypted for {encrypted_query.scheme_name!r}, "
                f"this evaluator handles {self._backend!r}"
            )
        matching = []
        token_evaluations = 0
        for encrypted_tuple in encrypted_relation.encrypted_tuples:
            document = EncryptedDocument(
                document_id=encrypted_tuple.tuple_id,
                encrypted_words=encrypted_tuple.search_fields,
                index=encrypted_tuple.metadata,
            )
            matched_all = True
            for raw_token in encrypted_query.tokens:
                token_evaluations += 1
                if not self._matches(document, raw_token):
                    matched_all = False
                    break
            if matched_all:
                matching.append(encrypted_tuple)
        return EvaluationResult(
            matching=EncryptedRelation(
                schema=encrypted_relation.schema, encrypted_tuples=tuple(matching)
            ),
            examined=len(encrypted_relation),
            token_evaluations=token_evaluations,
        )

    def _matches(self, document: EncryptedDocument, raw_token: bytes) -> bool:
        if self._backend == SWP_BACKEND:
            token = SwpToken.from_bytes(raw_token)
            return swp_search(document, token, self._word_length, self._check_length).matched
        token = IndexToken.from_bytes(raw_token)
        return index_search(document, token, self._entry_length).matched
