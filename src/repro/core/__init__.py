"""Core contribution of the paper: database privacy homomorphisms.

* :mod:`repro.core.dph` -- the abstract ``(K, E, Eq, D)`` interface of
  Definition 1.1 and the shared ciphertext data model.
* :mod:`repro.core.construction` -- the Section-3 construction: a database PH
  preserving exact selects, generic over a searchable encryption scheme, with
  SWP and secure-index backends.
* :mod:`repro.core.filtering` -- the client-side false-positive filter.
* :mod:`repro.core.homomorphism` -- an executable check of the homomorphism
  property used by tests and experiments.
"""

from repro.core.construction import (
    INDEX_BACKEND,
    SWP_BACKEND,
    SearchableSelectDph,
    SearchableServerEvaluator,
)
from repro.core.dph import (
    DatabasePrivacyHomomorphism,
    DecryptionReport,
    DphError,
    EncryptedQuery,
    EncryptedRelation,
    EncryptedTuple,
    EvaluationResult,
    ServerEvaluator,
)
from repro.core.filtering import filter_decrypted_result
from repro.core.variable_length import (
    VARIABLE_BACKEND,
    VariableWidthSelectDph,
    VariableWidthServerEvaluator,
)
from repro.core.homomorphism import (
    HomomorphismReport,
    QueryCheck,
    check_homomorphism,
)

__all__ = [
    "INDEX_BACKEND",
    "SWP_BACKEND",
    "SearchableSelectDph",
    "SearchableServerEvaluator",
    "DatabasePrivacyHomomorphism",
    "DecryptionReport",
    "DphError",
    "EncryptedQuery",
    "EncryptedRelation",
    "EncryptedTuple",
    "EvaluationResult",
    "ServerEvaluator",
    "filter_decrypted_result",
    "VARIABLE_BACKEND",
    "VariableWidthSelectDph",
    "VariableWidthServerEvaluator",
    "HomomorphismReport",
    "QueryCheck",
    "check_homomorphism",
]
