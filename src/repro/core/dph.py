"""The database privacy homomorphism abstraction (Definition 1.1).

A database PH is a tuple ``(K, E, Eq, D)`` where

* ``E : K x R -> C`` encrypts relations (tuple by tuple),
* ``D : K x C -> R`` decrypts them,
* ``Eq : K x {sigma_i} -> {psi_i}`` encrypts queries, and
* for every relation ``R`` and relational operation ``sigma_i``:
  ``E_k(sigma_i(R)) = psi_i(E_k(R))`` -- the encrypted operation applied to the
  encrypted table yields an encryption of the plaintext result.

This module fixes the concrete data model shared by every scheme in the
reproduction (the paper's construction in :mod:`repro.core.construction` and
the baselines in :mod:`repro.schemes`):

* :class:`EncryptedTuple` -- one ciphertext ``c_i`` of the tuple-by-tuple
  encryption: a strongly encrypted payload plus scheme-specific *searchable
  fields* that the server operates on.
* :class:`EncryptedRelation` -- the set ``C = {c_1, ..., c_n}``.
* :class:`EncryptedQuery` -- the image ``psi_i = Eq_k(sigma_i)``, carried as a
  tuple of opaque per-predicate tokens.
* :class:`ServerEvaluator` -- the keyless procedure the untrusted server runs
  to apply ``psi_i`` to ``E_k(R)``.  Keeping it a separate object (constructed
  from public parameters only) makes the trust boundary explicit: nothing the
  server executes ever touches key material.
* :class:`DatabasePrivacyHomomorphism` -- the client-side ``(E, Eq, D)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.relational.query import Query
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


class DphError(Exception):
    """Base error of the database-PH layer."""


@dataclass(frozen=True)
class EncryptedTuple:
    """The ciphertext of a single tuple.

    Attributes
    ----------
    tuple_id:
        Public per-tuple identifier (a random nonce).  It never depends on the
        plaintext, so revealing it leaks nothing beyond the tuple count, which
        Definition 2.1 already concedes to the adversary.
    payload:
        Authenticated encryption of the fully serialized tuple; only the key
        holder can open it.
    search_fields:
        Scheme-specific searchable material the server matches encrypted
        queries against: word ciphertexts for the SWP construction, permuted
        bucket labels for the Hacigumus baseline, keyed hashes for Damiani,
        and so on.
    metadata:
        Additional opaque scheme bytes (e.g. the secure index of the
        index-SSE construction).
    """

    tuple_id: bytes
    payload: bytes
    search_fields: tuple[bytes, ...] = ()
    metadata: bytes = b""

    def size_in_bytes(self) -> int:
        """Total storage footprint of this ciphertext."""
        return (
            len(self.tuple_id)
            + len(self.payload)
            + sum(len(f) for f in self.search_fields)
            + len(self.metadata)
        )


@dataclass(frozen=True)
class EncryptedRelation:
    """The encryption ``E_k(R)`` of a relation: a set of tuple ciphertexts.

    The relation *schema* is treated as public knowledge, as the paper assumes
    throughout ("Eve knows the database schema").
    """

    schema: RelationSchema
    encrypted_tuples: tuple[EncryptedTuple, ...]

    def __len__(self) -> int:
        return len(self.encrypted_tuples)

    def __iter__(self) -> Iterator[EncryptedTuple]:
        return iter(self.encrypted_tuples)

    def size_in_bytes(self) -> int:
        """Total storage footprint of the encrypted relation."""
        return sum(t.size_in_bytes() for t in self.encrypted_tuples)

    def restrict_to(self, tuple_ids: Sequence[bytes]) -> "EncryptedRelation":
        """Return the sub-relation containing only the named tuple ids."""
        wanted = set(tuple_ids)
        return EncryptedRelation(
            schema=self.schema,
            encrypted_tuples=tuple(
                t for t in self.encrypted_tuples if t.tuple_id in wanted
            ),
        )


@dataclass(frozen=True)
class EncryptedQuery:
    """The encrypted query ``psi = Eq_k(sigma)``.

    ``tokens`` holds one opaque search token per equality predicate; a
    conjunctive selection carries several and the server intersects their
    matches.  ``scheme_name`` lets the server pick the right evaluation
    procedure without learning anything about the plaintext query.
    """

    scheme_name: str
    tokens: tuple[bytes, ...]
    metadata: bytes = b""

    def __post_init__(self) -> None:
        if not self.tokens:
            raise DphError("an encrypted query needs at least one token")

    def size_in_bytes(self) -> int:
        """Wire size of the encrypted query."""
        return sum(len(t) for t in self.tokens) + len(self.metadata)


@dataclass(frozen=True)
class EvaluationResult:
    """What the server returns: the matching tuple ciphertexts."""

    matching: EncryptedRelation
    #: Number of tuple ciphertexts the server had to examine.
    examined: int = 0
    #: Number of search-token evaluations the server performed.
    token_evaluations: int = 0


class ServerEvaluator(ABC):
    """The keyless ciphertext operation ``psi`` executed by the service provider.

    Instances are constructed from *public parameters only* and are therefore
    safe to hand to the untrusted server; they constitute the entire code the
    server needs to answer encrypted queries.
    """

    @property
    @abstractmethod
    def scheme_name(self) -> str:
        """Identifier matching :attr:`EncryptedQuery.scheme_name`."""

    @abstractmethod
    def evaluate(
        self, encrypted_query: EncryptedQuery, encrypted_relation: EncryptedRelation
    ) -> EvaluationResult:
        """Apply the encrypted query to the encrypted relation."""

    def describe(self) -> dict:
        """JSON-able public parameters from which the evaluator can be rebuilt.

        A remote provider cannot receive evaluator *objects*; it receives
        this description and reconstructs the evaluator locally
        (:mod:`repro.net.evaluators`).  The description must therefore
        contain public parameters only -- never key material.
        """
        raise DphError(
            f"evaluator {type(self).__name__} does not describe itself for "
            "remote deployment"
        )


@dataclass(frozen=True)
class DecryptionReport:
    """Outcome of decrypting a server result, including the false-positive filter."""

    relation: Relation
    #: Tuples returned by the server before filtering.
    returned: int
    #: Tuples removed by the client-side filter (false positives).
    false_positives: int
    #: Tuples in the final result.
    kept: int


class DatabasePrivacyHomomorphism(ABC):
    """Client-side interface of a database PH: the ``(E, Eq, D)`` of Definition 1.1."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Human-readable scheme name (used in reports and benchmarks)."""

    @property
    @abstractmethod
    def schema(self) -> RelationSchema:
        """The relation schema this instance encrypts."""

    @abstractmethod
    def encrypt_relation(self, relation: Relation) -> EncryptedRelation:
        """``E``: encrypt a relation tuple by tuple."""

    @abstractmethod
    def decrypt_relation(self, encrypted_relation: EncryptedRelation) -> Relation:
        """``D``: decrypt a (full or partial) encrypted relation."""

    @abstractmethod
    def encrypt_query(self, query: Query) -> EncryptedQuery:
        """``Eq``: encrypt an exact-select query."""

    @abstractmethod
    def server_evaluator(self) -> ServerEvaluator:
        """Return the keyless evaluator the untrusted server runs (``psi``)."""

    def decrypt_result(
        self, result: EncryptedRelation | EvaluationResult, query: Query | None = None
    ) -> DecryptionReport:
        """Decrypt a server result and filter false positives against ``query``.

        This is the paper's "Alex needs to run a filter on the output": the
        searchable scheme (and the lossy baselines even more so) may return
        tuples that do not satisfy the plaintext query; the client removes
        them after decryption.
        """
        from repro.core.filtering import filter_decrypted_result

        encrypted = result.matching if isinstance(result, EvaluationResult) else result
        decrypted = self.decrypt_relation(encrypted)
        return filter_decrypted_result(decrypted, query)
