"""Executable check of the homomorphism property of Definition 1.1.

The defining property of a database PH is ``E_k(sigma_i(R)) = psi_i(E_k(R))``.
With randomized tuple encryption the two sides cannot be compared bit for bit,
so the check is stated (equivalently, since ``D(E(x)) = x``) at the plaintext
level:

* **soundness after filtering** -- ``D_k(psi_i(E_k(R)))``, filtered against the
  plaintext query, equals ``sigma_i(R)`` as a multiset;
* **completeness before filtering** -- every tuple of ``sigma_i(R)`` appears in
  the decrypted server result (no false negatives);
* the number of extra tuples before filtering is reported as the scheme's
  false-positive count for that query.

:func:`check_homomorphism` runs this for a batch of queries and returns a
machine-readable report used both by the integration tests and by the
experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.dph import DatabasePrivacyHomomorphism
from repro.relational.engine import PlaintextEngine
from repro.relational.query import Query
from repro.relational.relation import Relation


@dataclass(frozen=True)
class QueryCheck:
    """The homomorphism check outcome for a single query."""

    query: Query
    expected: int
    returned: int
    kept: int
    false_positives: int
    complete: bool
    sound: bool

    @property
    def holds(self) -> bool:
        """The homomorphism property holds for this query."""
        return self.complete and self.sound


@dataclass(frozen=True)
class HomomorphismReport:
    """Aggregated homomorphism check over a batch of queries."""

    checks: tuple[QueryCheck, ...]

    @property
    def holds(self) -> bool:
        """The property holds for every checked query."""
        return all(c.holds for c in self.checks)

    @property
    def total_false_positives(self) -> int:
        """Total number of false positives across all queries."""
        return sum(c.false_positives for c in self.checks)

    @property
    def total_returned(self) -> int:
        """Total number of tuples returned by the server across all queries."""
        return sum(c.returned for c in self.checks)

    def false_positive_rate(self) -> float:
        """Fraction of returned tuples that were false positives."""
        if self.total_returned == 0:
            return 0.0
        return self.total_false_positives / self.total_returned


def check_homomorphism(
    dph: DatabasePrivacyHomomorphism,
    relation: Relation,
    queries: Sequence[Query],
) -> HomomorphismReport:
    """Verify ``E_k(sigma(R)) = psi(E_k(R))`` empirically for each query.

    The encrypted relation is produced once; every query is encrypted,
    evaluated by the scheme's keyless server evaluator and decrypted with
    filtering, then compared against the plaintext engine.
    """
    engine = PlaintextEngine()
    encrypted_relation = dph.encrypt_relation(relation)
    evaluator = dph.server_evaluator()

    checks = []
    for query in queries:
        expected = engine.execute(query, relation)
        if not isinstance(expected, Relation):
            raise TypeError("homomorphism checks are defined over selection queries")

        encrypted_query = dph.encrypt_query(query)
        evaluation = evaluator.evaluate(encrypted_query, encrypted_relation)
        unfiltered = dph.decrypt_relation(evaluation.matching)
        report = dph.decrypt_result(evaluation, query)

        expected_multiset = expected.as_multiset()
        unfiltered_multiset = unfiltered.as_multiset()
        complete = all(
            unfiltered_multiset[t] >= count for t, count in expected_multiset.items()
        )
        sound = report.relation == expected

        checks.append(
            QueryCheck(
                query=query,
                expected=len(expected),
                returned=report.returned,
                kept=report.kept,
                false_positives=report.false_positives,
                complete=complete,
                sound=sound,
            )
        )
    return HomomorphismReport(checks=tuple(checks))
