"""Variable-length attribute optimization (full-version extension).

The poster fixes one global word length -- "the length of the longest
attribute value plus the length of an attribute identifier" -- which wastes
space when one attribute (say, ``name:string[40]``) is much wider than the
rest.  The full version of the paper mentions "a few straight-forward
optimizations such as attributes of variable length"; this module implements
that optimization:

* every attribute gets its **own** word width (its declared maximum plus the
  identifier width) and its **own** independently keyed searchable-encryption
  instance;
* a tuple's ``search_fields`` therefore contain one word ciphertext per
  attribute, each as short as that attribute allows;
* an encrypted query carries the attribute position alongside the trapdoor so
  the keyless evaluator knows which field (and which public word length) to
  test.

Security is unchanged: each per-attribute scheme is the same SWP construction
over a fixed-width domain, and the attribute position of a query token was
already public in the fixed-width construction (the token length reveals it).
The gain is purely storage/throughput and is quantified by the ablation
benchmark ``benchmarks/bench_a1_variable_length.py``.
"""

from __future__ import annotations

from repro.core.dph import (
    DatabasePrivacyHomomorphism,
    DphError,
    EncryptedQuery,
    EncryptedRelation,
    EncryptedTuple,
    EvaluationResult,
    ServerEvaluator,
)
from repro.crypto.keys import KeyHierarchy, SecretKey
from repro.crypto.rng import RandomSource, SystemRng
from repro.crypto.symmetric import SymmetricCipher
from repro.relational.encoding import TupleCodec, ValueCodec
from repro.relational.query import Query, selection_predicates
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.relational.tuples import RelationTuple
from repro.searchable.interfaces import EncryptedDocument
from repro.searchable.swp import DEFAULT_CHECK_LEN, SwpScheme, swp_search
from repro.searchable.tokens import SwpToken
from repro.searchable.words import WordCodec

#: Wire name of the variable-width construction.
VARIABLE_BACKEND = "dph-swp-variable"


class VariableWidthSelectDph(DatabasePrivacyHomomorphism):
    """Exact-select database PH with per-attribute word widths.

    Parameters mirror :class:`repro.core.construction.SearchableSelectDph`;
    the searchable backend is SWP (the optimization is about word layout, not
    about the index structure).
    """

    def __init__(
        self,
        schema: RelationSchema,
        secret_key: SecretKey | bytes,
        check_length: int = DEFAULT_CHECK_LEN,
        attribute_id_width: int = 1,
        rng: RandomSource | None = None,
    ) -> None:
        if isinstance(secret_key, (bytes, bytearray)):
            secret_key = SecretKey(bytes(secret_key))
        if attribute_id_width != 1:
            raise DphError("attribute identifiers are one character wide in this construction")
        self._schema = schema
        self._keys = KeyHierarchy(secret_key)
        self._rng = rng if rng is not None else SystemRng()
        self._check_length = check_length
        self._tuple_codec = TupleCodec(schema)
        self._payload_cipher = SymmetricCipher(self._keys.get("vdph/payload"), rng=self._rng)

        self._codecs: list[WordCodec] = []
        self._schemes: list[SwpScheme] = []
        for attribute in schema.attributes:
            codec = WordCodec(attribute.max_length, attribute_id_width)
            # The check value must leave at least one stream byte per word.
            effective_check = min(check_length, codec.word_length - 1)
            scheme = SwpScheme(
                self._keys.get(f"vdph/searchable/{attribute.name}"),
                word_length=codec.word_length,
                check_length=effective_check,
                rng=self._rng,
            )
            self._codecs.append(codec)
            self._schemes.append(scheme)

    # ------------------------------------------------------------------ #
    # DatabasePrivacyHomomorphism interface
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """Scheme identifier."""
        return VARIABLE_BACKEND

    @property
    def schema(self) -> RelationSchema:
        """The outsourced relation's schema."""
        return self._schema

    def word_length_of(self, attribute_name: str) -> int:
        """The per-attribute word length (value width + identifier width)."""
        index = self._schema.attribute_names.index(attribute_name)
        return self._codecs[index].word_length

    def encrypt_relation(self, relation: Relation) -> EncryptedRelation:
        """``E``: one variable-width searchable word per attribute, plus payload."""
        if relation.schema != self._schema:
            raise DphError("relation schema does not match the construction's schema")
        encrypted = tuple(self.encrypt_tuple(t) for t in relation)
        return EncryptedRelation(schema=self._schema, encrypted_tuples=encrypted)

    def encrypt_tuple(self, relation_tuple: RelationTuple) -> EncryptedTuple:
        """Encrypt a single tuple.

        All per-attribute words share the tuple's single random nonce; this is
        safe because each attribute's scheme is independently keyed, and it
        keeps the per-tuple overhead at one nonce regardless of arity.
        """
        tuple_id = self._rng.bytes(16)
        fields = []
        for index, attribute in enumerate(self._schema.attributes):
            value_bytes = ValueCodec.encode(attribute, relation_tuple.value(attribute.name))
            word = self._codecs[index].encode(attribute.identifier.encode("ascii"), value_bytes)
            document = self._schemes[index].encrypt_document([word], document_id=tuple_id)
            fields.append(document.encrypted_words[0])
        payload = self._payload_cipher.encrypt_bytes(
            self._tuple_codec.encode(relation_tuple), associated_data=tuple_id
        )
        return EncryptedTuple(
            tuple_id=tuple_id,
            payload=payload,
            search_fields=tuple(fields),
        )

    def decrypt_relation(self, encrypted_relation: EncryptedRelation) -> Relation:
        """``D``: decrypt every tuple payload."""
        tuples = [self.decrypt_tuple(t) for t in encrypted_relation.encrypted_tuples]
        return Relation(self._schema, tuples)

    def decrypt_tuple(self, encrypted_tuple: EncryptedTuple) -> RelationTuple:
        """Decrypt a single tuple ciphertext."""
        raw = self._payload_cipher.decrypt_bytes(
            encrypted_tuple.payload, associated_data=encrypted_tuple.tuple_id
        )
        return self._tuple_codec.decode(raw)

    def encrypt_query(self, query: Query) -> EncryptedQuery:
        """``Eq``: a position-tagged trapdoor per predicate, under that attribute's scheme."""
        tokens = []
        for predicate in selection_predicates(query):
            attribute = self._schema.attribute(predicate.attribute)
            attribute.validate_value(predicate.value)
            index = self._schema.attribute_names.index(predicate.attribute)
            value_bytes = ValueCodec.encode(attribute, predicate.value)
            word = self._codecs[index].encode(attribute.identifier.encode("ascii"), value_bytes)
            trapdoor = self._schemes[index].trapdoor(word)
            tokens.append(index.to_bytes(2, "big") + trapdoor.to_bytes())
        return EncryptedQuery(scheme_name=VARIABLE_BACKEND, tokens=tuple(tokens))

    def server_evaluator(self) -> "VariableWidthServerEvaluator":
        """The keyless evaluator (public per-attribute word/check lengths only)."""
        parameters = tuple(
            (codec.word_length, scheme.check_length)
            for codec, scheme in zip(self._codecs, self._schemes)
        )
        return VariableWidthServerEvaluator(parameters)


class VariableWidthServerEvaluator(ServerEvaluator):
    """Keyless evaluation of position-tagged SWP trapdoors over per-attribute fields."""

    def __init__(self, attribute_parameters: tuple[tuple[int, int], ...]) -> None:
        if not attribute_parameters:
            raise DphError("at least one attribute parameter pair is required")
        self._parameters = attribute_parameters

    @property
    def scheme_name(self) -> str:
        """Identifier matched against :attr:`EncryptedQuery.scheme_name`."""
        return VARIABLE_BACKEND

    def describe(self) -> dict:
        """Public parameters for remote deployment (no key material)."""
        return {
            "type": "variable-width",
            "attribute_parameters": [list(pair) for pair in self._parameters],
        }

    def evaluate(
        self, encrypted_query: EncryptedQuery, encrypted_relation: EncryptedRelation
    ) -> EvaluationResult:
        """Return tuples matched by every token (conjunction)."""
        if encrypted_query.scheme_name != VARIABLE_BACKEND:
            raise DphError(
                f"query was encrypted for {encrypted_query.scheme_name!r}, "
                f"this evaluator handles {VARIABLE_BACKEND!r}"
            )
        conditions = []
        for raw in encrypted_query.tokens:
            if len(raw) < 2:
                raise DphError("malformed variable-width query token")
            index = int.from_bytes(raw[:2], "big")
            if index >= len(self._parameters):
                raise DphError(f"token refers to unknown attribute position {index}")
            conditions.append((index, SwpToken.from_bytes(raw[2:])))

        matching = []
        token_evaluations = 0
        for encrypted_tuple in encrypted_relation.encrypted_tuples:
            matched_all = True
            for index, token in conditions:
                token_evaluations += 1
                if not self._matches(encrypted_tuple, index, token):
                    matched_all = False
                    break
            if matched_all:
                matching.append(encrypted_tuple)
        return EvaluationResult(
            matching=EncryptedRelation(
                schema=encrypted_relation.schema, encrypted_tuples=tuple(matching)
            ),
            examined=len(encrypted_relation),
            token_evaluations=token_evaluations,
        )

    def _matches(self, encrypted_tuple: EncryptedTuple, index: int, token: SwpToken) -> bool:
        if index >= len(encrypted_tuple.search_fields):
            return False
        word_length, check_length = self._parameters[index]
        document = EncryptedDocument(
            document_id=encrypted_tuple.tuple_id,
            encrypted_words=(encrypted_tuple.search_fields[index],),
        )
        return swp_search(document, token, word_length, check_length).matched
