"""Client-side false-positive filtering.

Searchable encryption schemes "sometimes return false positives.  Alex needs
to run a filter on the output.  As the error rate is relatively small for all
practical purposes, this does not affect the efficiency of our construction."
(paper, Section 3).  For the lossy baselines -- bucketization and hashed
indexes -- the filter is not an afterthought but an essential part of query
processing, because many distinct values share a bucket.

:func:`filter_decrypted_result` applies the plaintext query to the decrypted
tuples and reports how many false positives were discarded, so experiments E7
and E8 can quantify the filtering overhead.
"""

from __future__ import annotations

from repro.relational.engine import PlaintextEngine
from repro.relational.query import Projection, Query
from repro.relational.relation import Relation

from repro.core.dph import DecryptionReport


def filter_decrypted_result(
    decrypted: Relation, query: Query | None = None
) -> DecryptionReport:
    """Apply ``query`` to ``decrypted`` tuples and report the filtering statistics.

    When ``query`` is ``None`` the tuples are returned unfiltered (this is the
    behaviour of plain ``D`` on a full encrypted relation).
    Projections are ignored at this stage -- the filter's job is only to drop
    tuples that do not satisfy the selection predicates; projecting columns is
    a separate, lossless step the caller can apply afterwards.
    """
    if query is None:
        return DecryptionReport(
            relation=decrypted,
            returned=len(decrypted),
            false_positives=0,
            kept=len(decrypted),
        )

    selection = query.inner if isinstance(query, Projection) else query
    engine = PlaintextEngine()
    filtered = engine.execute(selection, decrypted)
    if not isinstance(filtered, Relation):  # pragma: no cover - selections only
        raise TypeError("filtering expects a selection query")
    return DecryptionReport(
        relation=filtered,
        returned=len(decrypted),
        false_positives=len(decrypted) - len(filtered),
        kept=len(filtered),
    )
