"""Hot-key read caching for the encrypted serving path.

Real multi-user traffic is skewed: a small set of hot query tokens
dominates the read stream.  This package adds a result-cache tier that
absorbs those repeats before they cost a provider round trip, at two
levels of the stack:

* a **client-side** cache inside
  :class:`~repro.api.database.EncryptedDatabase`, keyed on
  ``(relation, encrypted query token)`` -- ciphertext-only keys, so the
  cache stores nothing in plaintext the provider does not already see --
  invalidated by the session's own writes;
* a **coordinator-side** cache inside
  :class:`~repro.cluster.router.ShardRouter`, shared by every session
  routed through the coordinator, sitting in front of the scatter /
  INDEX_LOOKUP paths so a fleet of sessions absorbs repeated hot-key
  reads before any shard is touched.  Invalidation rides the existing
  write paths; membership changes and rebalances flush conservatively.

Both tiers are the same :class:`ResultCache`: a thread-safe LRU with
optional TTL, per-relation invalidation generations (a put is dropped if
a write landed while its read was in flight), and a global flush epoch.
Metrics (``cache_hits_total`` / ``cache_misses_total`` /
``cache_evictions_total`` / ``cache_invalidations_total`` counters and a
``cache_hit_ratio`` gauge, labelled by tier) live in the owner's
:class:`~repro.obs.MetricsRegistry` so they flow through the existing
stats plane; lookups record ``cache.lookup`` trace spans.
"""

from repro.cache.result_cache import (
    CacheConfig,
    CacheError,
    ResultCache,
    coerce_cache_config,
)

__all__ = [
    "CacheConfig",
    "CacheError",
    "ResultCache",
    "coerce_cache_config",
]
