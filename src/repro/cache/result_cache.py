"""A thread-safe LRU + TTL result cache with write-path invalidation.

One :class:`ResultCache` backs both tiers of the hot-key cache (the
client session's and the coordinator's).  Entries are keyed on
``(relation, token)`` where *token* is opaque ciphertext -- the encoded
encrypted query (client tier) or the raw request body (coordinator
tier) -- so the cache never holds a key the provider has not already
seen on the wire.

Correctness model
-----------------

Writes race in-flight reads: a ``delete`` can land between a cache miss
and the provider's answer arriving, and blindly storing that answer
would resurrect the deleted tuple for every later hit.  The cache
therefore runs **generation-checked fills**: readers capture the
relation's :meth:`~ResultCache.generation` *before* the round trip and
hand it back to :meth:`~ResultCache.put`, which silently drops the fill
if any invalidation bumped the generation in between.  Invalidation
itself is cheap (bump an integer, drop the relation's entries), so every
write path can afford to call it unconditionally -- including failed
writes, where the conservative bump costs one extra miss instead of a
stale hit.

:meth:`~ResultCache.flush` bumps a global epoch covering relations the
cache has never even seen, which is what membership changes and
rebalances use: after shards move, no pre-flush fill may survive.

Observability
-------------

Counters (``cache_hits_total``, ``cache_misses_total``,
``cache_evictions_total``, ``cache_invalidations_total``) and gauges
(``cache_entries``, ``cache_hit_ratio``) are registered in the owning
component's :class:`~repro.obs.MetricsRegistry` labelled with the cache
``tier``, so they ride the existing snapshot/merge/Prometheus plane and
show up in ``repro stats``.  :meth:`~ResultCache.lookup` records a
``cache.lookup`` trace span with the outcome.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.obs import MetricsRegistry
from repro.obs import span as trace_span

#: Default entry budget: generous for hot-key traffic (the point of the
#: cache is that the hot set is small) while bounding worst-case memory.
DEFAULT_MAX_ENTRIES = 4096

#: Default TTL.  Generations catch every write the cache's owner sees;
#: the TTL bounds staleness from writers it cannot see (another session
#: writing through a different coordinator, a provider restored from a
#: backup).  ``ttl_s=None`` disables the bound for single-writer setups.
DEFAULT_TTL_S = 60.0


class CacheError(ValueError):
    """An invalid cache configuration."""


@dataclass(frozen=True)
class CacheConfig:
    """Knobs for one :class:`ResultCache` tier."""

    max_entries: int = DEFAULT_MAX_ENTRIES
    ttl_s: float | None = DEFAULT_TTL_S

    def validate(self) -> "CacheConfig":
        if not isinstance(self.max_entries, int) or isinstance(self.max_entries, bool):
            raise CacheError(
                f"cache max_entries must be an int, got {self.max_entries!r}"
            )
        if self.max_entries < 1:
            raise CacheError(
                f"cache max_entries must be >= 1, got {self.max_entries}"
            )
        if self.ttl_s is not None:
            if isinstance(self.ttl_s, bool) or not isinstance(self.ttl_s, (int, float)):
                raise CacheError(f"cache ttl_s must be a number, got {self.ttl_s!r}")
            if self.ttl_s <= 0:
                raise CacheError(f"cache ttl_s must be positive, got {self.ttl_s}")
        return self


def coerce_cache_config(value: Any) -> CacheConfig | None:
    """Normalize the public ``cache=`` option to a config (or None for off).

    Accepted forms: ``None`` / ``False`` (disabled), ``True`` (defaults),
    an ``int`` (entry budget), a ``CacheConfig``, or a dict of
    ``CacheConfig`` fields.  Anything else raises :class:`CacheError`.
    """
    if value is None or value is False:
        return None
    if value is True:
        return CacheConfig()
    if isinstance(value, CacheConfig):
        return value.validate()
    if isinstance(value, int):
        return CacheConfig(max_entries=value).validate()
    if isinstance(value, dict):
        unknown = set(value) - {"max_entries", "ttl_s"}
        if unknown:
            raise CacheError(
                f"unknown cache option(s) {sorted(unknown)} "
                "(supported: max_entries, ttl_s)"
            )
        return CacheConfig(**value).validate()
    raise CacheError(
        f"cache must be a bool, int, dict or CacheConfig, got {type(value).__name__}"
    )


class _Entry:
    __slots__ = ("value", "expires_at")

    def __init__(self, value: Any, expires_at: float | None) -> None:
        self.value = value
        self.expires_at = expires_at


class ResultCache:
    """Thread-safe LRU + TTL cache with per-relation generations.

    ``metrics`` is the owner's registry (a private one is created when
    omitted, e.g. in unit tests); ``tier`` labels every instrument so the
    client and coordinator tiers stay distinguishable after fleet-wide
    snapshot merging.  ``clock`` is injectable for deterministic TTL
    tests and must be monotonic.
    """

    def __init__(
        self,
        config: CacheConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        tier: str = "client",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._config = (config or CacheConfig()).validate()
        self._clock = clock
        self._tier = tier
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[str, Hashable], _Entry]" = OrderedDict()
        self._generations: dict[str, int] = {}
        self._epoch = 0
        registry = metrics if metrics is not None else MetricsRegistry()
        self._metrics = registry
        self._hits = registry.counter("cache_hits_total", tier=tier)
        self._misses = registry.counter("cache_misses_total", tier=tier)
        self._evictions = registry.counter("cache_evictions_total", tier=tier)
        self._invalidations = registry.counter("cache_invalidations_total", tier=tier)
        self._entries_gauge = registry.gauge("cache_entries", tier=tier)
        self._hit_ratio = registry.gauge("cache_hit_ratio", tier=tier)

    @property
    def config(self) -> CacheConfig:
        return self._config

    @property
    def tier(self) -> str:
        return self._tier

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #

    def generation(self, relation: str) -> tuple[int, int]:
        """The fill token for ``relation``; capture *before* the round trip.

        Opaque to callers: hand it back to :meth:`put`, which drops the
        fill if any invalidation or flush happened in between.
        """
        with self._lock:
            return (self._epoch, self._generations.get(relation, 0))

    def lookup(self, relation: str, token: Hashable) -> Any | None:
        """:meth:`get` wrapped in a ``cache.lookup`` trace span."""
        with trace_span("cache.lookup", tier=self._tier, relation=relation) as entry:
            value = self.get(relation, token)
            entry.annotations["outcome"] = "miss" if value is None else "hit"
            return value

    def get(self, relation: str, token: Hashable) -> Any | None:
        """The cached value, or None on miss/expiry (which counts a miss)."""
        key = (relation, token)
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.expires_at is not None and now >= entry.expires_at:
                # TTL eviction happens lazily, on the access that finds the
                # entry dead -- no sweeper thread to manage.
                del self._entries[key]
                self._evictions.inc()
                entry = None
            if entry is None:
                self._misses.inc()
                self._refresh_gauges_locked()
                return None
            self._entries.move_to_end(key)
            self._hits.inc()
            self._refresh_gauges_locked()
            return entry.value

    def put(
        self,
        relation: str,
        token: Hashable,
        value: Any,
        generation: tuple[int, int],
    ) -> bool:
        """Fill one entry; returns False if the fill was stale and dropped.

        ``generation`` must come from :meth:`generation` *before* the
        provider round trip that produced ``value``: if a write
        invalidated the relation (or a flush bumped the epoch) while the
        read was in flight, the answer may predate the write and is
        discarded rather than cached.
        """
        with self._lock:
            if generation != (self._epoch, self._generations.get(relation, 0)):
                return False
            expires_at = (
                None
                if self._config.ttl_s is None
                else self._clock() + self._config.ttl_s
            )
            key = (relation, token)
            self._entries[key] = _Entry(value, expires_at)
            self._entries.move_to_end(key)
            while len(self._entries) > self._config.max_entries:
                self._entries.popitem(last=False)
                self._evictions.inc()
            self._refresh_gauges_locked()
            return True

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    def invalidate(self, relation: str) -> None:
        """A write touched ``relation``: drop its entries, bump its generation."""
        with self._lock:
            self._generations[relation] = self._generations.get(relation, 0) + 1
            self._invalidations.inc()
            dead = [key for key in self._entries if key[0] == relation]
            for key in dead:
                del self._entries[key]
            self._refresh_gauges_locked()

    def flush(self) -> None:
        """Drop everything and fence *all* in-flight fills (epoch bump).

        The conservative hammer for events that move data between shards
        (membership changes, rebalances): even a fill for a relation the
        cache has never seen is dropped if its read started pre-flush.
        """
        with self._lock:
            self._epoch += 1
            self._invalidations.inc()
            self._entries.clear()
            self._refresh_gauges_locked()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """A JSON-able summary (the ``cluster status`` / smoke-test surface)."""
        with self._lock:
            hits = self._hits.value
            misses = self._misses.value
            lookups = hits + misses
            return {
                "tier": self._tier,
                "entries": len(self._entries),
                "max_entries": self._config.max_entries,
                "ttl_s": self._config.ttl_s,
                "hits": hits,
                "misses": misses,
                "evictions": self._evictions.value,
                "invalidations": self._invalidations.value,
                "hit_ratio": (hits / lookups) if lookups else 0.0,
            }

    def _refresh_gauges_locked(self) -> None:
        self._entries_gauge.set(len(self._entries))
        hits = self._hits.value
        lookups = hits + self._misses.value
        self._hit_ratio.set((hits / lookups) if lookups else 0.0)
