"""Experiments E5-E6: inference attacks on the hospital database (Section 2).

* **E5** -- the passive attack: from the sizes and overlaps of four observed
  query results Eve recovers per-hospital fatality ratios.  Reported per
  database size: how often the query identification succeeds and how close the
  recovered ratios are to the ground truth.
* **E6** -- the active attack: with a handful of query-encryption-oracle calls
  Eve locates the record of a known patient ("John") and learns his hospital
  and outcome.  Reported per database size: success probability and the number
  of oracle queries used.

Both attacks run against the paper's own (q = 0 secure) construction -- that
they succeed is the point: security evaporates as soon as queries flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.reporting import ExperimentTable
from repro.analysis.stats import mean_and_std
from repro.core import SearchableSelectDph
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.security.attacks import run_active_query_attack, run_hospital_inference
from repro.workloads import HospitalWorkload


@dataclass(frozen=True)
class InferenceRow:
    """One row of the E5 experiment."""

    backend: str
    database_size: int
    trials: int
    identification_rate: float
    mean_absolute_error: float
    max_absolute_error: float


@dataclass(frozen=True)
class HospitalInferenceExperiment:
    """E5 result."""

    rows: tuple[InferenceRow, ...]

    def to_table(self) -> ExperimentTable:
        """Render the E5 table."""
        table = ExperimentTable(
            "E5: passive hospital inference (fatality-ratio recovery)",
            ["backend", "patients", "trials", "query-id rate", "mean |err|", "max |err|"],
        )
        for row in self.rows:
            table.add_row(
                row.backend,
                row.database_size,
                row.trials,
                row.identification_rate,
                row.mean_absolute_error,
                row.max_absolute_error,
            )
        return table


def run_e5_hospital_inference(
    sizes: Sequence[int] = (500, 2000, 8000),
    trials: int = 5,
    backend: str = "index",
    seed: int = 5,
) -> HospitalInferenceExperiment:
    """E5: run the passive inference attack over several database sizes."""
    rows = []
    for size in sizes:
        identifications = 0
        errors = []
        max_error = 0.0
        for trial in range(trials):
            workload = HospitalWorkload.generate(size, seed=seed * 1000 + trial)
            dph = SearchableSelectDph(
                workload.schema,
                SecretKey.generate(rng=DeterministicRng((seed, size, trial).__repr__())),
                backend=backend,
                rng=DeterministicRng((seed, size, trial, "rng").__repr__()),
            )
            result = run_hospital_inference(dph, workload)
            identifications += int(result.identification_correct)
            errors.extend(result.absolute_error(h) for h in workload.hospitals)
            max_error = max(max_error, result.max_absolute_error)
        mean_error, _ = mean_and_std(errors)
        rows.append(
            InferenceRow(
                backend=f"dph-{backend}",
                database_size=size,
                trials=trials,
                identification_rate=identifications / trials,
                mean_absolute_error=mean_error,
                max_absolute_error=max_error,
            )
        )
    return HospitalInferenceExperiment(tuple(rows))


@dataclass(frozen=True)
class ActiveAttackRow:
    """One row of the E6 experiment."""

    backend: str
    database_size: int
    trials: int
    hospital_success_rate: float
    outcome_success_rate: float
    full_success_rate: float
    mean_oracle_queries: float


@dataclass(frozen=True)
class ActiveAttackExperiment:
    """E6 result."""

    rows: tuple[ActiveAttackRow, ...]

    def to_table(self) -> ExperimentTable:
        """Render the E6 table."""
        table = ExperimentTable(
            "E6: active adversary locates a known patient ('John')",
            ["backend", "patients", "trials", "hospital ok", "outcome ok", "both ok", "oracle queries"],
        )
        for row in self.rows:
            table.add_row(
                row.backend,
                row.database_size,
                row.trials,
                row.hospital_success_rate,
                row.outcome_success_rate,
                row.full_success_rate,
                row.mean_oracle_queries,
            )
        return table


def run_e6_active_adversary(
    sizes: Sequence[int] = (500, 2000, 8000),
    trials: int = 5,
    backend: str = "index",
    oracle_budget: int = 6,
    seed: int = 6,
) -> ActiveAttackExperiment:
    """E6: run the active "John" attack over several database sizes."""
    rows = []
    for size in sizes:
        hospital_hits = 0
        outcome_hits = 0
        full_hits = 0
        queries_used = []
        for trial in range(trials):
            workload = HospitalWorkload.generate(
                size, target_name="John", seed=seed * 1000 + trial
            )
            dph = SearchableSelectDph(
                workload.schema,
                SecretKey.generate(rng=DeterministicRng((seed, size, trial).__repr__())),
                backend=backend,
                rng=DeterministicRng((seed, size, trial, "rng").__repr__()),
            )
            result = run_active_query_attack(dph, workload, oracle_budget=oracle_budget)
            hospital_hits += int(result.hospital_correct)
            outcome_hits += int(result.outcome_correct)
            full_hits += int(result.fully_successful)
            queries_used.append(float(result.oracle_queries_used))
        mean_queries, _ = mean_and_std(queries_used)
        rows.append(
            ActiveAttackRow(
                backend=f"dph-{backend}",
                database_size=size,
                trials=trials,
                hospital_success_rate=hospital_hits / trials,
                outcome_success_rate=outcome_hits / trials,
                full_success_rate=full_hits / trials,
                mean_oracle_queries=mean_queries,
            )
        )
    return ActiveAttackExperiment(tuple(rows))
