"""Experiments E1-E4: distinguishing attacks and the impossibility result.

* **E1** -- the paper's Section-1 salary-pair attack against the Hacigumus
  bucketization scheme, swept over the number of buckets.  Expected shape:
  success probability ~1 for any reasonable bucket count (it can only dip when
  the bucketization is so coarse that the two distinct salaries collide).
* **E2** -- the same attack against the Damiani hashed-index scheme, swept over
  the number of hash values.
* **E3** -- the same family of q = 0 distinguishers against the paper's own
  construction (both backends): every advantage must be statistically
  indistinguishable from zero.
* **E4** -- the generic Theorem 2.1 adversaries against *every* scheme at
  q = 1 (they win) and q = 0 (they do not), demonstrating both the theorem and
  the exact relaxation under which the construction is secure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.reporting import ExperimentTable
from repro.core import SearchableSelectDph
from repro.crypto.keys import SecretKey
from repro.crypto.rng import RandomSource
from repro.relational.schema import RelationSchema
from repro.schemes import (
    BucketizationConfig,
    DamianiDph,
    DeterministicDph,
    HacigumusDph,
)
from repro.security import (
    AdversaryModel,
    DphIndistinguishabilityGame,
    GameResult,
    GenericActiveAdversary,
    IndistinguishabilityGame,
    ResultSizeAdversary,
)
from repro.security.attacks import (
    CiphertextSizeAdversary,
    RandomGuessAdversary,
    SalaryPairAdversary,
    paper_salary_tables,
)

#: Domain of the salary values in the paper's example tables.
SALARY_DOMAIN = (0, 10000)


def swp_factory(schema: RelationSchema, rng: RandomSource) -> SearchableSelectDph:
    """Fresh-keyed construction with the SWP backend."""
    return SearchableSelectDph(schema, SecretKey.generate(rng=rng), backend="swp", rng=rng)


def index_factory(schema: RelationSchema, rng: RandomSource) -> SearchableSelectDph:
    """Fresh-keyed construction with the secure-index backend."""
    return SearchableSelectDph(schema, SecretKey.generate(rng=rng), backend="index", rng=rng)


def bucketization_factory(num_buckets: int) -> Callable:
    """Factory of fresh-keyed bucketization schemes with ``num_buckets`` buckets."""

    def factory(schema: RelationSchema, rng: RandomSource) -> HacigumusDph:
        config = BucketizationConfig.uniform(
            schema, num_buckets=num_buckets, minimum=SALARY_DOMAIN[0], maximum=SALARY_DOMAIN[1]
        )
        return HacigumusDph(schema, SecretKey.generate(rng=rng), config=config, rng=rng)

    return factory


def damiani_factory(num_hash_values: int) -> Callable:
    """Factory of fresh-keyed Damiani schemes with ``num_hash_values`` index values."""

    def factory(schema: RelationSchema, rng: RandomSource) -> DamianiDph:
        return DamianiDph(
            schema, SecretKey.generate(rng=rng), num_hash_values=num_hash_values, rng=rng
        )

    return factory


def deterministic_factory(schema: RelationSchema, rng: RandomSource) -> DeterministicDph:
    """Fresh-keyed deterministic-encryption scheme."""
    return DeterministicDph(schema, SecretKey.generate(rng=rng), rng=rng)


@dataclass(frozen=True)
class AttackRow:
    """One row of an attack experiment."""

    scheme: str
    parameter: str
    adversary: str
    result: GameResult

    @property
    def success_rate(self) -> float:
        """Empirical winning probability of the adversary."""
        return self.result.success_rate

    @property
    def advantage(self) -> float:
        """Empirical advantage ``2p - 1``."""
        return self.result.advantage


@dataclass(frozen=True)
class AttackExperimentResult:
    """Rows of an E1-E4 style experiment."""

    experiment: str
    rows: tuple[AttackRow, ...]

    def to_table(self) -> ExperimentTable:
        """Render the rows as the table recorded in EXPERIMENTS.md."""
        table = ExperimentTable(
            self.experiment,
            ["scheme", "parameter", "adversary", "trials", "success", "advantage", "broken"],
        )
        for row in self.rows:
            table.add_row(
                row.scheme,
                row.parameter,
                row.adversary,
                row.result.trials,
                row.success_rate,
                row.advantage,
                row.result.broken_by(threshold=0.5),
            )
        return table


def run_e1_bucketization_attack(
    trials: int = 200,
    bucket_counts: Sequence[int] = (2, 4, 16, 64, 256),
    seed: int = 1,
) -> AttackExperimentResult:
    """E1: salary-pair distinguishing attack against bucketization."""
    adversary = SalaryPairAdversary()
    rows = []
    for num_buckets in bucket_counts:
        game = IndistinguishabilityGame(bucketization_factory(num_buckets), "bucketization")
        result = game.run(adversary, trials=trials, seed=seed)
        rows.append(
            AttackRow("bucketization", f"buckets={num_buckets}", adversary.name, result)
        )
    # Reference row: the paper's construction against the same adversary.
    reference = IndistinguishabilityGame(swp_factory, "dph-swp").run(
        adversary, trials=trials, seed=seed
    )
    rows.append(AttackRow("dph-swp", "-", adversary.name, reference))
    return AttackExperimentResult("E1: salary-pair attack vs bucketization", tuple(rows))


def run_e2_damiani_attack(
    trials: int = 200,
    hash_value_counts: Sequence[int] = (2, 16, 64, 256),
    seed: int = 2,
) -> AttackExperimentResult:
    """E2: salary-pair distinguishing attack against the Damiani hashed index."""
    adversary = SalaryPairAdversary()
    rows = []
    for num_hash_values in hash_value_counts:
        game = IndistinguishabilityGame(damiani_factory(num_hash_values), "damiani-hash")
        result = game.run(adversary, trials=trials, seed=seed)
        rows.append(
            AttackRow("damiani-hash", f"hash-values={num_hash_values}", adversary.name, result)
        )
    reference = IndistinguishabilityGame(deterministic_factory, "deterministic").run(
        adversary, trials=trials, seed=seed
    )
    rows.append(AttackRow("deterministic", "-", adversary.name, reference))
    return AttackExperimentResult("E2: salary-pair attack vs hashed index", tuple(rows))


def run_e3_dph_indistinguishability(
    trials: int = 200,
    seed: int = 3,
) -> AttackExperimentResult:
    """E3: q = 0 distinguishers against the paper's construction (advantage ~0)."""
    table_1, table_2 = paper_salary_tables()
    adversaries = [
        SalaryPairAdversary(),
        RandomGuessAdversary(table_1, table_2),
        CiphertextSizeAdversary(table_1, table_2),
    ]
    rows = []
    for backend_name, factory in (("dph-swp", swp_factory), ("dph-index", index_factory)):
        for adversary in adversaries:
            result = IndistinguishabilityGame(factory, backend_name).run(
                adversary, trials=trials, seed=seed
            )
            rows.append(AttackRow(backend_name, "q=0", adversary.name, result))
    return AttackExperimentResult(
        "E3: indistinguishability of the construction at q=0", tuple(rows)
    )


def run_e4_theorem21(
    trials: int = 60,
    table_size: int = 8,
    seed: int = 4,
) -> AttackExperimentResult:
    """E4: the generic Theorem 2.1 adversaries against every scheme, q in {0, 1}."""
    factories = [
        ("dph-swp", swp_factory),
        ("dph-index", index_factory),
        ("bucketization", bucketization_factory(16)),
        ("deterministic", deterministic_factory),
    ]
    rows = []
    active = GenericActiveAdversary(table_size=table_size)
    passive = ResultSizeAdversary(table_size=table_size)
    for scheme_name, factory in factories:
        for budget in (1, 0):
            game = DphIndistinguishabilityGame(
                factory,
                query_budget=budget,
                adversary_model=AdversaryModel.ACTIVE,
                scheme_name=scheme_name,
            )
            result = game.run(active, trials=trials, seed=seed)
            rows.append(AttackRow(scheme_name, f"q={budget} active", active.name, result))
        passive_game = DphIndistinguishabilityGame(
            factory,
            query_budget=1,
            adversary_model=AdversaryModel.PASSIVE,
            query_workload=ResultSizeAdversary.workload,
            scheme_name=scheme_name,
        )
        result = passive_game.run(passive, trials=trials, seed=seed)
        rows.append(AttackRow(scheme_name, "q=1 passive", passive.name, result))
    return AttackExperimentResult("E4: Theorem 2.1 -- every DPH falls once q > 0", tuple(rows))
