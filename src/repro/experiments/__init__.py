"""Experiment harness: one entry point per experiment in DESIGN.md (E1-E10).

The ICDE 2006 poster has no numbered tables or figures; the experiments here
quantify each of its claims (see ``DESIGN.md`` section 5 for the mapping).
Every ``run_*`` function returns a result object whose ``to_table()`` method
renders the rows recorded in ``EXPERIMENTS.md``; the modules under
``benchmarks/`` call the same functions so the published numbers can be
regenerated with ``pytest benchmarks/ --benchmark-only``.

* :mod:`repro.experiments.attacks` -- E1-E4: distinguishing attacks and the
  Theorem 2.1 adversaries.
* :mod:`repro.experiments.inference` -- E5-E6: the hospital inference and
  active "John" attacks.
* :mod:`repro.experiments.performance` -- E7-E10: false positives, throughput,
  storage overhead, and the index-vs-scan ablation.
* :mod:`repro.experiments.registry` -- the experiment index used by the
  documentation generator and the quickcheck example.
"""

from repro.experiments.attacks import (
    run_e1_bucketization_attack,
    run_e2_damiani_attack,
    run_e3_dph_indistinguishability,
    run_e4_theorem21,
)
from repro.experiments.inference import (
    run_e5_hospital_inference,
    run_e6_active_adversary,
)
from repro.experiments.performance import (
    run_e7_false_positives,
    run_e8_throughput,
    run_e9_storage_overhead,
    run_e10_index_vs_scan,
)
from repro.experiments.registry import EXPERIMENTS, ExperimentSpec

__all__ = [
    "run_e1_bucketization_attack",
    "run_e2_damiani_attack",
    "run_e3_dph_indistinguishability",
    "run_e4_theorem21",
    "run_e5_hospital_inference",
    "run_e6_active_adversary",
    "run_e7_false_positives",
    "run_e8_throughput",
    "run_e9_storage_overhead",
    "run_e10_index_vs_scan",
    "EXPERIMENTS",
    "ExperimentSpec",
]
