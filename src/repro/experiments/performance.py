"""Experiments E7-E10: false positives, throughput, storage, index-vs-scan.

* **E7** -- false-positive rate of the SWP searchable scheme as a function of
  the check length ``m`` (predicted ``2^{-8m}`` vs observed), and the cost of
  the client-side filter that removes them.
* **E8** -- end-to-end throughput of every scheme (encrypt, query-encrypt,
  server evaluation, decrypt+filter) as the relation grows.
* **E9** -- ciphertext expansion: stored bytes per scheme relative to the
  plaintext serialization.
* **E10** -- the full version's optimization on the serving path: exact
  selects answered from the encrypted inverted index (``INDEX_LOOKUP``,
  O(result) provider work) vs the linear ciphertext scan, across table
  sizes and topologies (one provider vs a sharded fleet).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.reporting import ExperimentTable
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.relational.encoding import TupleCodec
from repro.relational.query import Selection
from repro.schemes.registry import available_schemes, create as create_scheme
from repro.searchable.swp import SwpScheme
from repro.searchable.words import Word
from repro.workloads import EmployeeWorkload


def _scheme_instances(schema, seed: int = 0):
    """One instance of every registered scheme over ``schema`` (deterministic keys)."""
    rng = DeterministicRng(seed)
    key = SecretKey.generate(rng=rng)
    return [
        create_scheme(name, schema, key, rng=rng) for name in available_schemes()
    ]


# --------------------------------------------------------------------------- #
# E7: false positives of the searchable scheme
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class FalsePositiveRow:
    """One row of E7."""

    check_length_bytes: int
    predicted_rate: float
    observed_rate: float
    words_tested: int
    false_positives: int


@dataclass(frozen=True)
class FalsePositiveExperiment:
    """E7 result."""

    rows: tuple[FalsePositiveRow, ...]

    def to_table(self) -> ExperimentTable:
        """Render the E7 table."""
        table = ExperimentTable(
            "E7: SWP false-positive rate vs check length m",
            ["m (bytes)", "predicted 2^-8m", "observed", "words tested", "false positives"],
        )
        for row in self.rows:
            table.add_row(
                row.check_length_bytes,
                row.predicted_rate,
                row.observed_rate,
                row.words_tested,
                row.false_positives,
            )
        return table


def run_e7_false_positives(
    check_lengths: Sequence[int] = (1, 2, 3),
    words_per_setting: int = 20000,
    word_length: int = 12,
    seed: int = 7,
) -> FalsePositiveExperiment:
    """E7: measure how often a trapdoor matches a word it should not."""
    rows = []
    for check_length in check_lengths:
        scheme = SwpScheme(
            SecretKey.generate(rng=DeterministicRng(seed)).material,
            word_length=word_length,
            check_length=check_length,
            rng=DeterministicRng(seed + check_length),
        )
        needle = Word(b"needle".ljust(word_length, b"_"))
        token = scheme.trapdoor(needle)
        false_positives = 0
        # Batch unrelated words into documents to amortize the per-document nonce.
        batch = 50
        for start in range(0, words_per_setting, batch):
            words = [
                Word(f"w{start + i}".encode().ljust(word_length, b"_"))
                for i in range(min(batch, words_per_setting - start))
            ]
            document = scheme.encrypt_document(words)
            false_positives += len(scheme.search(document, token).positions)
        rows.append(
            FalsePositiveRow(
                check_length_bytes=check_length,
                predicted_rate=2.0 ** (-8 * check_length),
                observed_rate=false_positives / words_per_setting,
                words_tested=words_per_setting,
                false_positives=false_positives,
            )
        )
    return FalsePositiveExperiment(tuple(rows))


# --------------------------------------------------------------------------- #
# E8: throughput
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class ThroughputRow:
    """One row of E8 (times in milliseconds)."""

    scheme: str
    relation_size: int
    encrypt_ms: float
    query_encrypt_ms: float
    server_eval_ms: float
    decrypt_filter_ms: float
    result_size: int
    false_positives: int


@dataclass(frozen=True)
class ThroughputExperiment:
    """E8 result."""

    rows: tuple[ThroughputRow, ...]

    def to_table(self) -> ExperimentTable:
        """Render the E8 table."""
        table = ExperimentTable(
            "E8: end-to-end cost of an outsourced exact select",
            ["scheme", "n", "encrypt ms", "Eq ms", "server ms", "decrypt+filter ms", "hits", "fps"],
        )
        for row in self.rows:
            table.add_row(
                row.scheme,
                row.relation_size,
                row.encrypt_ms,
                row.query_encrypt_ms,
                row.server_eval_ms,
                row.decrypt_filter_ms,
                row.result_size,
                row.false_positives,
            )
        return table


def _ms(start: float) -> float:
    return (time.perf_counter() - start) * 1000.0


def run_e8_throughput(
    sizes: Sequence[int] = (100, 1000, 5000),
    seed: int = 8,
) -> ThroughputExperiment:
    """E8: time every phase of an outsourced query for every scheme."""
    rows = []
    for size in sizes:
        workload = EmployeeWorkload.generate(size, seed=seed)
        query = workload.department_query()
        for scheme in _scheme_instances(workload.schema, seed=seed):
            start = time.perf_counter()
            encrypted = scheme.encrypt_relation(workload.relation)
            encrypt_ms = _ms(start)

            start = time.perf_counter()
            encrypted_query = scheme.encrypt_query(query)
            query_ms = _ms(start)

            evaluator = scheme.server_evaluator()
            start = time.perf_counter()
            evaluation = evaluator.evaluate(encrypted_query, encrypted)
            server_ms = _ms(start)

            start = time.perf_counter()
            report = scheme.decrypt_result(evaluation, query)
            decrypt_ms = _ms(start)

            rows.append(
                ThroughputRow(
                    scheme=scheme.name,
                    relation_size=size,
                    encrypt_ms=encrypt_ms,
                    query_encrypt_ms=query_ms,
                    server_eval_ms=server_ms,
                    decrypt_filter_ms=decrypt_ms,
                    result_size=report.kept,
                    false_positives=report.false_positives,
                )
            )
    return ThroughputExperiment(tuple(rows))


# --------------------------------------------------------------------------- #
# E9: storage overhead
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class StorageRow:
    """One row of E9."""

    scheme: str
    relation_size: int
    plaintext_bytes: int
    ciphertext_bytes: int
    expansion: float


@dataclass(frozen=True)
class StorageExperiment:
    """E9 result."""

    rows: tuple[StorageRow, ...]

    def to_table(self) -> ExperimentTable:
        """Render the E9 table."""
        table = ExperimentTable(
            "E9: ciphertext expansion",
            ["scheme", "n", "plaintext bytes", "ciphertext bytes", "expansion"],
        )
        for row in self.rows:
            table.add_row(
                row.scheme, row.relation_size, row.plaintext_bytes, row.ciphertext_bytes, row.expansion
            )
        return table


def run_e9_storage_overhead(
    sizes: Sequence[int] = (1000,),
    seed: int = 9,
) -> StorageExperiment:
    """E9: stored bytes per scheme relative to the plaintext serialization."""
    rows = []
    for size in sizes:
        workload = EmployeeWorkload.generate(size, seed=seed)
        codec = TupleCodec(workload.schema)
        plaintext_bytes = sum(len(codec.encode(t)) for t in workload.relation)
        for scheme in _scheme_instances(workload.schema, seed=seed):
            encrypted = scheme.encrypt_relation(workload.relation)
            ciphertext_bytes = encrypted.size_in_bytes()
            rows.append(
                StorageRow(
                    scheme=scheme.name,
                    relation_size=size,
                    plaintext_bytes=plaintext_bytes,
                    ciphertext_bytes=ciphertext_bytes,
                    expansion=ciphertext_bytes / max(1, plaintext_bytes),
                )
            )
    return StorageExperiment(tuple(rows))


# --------------------------------------------------------------------------- #
# E10: serving-path index access vs linear scan
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class IndexVsScanRow:
    """One row of E10: one (size, topology, access, query-kind) cell."""

    access: str           # "scan" (plain QUERY) or "index" (INDEX_LOOKUP)
    topology: str         # "single" or "cluster-4"
    relation_size: int
    query_kind: str       # "point" (one name, ~1 hit) or "popular" (one dept)
    queries: int
    ops_per_s: float
    avg_examined: float   # provider-reported tuples examined per query
    avg_bytes_per_query: float  # envelope bytes in+out per query
    avg_result_size: float


@dataclass(frozen=True)
class IndexVsScanExperiment:
    """E10 result."""

    rows: tuple[IndexVsScanRow, ...]

    def to_table(self) -> ExperimentTable:
        """Render the E10 table."""
        table = ExperimentTable(
            "E10: serving-path index access vs linear scan",
            ["access", "topology", "n", "kind", "ops/s", "examined", "B/query", "hits"],
        )
        for row in self.rows:
            table.add_row(
                row.access,
                row.topology,
                row.relation_size,
                row.query_kind,
                round(row.ops_per_s, 2),
                round(row.avg_examined, 1),
                round(row.avg_bytes_per_query, 1),
                round(row.avg_result_size, 1),
            )
        return table


class _ByteCountingServer:
    """Wrap a provider, counting envelope bytes through ``handle_message``."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.bytes_in = 0
        self.bytes_out = 0

    def handle_message(self, raw: bytes) -> bytes:
        self.bytes_in += len(raw)
        response = self._inner.handle_message(raw)
        self.bytes_out += len(response)
        return response

    def reset(self) -> None:
        self.bytes_in = 0
        self.bytes_out = 0

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


def _e10_backend(topology: str, cluster_shards: int):
    from repro.outsourcing.server import OutsourcedDatabaseServer

    if topology == "single":
        return OutsourcedDatabaseServer()
    from repro.cluster.router import ShardRouter

    return ShardRouter(
        [OutsourcedDatabaseServer() for _ in range(cluster_shards)]
    )


def run_e10_index_vs_scan(
    sizes: Sequence[int] = (1000, 10000),
    seed: int = 10,
    queries_per_point: int = 10,
    cluster_shards: int = 4,
) -> IndexVsScanExperiment:
    """E10: index access vs linear scan on the full serving path.

    For each relation size, topology (one provider vs a ``cluster_shards``-way
    :class:`~repro.cluster.router.ShardRouter`) and access method (plain
    ``QUERY`` scans vs ``INDEX_LOOKUP`` over the encrypted inverted index),
    an :class:`~repro.api.database.EncryptedDatabase` session loads the
    employee workload and serves exact selects end to end.  Each cell records
    client-observed ops/s, provider-examined tuples (the O(result)-vs-O(data)
    curve) and envelope bytes per query.
    """
    from repro.api.database import EncryptedDatabase

    rows = []
    for size in sizes:
        workload = EmployeeWorkload.generate(size, seed=seed)
        names = workload.schema.attribute_names
        positional = [
            tuple(t.value(name) for name in names) for t in workload.relation.tuples
        ]
        # Point selects hit ~1 tuple (O(result) ~ O(1)); the popular
        # department traces the high-selectivity end of the curve.
        step = max(1, size // max(1, queries_per_point))
        kinds = {
            "point": [workload.name_query(i * step) for i in range(queries_per_point)],
            "popular": [workload.department_query()] * max(1, queries_per_point // 3),
        }
        for topology in ("single", f"cluster-{cluster_shards}"):
            for access in ("scan", "index"):
                counter = _ByteCountingServer(_e10_backend(topology, cluster_shards))
                rng = DeterministicRng(seed + size)
                db = EncryptedDatabase.open(
                    SecretKey.generate(rng=rng),
                    server=counter,
                    rng=rng,
                    index=(access == "index"),
                )
                db.create_table(workload.schema, rows=positional)
                for kind, queries in kinds.items():
                    counter.reset()
                    examined = 0
                    hits = 0
                    start = time.perf_counter()
                    for query in queries:
                        outcome = db.select(query, table=workload.schema.name)
                        if outcome.evaluation is not None:
                            examined += outcome.evaluation.examined
                        hits += len(outcome.relation)
                    elapsed = max(time.perf_counter() - start, 1e-9)
                    rows.append(
                        IndexVsScanRow(
                            access=access,
                            topology=topology,
                            relation_size=size,
                            query_kind=kind,
                            queries=len(queries),
                            ops_per_s=len(queries) / elapsed,
                            avg_examined=examined / len(queries),
                            avg_bytes_per_query=(counter.bytes_in + counter.bytes_out)
                            / len(queries),
                            avg_result_size=hits / len(queries),
                        )
                    )
    return IndexVsScanExperiment(tuple(rows))
