"""Experiments E7-E10: false positives, throughput, storage, index-vs-scan.

* **E7** -- false-positive rate of the SWP searchable scheme as a function of
  the check length ``m`` (predicted ``2^{-8m}`` vs observed), and the cost of
  the client-side filter that removes them.
* **E8** -- end-to-end throughput of every scheme (encrypt, query-encrypt,
  server evaluation, decrypt+filter) as the relation grows.
* **E9** -- ciphertext expansion: stored bytes per scheme relative to the
  plaintext serialization.
* **E10** -- the full version's optimization: secure-index backend vs the SWP
  linear scan, as table size and query selectivity vary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.reporting import ExperimentTable
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.relational.encoding import TupleCodec
from repro.relational.query import Selection
from repro.schemes.registry import available_schemes, create as create_scheme
from repro.searchable.swp import SwpScheme
from repro.searchable.words import Word
from repro.workloads import EmployeeWorkload


def _scheme_instances(schema, seed: int = 0):
    """One instance of every registered scheme over ``schema`` (deterministic keys)."""
    rng = DeterministicRng(seed)
    key = SecretKey.generate(rng=rng)
    return [
        create_scheme(name, schema, key, rng=rng) for name in available_schemes()
    ]


# --------------------------------------------------------------------------- #
# E7: false positives of the searchable scheme
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class FalsePositiveRow:
    """One row of E7."""

    check_length_bytes: int
    predicted_rate: float
    observed_rate: float
    words_tested: int
    false_positives: int


@dataclass(frozen=True)
class FalsePositiveExperiment:
    """E7 result."""

    rows: tuple[FalsePositiveRow, ...]

    def to_table(self) -> ExperimentTable:
        """Render the E7 table."""
        table = ExperimentTable(
            "E7: SWP false-positive rate vs check length m",
            ["m (bytes)", "predicted 2^-8m", "observed", "words tested", "false positives"],
        )
        for row in self.rows:
            table.add_row(
                row.check_length_bytes,
                row.predicted_rate,
                row.observed_rate,
                row.words_tested,
                row.false_positives,
            )
        return table


def run_e7_false_positives(
    check_lengths: Sequence[int] = (1, 2, 3),
    words_per_setting: int = 20000,
    word_length: int = 12,
    seed: int = 7,
) -> FalsePositiveExperiment:
    """E7: measure how often a trapdoor matches a word it should not."""
    rows = []
    for check_length in check_lengths:
        scheme = SwpScheme(
            SecretKey.generate(rng=DeterministicRng(seed)).material,
            word_length=word_length,
            check_length=check_length,
            rng=DeterministicRng(seed + check_length),
        )
        needle = Word(b"needle".ljust(word_length, b"_"))
        token = scheme.trapdoor(needle)
        false_positives = 0
        # Batch unrelated words into documents to amortize the per-document nonce.
        batch = 50
        for start in range(0, words_per_setting, batch):
            words = [
                Word(f"w{start + i}".encode().ljust(word_length, b"_"))
                for i in range(min(batch, words_per_setting - start))
            ]
            document = scheme.encrypt_document(words)
            false_positives += len(scheme.search(document, token).positions)
        rows.append(
            FalsePositiveRow(
                check_length_bytes=check_length,
                predicted_rate=2.0 ** (-8 * check_length),
                observed_rate=false_positives / words_per_setting,
                words_tested=words_per_setting,
                false_positives=false_positives,
            )
        )
    return FalsePositiveExperiment(tuple(rows))


# --------------------------------------------------------------------------- #
# E8: throughput
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class ThroughputRow:
    """One row of E8 (times in milliseconds)."""

    scheme: str
    relation_size: int
    encrypt_ms: float
    query_encrypt_ms: float
    server_eval_ms: float
    decrypt_filter_ms: float
    result_size: int
    false_positives: int


@dataclass(frozen=True)
class ThroughputExperiment:
    """E8 result."""

    rows: tuple[ThroughputRow, ...]

    def to_table(self) -> ExperimentTable:
        """Render the E8 table."""
        table = ExperimentTable(
            "E8: end-to-end cost of an outsourced exact select",
            ["scheme", "n", "encrypt ms", "Eq ms", "server ms", "decrypt+filter ms", "hits", "fps"],
        )
        for row in self.rows:
            table.add_row(
                row.scheme,
                row.relation_size,
                row.encrypt_ms,
                row.query_encrypt_ms,
                row.server_eval_ms,
                row.decrypt_filter_ms,
                row.result_size,
                row.false_positives,
            )
        return table


def _ms(start: float) -> float:
    return (time.perf_counter() - start) * 1000.0


def run_e8_throughput(
    sizes: Sequence[int] = (100, 1000, 5000),
    seed: int = 8,
) -> ThroughputExperiment:
    """E8: time every phase of an outsourced query for every scheme."""
    rows = []
    for size in sizes:
        workload = EmployeeWorkload.generate(size, seed=seed)
        query = workload.department_query()
        for scheme in _scheme_instances(workload.schema, seed=seed):
            start = time.perf_counter()
            encrypted = scheme.encrypt_relation(workload.relation)
            encrypt_ms = _ms(start)

            start = time.perf_counter()
            encrypted_query = scheme.encrypt_query(query)
            query_ms = _ms(start)

            evaluator = scheme.server_evaluator()
            start = time.perf_counter()
            evaluation = evaluator.evaluate(encrypted_query, encrypted)
            server_ms = _ms(start)

            start = time.perf_counter()
            report = scheme.decrypt_result(evaluation, query)
            decrypt_ms = _ms(start)

            rows.append(
                ThroughputRow(
                    scheme=scheme.name,
                    relation_size=size,
                    encrypt_ms=encrypt_ms,
                    query_encrypt_ms=query_ms,
                    server_eval_ms=server_ms,
                    decrypt_filter_ms=decrypt_ms,
                    result_size=report.kept,
                    false_positives=report.false_positives,
                )
            )
    return ThroughputExperiment(tuple(rows))


# --------------------------------------------------------------------------- #
# E9: storage overhead
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class StorageRow:
    """One row of E9."""

    scheme: str
    relation_size: int
    plaintext_bytes: int
    ciphertext_bytes: int
    expansion: float


@dataclass(frozen=True)
class StorageExperiment:
    """E9 result."""

    rows: tuple[StorageRow, ...]

    def to_table(self) -> ExperimentTable:
        """Render the E9 table."""
        table = ExperimentTable(
            "E9: ciphertext expansion",
            ["scheme", "n", "plaintext bytes", "ciphertext bytes", "expansion"],
        )
        for row in self.rows:
            table.add_row(
                row.scheme, row.relation_size, row.plaintext_bytes, row.ciphertext_bytes, row.expansion
            )
        return table


def run_e9_storage_overhead(
    sizes: Sequence[int] = (1000,),
    seed: int = 9,
) -> StorageExperiment:
    """E9: stored bytes per scheme relative to the plaintext serialization."""
    rows = []
    for size in sizes:
        workload = EmployeeWorkload.generate(size, seed=seed)
        codec = TupleCodec(workload.schema)
        plaintext_bytes = sum(len(codec.encode(t)) for t in workload.relation)
        for scheme in _scheme_instances(workload.schema, seed=seed):
            encrypted = scheme.encrypt_relation(workload.relation)
            ciphertext_bytes = encrypted.size_in_bytes()
            rows.append(
                StorageRow(
                    scheme=scheme.name,
                    relation_size=size,
                    plaintext_bytes=plaintext_bytes,
                    ciphertext_bytes=ciphertext_bytes,
                    expansion=ciphertext_bytes / max(1, plaintext_bytes),
                )
            )
    return StorageExperiment(tuple(rows))


# --------------------------------------------------------------------------- #
# E10: index backend vs SWP linear scan
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class IndexVsScanRow:
    """One row of E10."""

    backend: str
    relation_size: int
    selectivity: float
    server_eval_ms: float
    token_evaluations: int
    result_size: int


@dataclass(frozen=True)
class IndexVsScanExperiment:
    """E10 result."""

    rows: tuple[IndexVsScanRow, ...]

    def to_table(self) -> ExperimentTable:
        """Render the E10 table."""
        table = ExperimentTable(
            "E10: secure-index backend vs SWP linear scan",
            ["backend", "n", "selectivity", "server ms", "token evals", "hits"],
        )
        for row in self.rows:
            table.add_row(
                row.backend,
                row.relation_size,
                row.selectivity,
                row.server_eval_ms,
                row.token_evaluations,
                row.result_size,
            )
        return table


def run_e10_index_vs_scan(
    sizes: Sequence[int] = (1000, 5000),
    seed: int = 10,
) -> IndexVsScanExperiment:
    """E10: compare server-side evaluation cost of the two backends."""
    rows = []
    for size in sizes:
        workload = EmployeeWorkload.generate(size, seed=seed)
        # One popular department (high selectivity) and one specific employee
        # name (selectivity 1/n).
        queries = [
            ("dept", workload.department_query()),
            ("name", workload.name_query(size // 2)),
        ]
        for backend in ("swp", "index"):
            rng = DeterministicRng(seed + size)
            dph = create_scheme(
                backend, workload.schema, SecretKey.generate(rng=rng), rng=rng
            )
            encrypted = dph.encrypt_relation(workload.relation)
            evaluator = dph.server_evaluator()
            for _, query in queries:
                encrypted_query = dph.encrypt_query(query)
                start = time.perf_counter()
                evaluation = evaluator.evaluate(encrypted_query, encrypted)
                server_ms = _ms(start)
                hits = len(evaluation.matching)
                rows.append(
                    IndexVsScanRow(
                        backend=f"dph-{backend}",
                        relation_size=size,
                        selectivity=hits / size,
                        server_eval_ms=server_ms,
                        token_evaluations=evaluation.token_evaluations,
                        result_size=hits,
                    )
                )
    return IndexVsScanExperiment(tuple(rows))
