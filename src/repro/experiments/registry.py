"""Experiment registry: the index mapping experiment ids to runners.

``EXPERIMENTS`` is the machine-readable version of the per-experiment index in
``DESIGN.md``: every entry names the paper claim being checked, the benchmark
module that regenerates it and the callable that produces the table.  The
``examples/reproduce_paper.py`` script iterates over it to print every table
in one run (with reduced parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.attacks import (
    run_e1_bucketization_attack,
    run_e2_damiani_attack,
    run_e3_dph_indistinguishability,
    run_e4_theorem21,
)
from repro.experiments.inference import (
    run_e5_hospital_inference,
    run_e6_active_adversary,
)
from repro.experiments.performance import (
    run_e7_false_positives,
    run_e8_throughput,
    run_e9_storage_overhead,
    run_e10_index_vs_scan,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One entry of the experiment index."""

    identifier: str
    claim: str
    benchmark: str
    runner: Callable
    quick_parameters: dict

    def run_quick(self):
        """Run the experiment with reduced parameters (seconds, not minutes)."""
        return self.runner(**self.quick_parameters)


EXPERIMENTS: tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        "E1",
        "The salary-pair adversary breaks bucketization with probability ~1 (Sec. 1)",
        "benchmarks/bench_e1_bucketization_attack.py",
        run_e1_bucketization_attack,
        {"trials": 60, "bucket_counts": (4, 16, 64)},
    ),
    ExperimentSpec(
        "E2",
        "The same attack breaks the Damiani hashed-index scheme (Sec. 1)",
        "benchmarks/bench_e2_damiani_attack.py",
        run_e2_damiani_attack,
        {"trials": 60, "hash_value_counts": (16, 256)},
    ),
    ExperimentSpec(
        "E3",
        "The construction is indistinguishable at q = 0: advantage ~0 (Sec. 3)",
        "benchmarks/bench_e3_dph_indistinguishability.py",
        run_e3_dph_indistinguishability,
        {"trials": 60},
    ),
    ExperimentSpec(
        "E4",
        "Theorem 2.1: every database PH loses the game once q > 0",
        "benchmarks/bench_e4_theorem21.py",
        run_e4_theorem21,
        {"trials": 30},
    ),
    ExperimentSpec(
        "E5",
        "Result sizes + intersections reveal per-hospital fatality ratios (Sec. 2)",
        "benchmarks/bench_e5_hospital_inference.py",
        run_e5_hospital_inference,
        {"sizes": (500, 2000), "trials": 3},
    ),
    ExperimentSpec(
        "E6",
        "An active adversary locates a known patient with ~4-6 oracle queries (Sec. 2)",
        "benchmarks/bench_e6_active_adversary.py",
        run_e6_active_adversary,
        {"sizes": (500, 2000), "trials": 3},
    ),
    ExperimentSpec(
        "E7",
        "False positives are rare (~2^-8m) and filtered client-side (Sec. 3)",
        "benchmarks/bench_e7_false_positives.py",
        run_e7_false_positives,
        {"check_lengths": (1, 2), "words_per_setting": 5000},
    ),
    ExperimentSpec(
        "E8",
        "Encryption, query encryption, search and decryption scale linearly",
        "benchmarks/bench_e8_throughput.py",
        run_e8_throughput,
        {"sizes": (100, 1000)},
    ),
    ExperimentSpec(
        "E9",
        "Storage expansion of every scheme relative to plaintext",
        "benchmarks/bench_e9_storage_overhead.py",
        run_e9_storage_overhead,
        {"sizes": (500,)},
    ),
    ExperimentSpec(
        "E10",
        "Serving-path index lookups (O(result)) vs linear scans (O(data))",
        "benchmarks/bench_e10_index_vs_scan.py",
        run_e10_index_vs_scan,
        {"sizes": (500, 2000), "queries_per_point": 5},
    ),
)
