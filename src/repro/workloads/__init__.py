"""Synthetic workload generators driving the experiments.

* :mod:`repro.workloads.distributions` -- categorical / uniform / Zipf
  samplers over a shared :class:`~repro.crypto.rng.RandomSource`.
* :mod:`repro.workloads.hospital` -- the paper's hospital statistics database
  (Section 2): three hospitals with patient flows 0.2 / 0.3 / 0.5 and fatal
  vs. healthy outcomes 0.08 / 0.92.
* :mod:`repro.workloads.employees` -- an employee relation in the spirit of
  the paper's ``Emp(name, dept, salary)`` example, used by the throughput and
  storage experiments.
* :mod:`repro.workloads.generator` -- a generic schema-driven synthetic
  relation generator.
* :mod:`repro.workloads.queries` -- exact-select query workloads with
  controllable selectivity.
"""

from repro.workloads.distributions import (
    CategoricalDistribution,
    UniformIntDistribution,
    ZipfDistribution,
)
from repro.workloads.employees import EmployeeWorkload, employee_schema
from repro.workloads.generator import SyntheticRelationGenerator
from repro.workloads.hospital import HospitalWorkload, hospital_schema
from repro.workloads.queries import (
    random_equality_queries,
    queries_over_values,
)

__all__ = [
    "CategoricalDistribution",
    "UniformIntDistribution",
    "ZipfDistribution",
    "EmployeeWorkload",
    "employee_schema",
    "SyntheticRelationGenerator",
    "HospitalWorkload",
    "hospital_schema",
    "random_equality_queries",
    "queries_over_values",
]
