"""The paper's hospital statistics database (Section 2).

"Consider an example where Alex owns a database with statistics for three
competing hospitals, keeping track of the state in which patients are leaving
each hospital.  Each patient is described by the attributes id, name,
hospital, and outcome (outcome is a binary attribute either set to 'fatal' or
'healthy').  Now suppose that Eve knows the database schema, the number of
hospitals, and has good estimates of the distribution of patient flows
(0.2, 0.3, 0.5 resp.) and the ratio of fatal vs. successful outcomes
(0.08, 0.92)."

:class:`HospitalWorkload` generates such a database (optionally planting a
named target patient such as "John" for the active attack of experiment E6)
and exposes the ground truth the attacks are evaluated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import DeterministicRng, RandomSource
from repro.relational.query import Query, Selection
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.workloads.distributions import CategoricalDistribution

#: Patient flow distribution over the three hospitals, as stated in the paper.
DEFAULT_FLOWS = (0.2, 0.3, 0.5)

#: (fatal, healthy) outcome distribution, as stated in the paper.
DEFAULT_OUTCOME_RATES = (0.08, 0.92)

FATAL = "fatal"
HEALTHY = "healthy"


def hospital_schema() -> RelationSchema:
    """``patients(id:int, name:string[16], hospital:int, outcome:string[7])``."""
    return RelationSchema(
        "patients",
        [
            Attribute.integer("id", 8),
            Attribute.string("name", 16),
            Attribute.integer("hospital", 1, identifier="H"),
            Attribute.string("outcome", 7),
        ],
    )


@dataclass
class HospitalWorkload:
    """A generated hospital database plus the ground truth behind it."""

    relation: Relation
    flows: tuple[float, ...] = DEFAULT_FLOWS
    outcome_rates: tuple[float, float] = DEFAULT_OUTCOME_RATES
    target_name: str | None = None
    target_hospital: int | None = None
    target_outcome: str | None = None
    hospitals: tuple[int, ...] = field(default_factory=tuple)

    @property
    def schema(self) -> RelationSchema:
        """The patients schema."""
        return self.relation.schema

    @property
    def size(self) -> int:
        """Number of patients."""
        return len(self.relation)

    def true_fatality_ratio(self, hospital: int) -> float:
        """Ground-truth fraction of fatal outcomes among the hospital's patients."""
        patients = self.relation.select_equal("hospital", hospital)
        if len(patients) == 0:
            return 0.0
        fatal = patients.select_equal("outcome", FATAL)
        return len(fatal) / len(patients)

    def alex_queries(self) -> list[Query]:
        """The exact query sequence of the paper's Section 2 example.

        ``SELECT * WHERE hospital = 1 / 2 / 3`` followed by
        ``SELECT * WHERE outcome = 'fatal'``.
        """
        queries: list[Query] = [
            Selection.equals("hospital", h) for h in self.hospitals
        ]
        queries.append(Selection.equals("outcome", FATAL))
        return queries

    @classmethod
    def generate(
        cls,
        size: int,
        rng: RandomSource | None = None,
        flows: tuple[float, ...] = DEFAULT_FLOWS,
        outcome_rates: tuple[float, float] = DEFAULT_OUTCOME_RATES,
        target_name: str | None = None,
        seed: int = 0,
    ) -> "HospitalWorkload":
        """Generate ``size`` patients with the configured marginals.

        If ``target_name`` is given, one extra patient with that name is
        planted at a random hospital with a random outcome (the "John" of the
        active attack); all other patient names are synthetic and unique.
        """
        if size < 1:
            raise ValueError("size must be at least 1")
        if len(outcome_rates) != 2:
            raise ValueError("outcome_rates must be (fatal, healthy)")
        rng = rng if rng is not None else DeterministicRng(seed)
        hospitals = tuple(range(1, len(flows) + 1))
        flow_dist = CategoricalDistribution(list(hospitals), list(flows))
        outcome_dist = CategoricalDistribution([FATAL, HEALTHY], list(outcome_rates))

        relation = Relation(hospital_schema())
        for patient_id in range(1, size + 1):
            relation.add(
                {
                    "id": patient_id,
                    "name": f"patient{patient_id}",
                    "hospital": flow_dist.sample(rng),
                    "outcome": outcome_dist.sample(rng),
                }
            )

        target_hospital = None
        target_outcome = None
        if target_name is not None:
            target_hospital = flow_dist.sample(rng)
            target_outcome = outcome_dist.sample(rng)
            relation.add(
                {
                    "id": size + 1,
                    "name": target_name,
                    "hospital": target_hospital,
                    "outcome": target_outcome,
                }
            )

        return cls(
            relation=relation,
            flows=tuple(flows),
            outcome_rates=tuple(outcome_rates),
            target_name=target_name,
            target_hospital=target_hospital,
            target_outcome=target_outcome,
            hospitals=hospitals,
        )
