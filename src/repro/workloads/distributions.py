"""Value distributions for synthetic data generation.

All distributions draw their randomness from a
:class:`~repro.crypto.rng.RandomSource`, so a seeded source makes every
generated workload bit-for-bit reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.crypto.rng import RandomSource


class Distribution(ABC):
    """A sampler over some value domain."""

    @abstractmethod
    def sample(self, rng: RandomSource):
        """Draw one value."""

    def sample_many(self, rng: RandomSource, count: int) -> list:
        """Draw ``count`` values."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample(rng) for _ in range(count)]


class CategoricalDistribution(Distribution):
    """Samples from explicit categories with given probabilities.

    This is the distribution the hospital workload uses for patient flows
    (0.2 / 0.3 / 0.5) and outcomes (0.08 / 0.92).
    """

    def __init__(self, categories: Sequence, probabilities: Sequence[float]) -> None:
        if len(categories) != len(probabilities):
            raise ValueError("categories and probabilities must have equal length")
        if not categories:
            raise ValueError("need at least one category")
        total = float(sum(probabilities))
        if total <= 0:
            raise ValueError("probabilities must sum to a positive value")
        if any(p < 0 for p in probabilities):
            raise ValueError("probabilities must be non-negative")
        self._categories = list(categories)
        self._weights = [p / total for p in probabilities]

    @property
    def categories(self) -> list:
        """The category values."""
        return list(self._categories)

    @property
    def probabilities(self) -> list[float]:
        """The normalized probabilities."""
        return list(self._weights)

    def sample(self, rng: RandomSource):
        """Draw one category."""
        return self._categories[rng.sample_distribution(self._weights)]


class UniformIntDistribution(Distribution):
    """Uniform integers over an inclusive range."""

    def __init__(self, low: int, high: int) -> None:
        if high < low:
            raise ValueError("high must not be smaller than low")
        self._low = low
        self._high = high

    def sample(self, rng: RandomSource) -> int:
        """Draw one integer."""
        return rng.randint(self._low, self._high)


class ZipfDistribution(Distribution):
    """Zipf-distributed ranks over ``{1, ..., n}`` mapped onto given values.

    Skewed value popularity is the realistic regime for attribute values
    (departments, diagnoses, cities); the selectivity sweep of experiment E10
    uses it to produce both hot and cold query values.
    """

    def __init__(self, values: Sequence, exponent: float = 1.0) -> None:
        if not values:
            raise ValueError("need at least one value")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        weights = [1.0 / ((rank + 1) ** exponent) for rank in range(len(values))]
        self._categorical = CategoricalDistribution(list(values), weights)

    def sample(self, rng: RandomSource):
        """Draw one value with Zipf-skewed popularity."""
        return self._categorical.sample(rng)
