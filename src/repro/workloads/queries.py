"""Exact-select query workloads.

The construction supports exact selects; these helpers produce batches of them
for the homomorphism checks, the passive Definition 2.1 game and the
throughput experiments.
"""

from __future__ import annotations

from repro.crypto.rng import DeterministicRng, RandomSource
from repro.relational.query import Query, Selection
from repro.relational.relation import Relation


def queries_over_values(attribute: str, values) -> list[Query]:
    """One exact select per value."""
    return [Selection.equals(attribute, value) for value in values]


def random_equality_queries(
    relation: Relation,
    attribute: str,
    count: int,
    rng: RandomSource | None = None,
    seed: int = 0,
    hit_probability: float = 1.0,
) -> list[Query]:
    """``count`` exact selects on ``attribute``.

    With probability ``hit_probability`` the searched value is drawn from the
    values actually present in the relation; otherwise a value that does not
    occur is synthesized (integer one past the maximum, or a fresh string), so
    workloads can mix hits and guaranteed misses.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if not 0.0 <= hit_probability <= 1.0:
        raise ValueError("hit_probability must be in [0, 1]")
    rng = rng if rng is not None else DeterministicRng(seed)
    present = sorted(relation.distinct_values(attribute), key=repr)
    queries: list[Query] = []
    for index in range(count):
        if present and rng.random() < hit_probability:
            value = rng.choice(present)
        else:
            value = _missing_value(relation, attribute, index)
        queries.append(Selection.equals(attribute, value))
    return queries


def _missing_value(relation: Relation, attribute: str, index: int):
    """A value of the attribute's type guaranteed not to occur in the relation."""
    present = relation.distinct_values(attribute)
    attr = relation.schema.attribute(attribute)
    if all(isinstance(v, int) for v in present) and present:
        candidate = max(present) + 1 + index
        return candidate
    base = f"miss{index}"
    candidate = base
    suffix = 0
    while candidate in present or len(candidate) > attr.max_length:
        suffix += 1
        candidate = f"m{suffix}"
    return candidate
