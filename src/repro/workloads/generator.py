"""Generic schema-driven synthetic relation generator.

Useful when an experiment needs a relation over an ad-hoc schema (the
indistinguishability experiments of E3 build random table pairs this way):
attach a :class:`~repro.workloads.distributions.Distribution` to every
attribute and draw as many tuples as needed.
"""

from __future__ import annotations

from repro.crypto.rng import DeterministicRng, RandomSource
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.relational.types import AttributeType
from repro.workloads.distributions import (
    Distribution,
    UniformIntDistribution,
)


class SyntheticRelationGenerator:
    """Generates relations over ``schema`` from per-attribute distributions.

    Attributes without an explicit distribution fall back to defaults:
    uniform integers over the attribute's digit budget, or short synthetic
    strings ``v<number>`` for string attributes.
    """

    def __init__(
        self,
        schema: RelationSchema,
        distributions: dict[str, Distribution] | None = None,
        distinct_string_values: int = 100,
    ) -> None:
        if distinct_string_values < 1:
            raise ValueError("distinct_string_values must be at least 1")
        self._schema = schema
        self._distributions = dict(distributions or {})
        for name in self._distributions:
            schema.attribute(name)
        self._distinct_string_values = distinct_string_values

    @property
    def schema(self) -> RelationSchema:
        """The target schema."""
        return self._schema

    def generate(self, size: int, rng: RandomSource | None = None, seed: int = 0) -> Relation:
        """Generate ``size`` tuples."""
        if size < 0:
            raise ValueError("size must be non-negative")
        rng = rng if rng is not None else DeterministicRng(seed)
        relation = Relation(self._schema)
        for _ in range(size):
            values = {}
            for attribute in self._schema.attributes:
                distribution = self._distributions.get(attribute.name)
                if distribution is not None:
                    values[attribute.name] = distribution.sample(rng)
                else:
                    values[attribute.name] = self._default_value(attribute, rng)
            relation.add(values)
        return relation

    def _default_value(self, attribute, rng: RandomSource):
        if attribute.attribute_type is AttributeType.INTEGER:
            upper = 10 ** min(attribute.max_length, 9) - 1
            return UniformIntDistribution(0, upper).sample(rng)
        # Synthetic string values "v0", "v1", ...; capped so they always fit.
        budget = max(1, attribute.max_length - 1)
        count = min(self._distinct_string_values, 10**budget)
        return f"v{rng.randint(0, count - 1)}"
