"""Employee relation workload.

The paper's running construction example uses ``Emp(name:string[9],
dept:string[5], salary:int)``; this module generates arbitrarily large
relations over a compatible (slightly widened) schema for the throughput,
storage-overhead and selectivity experiments (E8, E9, E10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import DeterministicRng, RandomSource
from repro.relational.query import Query, Selection
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.workloads.distributions import UniformIntDistribution, ZipfDistribution

#: Department names used by the generator (Zipf-skewed popularity).
DEFAULT_DEPARTMENTS = ("HR", "IT", "SALES", "LEGAL", "R&D", "OPS", "PR", "FIN")

#: Salary range used by the generator.
DEFAULT_SALARY_RANGE = (1000, 9999)


def employee_schema() -> RelationSchema:
    """``Emp(name:string[14], dept:string[5], salary:int[6])``."""
    return RelationSchema(
        "Emp",
        [
            Attribute.string("name", 14),
            Attribute.string("dept", 5),
            Attribute.integer("salary", 6),
        ],
    )


@dataclass
class EmployeeWorkload:
    """A generated employee relation plus its generation parameters."""

    relation: Relation
    departments: tuple[str, ...] = DEFAULT_DEPARTMENTS
    salary_range: tuple[int, int] = DEFAULT_SALARY_RANGE

    @property
    def schema(self) -> RelationSchema:
        """The employee schema."""
        return self.relation.schema

    @property
    def size(self) -> int:
        """Number of employees."""
        return len(self.relation)

    def department_query(self, department: str | None = None) -> Query:
        """An exact select on a department (the most popular one by default)."""
        return Selection.equals("dept", department or self.departments[0])

    def name_query(self, index: int = 0) -> Query:
        """An exact select on one specific employee name (selectivity ~1 tuple)."""
        return Selection.equals("name", f"emp{index}")

    @classmethod
    def generate(
        cls,
        size: int,
        rng: RandomSource | None = None,
        departments: tuple[str, ...] = DEFAULT_DEPARTMENTS,
        salary_range: tuple[int, int] = DEFAULT_SALARY_RANGE,
        department_skew: float = 1.0,
        seed: int = 0,
    ) -> "EmployeeWorkload":
        """Generate ``size`` employees with Zipf-skewed departments."""
        if size < 0:
            raise ValueError("size must be non-negative")
        rng = rng if rng is not None else DeterministicRng(seed)
        dept_dist = ZipfDistribution(list(departments), exponent=department_skew)
        salary_dist = UniformIntDistribution(*salary_range)
        relation = Relation(employee_schema())
        for index in range(size):
            relation.add(
                {
                    "name": f"emp{index}",
                    "dept": dept_dist.sample(rng),
                    "salary": salary_dist.sample(rng),
                }
            )
        return cls(
            relation=relation,
            departments=tuple(departments),
            salary_range=tuple(salary_range),
        )
