"""Tuple migration when the shard fleet changes shape.

Consistent hashing guarantees that membership changes strand only a small
fraction of tuples on the wrong shards (roughly ``1/N`` on an add); this
module repairs exactly those.  The desired placement of a tuple is the set
of its R ring successors (:meth:`ConsistentHashRing.successors`, R = the
``replication`` factor, 1 when unreplicated).  For every relation the
rebalance snapshots the whole fleet, indexes the physical copies by public
tuple id, and then makes reality match the ring:

* a tuple missing from one of its R successors is **copied there first**
  (insert-first: a crash mid-migration degrades to a transient surplus
  copy -- deduplicated by every read path -- rather than data loss, and
  never drops below the replication factor);
* only after all copies of a relation are placed are the **stale copies
  deleted** from shards outside the successor set.

Re-running the rebalance converges: correctly placed tuples are never
touched, and a crash between the insert and delete phases just leaves
work the next run finishes.  This also makes the rebalance the repair
path for *under-replication* -- a tuple that lost a copy (a shard wiped
and re-added, a failed replicated insert that was retried) is re-copied
from any surviving holder.

The migration is not atomic with respect to concurrent writers; run it from
the coordinator while no other session mutates the affected relations (the
same discipline the single-provider ``STORE_RELATION`` replacement already
requires).

Everything here works on the :class:`~repro.outsourcing.server.OutsourcedDatabaseServer`
duck-type (``stored_relation`` / ``insert_tuple`` / ``delete_tuples``), so
in-process shards and ``tcp://`` proxies migrate identically.  The
``shards`` mapping may contain backends that are *not* on the ring (a
leaving shard being drained): they serve as copy sources and end up
holding nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.cluster.executor import ClusterError
from repro.cluster.ring import ConsistentHashRing


@dataclass
class RebalanceReport:
    """What a migration did: scanned/copied/deleted counts by relation."""

    #: Physical tuple copies inspected across all shards and relations.
    scanned: int = 0
    #: Copies created on a missing successor shard.
    moved: int = 0
    #: Stale physical copies deleted from shards outside the successor set.
    removed: int = 0
    per_relation: dict[str, int] = field(default_factory=dict)
    #: ``(source, target) -> count`` of migrated tuple copies.
    per_edge: dict[tuple[str, str], int] = field(default_factory=dict)

    def record_move(self, relation: str, source: str, target: str) -> None:
        self.moved += 1
        self.per_relation[relation] = self.per_relation.get(relation, 0) + 1
        self.per_edge[(source, target)] = self.per_edge.get((source, target), 0) + 1

    def summary(self) -> str:
        """One-line human rendering (printed by the CLI)."""
        if not self.moved and not self.removed:
            return f"rebalance: {self.scanned} tuple(s) scanned, nothing to move"
        edges = ", ".join(
            f"{source}->{target}: {count}"
            for (source, target), count in sorted(self.per_edge.items())
        )
        trailer = f", {self.removed} stale cop(ies) removed" if self.removed else ""
        return (
            f"rebalance: moved {self.moved}/{self.scanned} tuple cop(ies) "
            f"({edges}){trailer}"
        )


def _index_copies(
    shards: Mapping[str, Any], relation_name: str, report: RebalanceReport | None = None
) -> dict[bytes, tuple[Any, set[str]]]:
    """``tuple_id -> (encrypted_tuple, holder shard ids)`` for one relation.

    Snapshots every shard up front so freshly migrated copies are not
    re-scanned on their destination shard.
    """
    placement: dict[bytes, tuple[Any, set[str]]] = {}
    for shard_id, server in shards.items():
        relation = server.stored_relation(relation_name)
        if report is not None:
            report.scanned += len(relation)
        for encrypted_tuple in relation:
            entry = placement.get(encrypted_tuple.tuple_id)
            if entry is None:
                placement[encrypted_tuple.tuple_id] = (encrypted_tuple, {shard_id})
            else:
                entry[1].add(shard_id)
    return placement


def misplaced_tuples(
    shards: Mapping[str, Any],
    ring: ConsistentHashRing,
    relation_name: str,
    *,
    replication: int = 1,
) -> list[tuple[str, str, Any]]:
    """``(source, target, encrypted_tuple)`` for every copy the fleet lacks.

    One entry per missing ``(tuple, successor shard)`` pair; ``source`` is
    a shard currently holding a copy the rebalance would duplicate from.
    """
    moves = []
    for tuple_id, (encrypted_tuple, holders) in _index_copies(
        shards, relation_name
    ).items():
        desired = set(ring.successors(tuple_id, replication))
        missing = desired - holders
        if not missing:
            continue
        kept = holders & desired
        source = sorted(kept)[0] if kept else sorted(holders)[0]
        for target in sorted(missing):
            moves.append((source, target, encrypted_tuple))
    return moves


def surplus_copies(
    shards: Mapping[str, Any],
    ring: ConsistentHashRing,
    relation_name: str,
    *,
    replication: int = 1,
) -> list[tuple[str, bytes]]:
    """``(shard_id, tuple_id)`` for every copy stored off its successor set."""
    surplus = []
    for tuple_id, (_, holders) in _index_copies(shards, relation_name).items():
        desired = set(ring.successors(tuple_id, replication))
        for shard_id in sorted(holders - desired):
            surplus.append((shard_id, tuple_id))
    return surplus


def rebalance(
    shards: Mapping[str, Any],
    ring: ConsistentHashRing,
    relation_names: Iterable[str],
    *,
    replication: int = 1,
) -> RebalanceReport:
    """Repair every tuple of the named relations onto its R ring successors.

    Copies are created before any stale copy is deleted (per relation), so
    a crash at any point leaves every tuple with at least as many live
    copies as before the run.
    """
    unknown = [shard_id for shard_id in ring.shard_ids if shard_id not in shards]
    if unknown:
        raise ClusterError(
            f"the ring names shard(s) {unknown} that have no backend"
        )
    if replication < 1 or replication > len(ring):
        raise ClusterError(
            f"cannot place {replication} replicas on {len(ring)} ring shard(s)"
        )
    report = RebalanceReport()
    for name in relation_names:
        placement = _index_copies(shards, name, report)
        pending_deletes: dict[str, list[bytes]] = {}
        for tuple_id, (encrypted_tuple, holders) in placement.items():
            desired = set(ring.successors(tuple_id, replication))
            if holders == desired:
                continue
            kept = holders & desired
            source = sorted(kept)[0] if kept else sorted(holders)[0]
            # Insert-first: a crash here leaves a surplus copy, not a loss.
            for target in sorted(desired - holders):
                shards[target].insert_tuple(name, encrypted_tuple)
                report.record_move(name, source, target)
            for shard_id in sorted(holders - desired):
                pending_deletes.setdefault(shard_id, []).append(tuple_id)
        for shard_id, tuple_ids in pending_deletes.items():
            report.removed += shards[shard_id].delete_tuples(name, tuple_ids)
    return report
