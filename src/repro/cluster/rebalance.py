"""Tuple migration when the shard fleet changes shape.

Consistent hashing guarantees that membership changes strand only a small
fraction of tuples on the wrong shard (roughly ``1/N`` on an add); this
module moves exactly those.  For every relation and every shard it fetches
the shard's ciphertexts, finds the tuples whose ring owner differs, and
migrates each one **insert-first**: the tuple is appended at its new owner
before it is deleted at the old one, so a crash mid-migration degrades to a
transient duplicate (filtered like any false positive is not -- the tuple
decrypts identically twice) rather than data loss.  Re-running the
rebalance converges: already-correct tuples are never touched.

The migration is not atomic with respect to concurrent writers; run it from
the coordinator while no other session mutates the affected relations (the
same discipline the single-provider ``STORE_RELATION`` replacement already
requires).

Everything here works on the :class:`~repro.outsourcing.server.OutsourcedDatabaseServer`
duck-type (``stored_relation`` / ``insert_tuple`` / ``delete_tuples``), so
in-process shards and ``tcp://`` proxies migrate identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.cluster.executor import ClusterError
from repro.cluster.ring import ConsistentHashRing


@dataclass
class RebalanceReport:
    """What a migration did: scanned/moved counts by relation and shard."""

    #: Tuples inspected across all shards and relations.
    scanned: int = 0
    #: Tuples moved to a different shard.
    moved: int = 0
    per_relation: dict[str, int] = field(default_factory=dict)
    #: ``(source, target) -> count`` of migrated tuples.
    per_edge: dict[tuple[str, str], int] = field(default_factory=dict)

    def record_move(self, relation: str, source: str, target: str) -> None:
        self.moved += 1
        self.per_relation[relation] = self.per_relation.get(relation, 0) + 1
        self.per_edge[(source, target)] = self.per_edge.get((source, target), 0) + 1

    def summary(self) -> str:
        """One-line human rendering (printed by the CLI)."""
        if not self.moved:
            return f"rebalance: {self.scanned} tuple(s) scanned, nothing to move"
        edges = ", ".join(
            f"{source}->{target}: {count}"
            for (source, target), count in sorted(self.per_edge.items())
        )
        return (
            f"rebalance: moved {self.moved}/{self.scanned} tuple(s) ({edges})"
        )


def misplaced_tuples(
    shards: Mapping[str, Any], ring: ConsistentHashRing, relation_name: str
) -> list[tuple[str, str, Any]]:
    """``(source, target, encrypted_tuple)`` for every tuple off its ring owner."""
    moves = []
    for shard_id, server in shards.items():
        for encrypted_tuple in server.stored_relation(relation_name):
            target = ring.assign(encrypted_tuple.tuple_id)
            if target != shard_id:
                moves.append((shard_id, target, encrypted_tuple))
    return moves


def rebalance(
    shards: Mapping[str, Any],
    ring: ConsistentHashRing,
    relation_names: Iterable[str],
) -> RebalanceReport:
    """Migrate every misplaced tuple of the named relations to its ring owner."""
    unknown = [shard_id for shard_id in ring.shard_ids if shard_id not in shards]
    if unknown:
        raise ClusterError(
            f"the ring names shard(s) {unknown} that have no backend"
        )
    report = RebalanceReport()
    for name in relation_names:
        # Snapshot every shard before moving anything, so freshly migrated
        # tuples are not re-scanned on their destination shard.
        snapshots = {
            shard_id: server.stored_relation(name)
            for shard_id, server in shards.items()
        }
        pending: dict[str, list[bytes]] = {}
        for shard_id, relation in snapshots.items():
            report.scanned += len(relation)
            for encrypted_tuple in relation:
                target = ring.assign(encrypted_tuple.tuple_id)
                if target == shard_id:
                    continue
                # Insert-first: a crash here leaves a duplicate, not a loss.
                shards[target].insert_tuple(name, encrypted_tuple)
                pending.setdefault(shard_id, []).append(encrypted_tuple.tuple_id)
                report.record_move(name, shard_id, target)
        for shard_id, tuple_ids in pending.items():
            shards[shard_id].delete_tuples(name, tuple_ids)
    return report
