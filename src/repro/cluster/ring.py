"""Deterministic consistent-hash ring over shard identifiers.

The cluster's placement function: every encrypted tuple is assigned to one
shard by hashing its *public* tuple id onto a ring of virtual nodes.  The
tuple id is a random nonce chosen at encryption time
(:class:`~repro.core.dph.EncryptedTuple`), so the coordinator's routing
decision is a function of values the provider already sees -- sharding adds
no new leakage beyond which provider stores which ciphertext, and even that
is a function of public randomness, not of any plaintext.

Properties the rest of :mod:`repro.cluster` relies on:

* **Deterministic** -- the ring is a pure function of the shard identifiers
  and the virtual-node count; two coordinators configured with the same
  shard list route identically, with no shared state.
* **Balanced** -- each shard owns many virtual points
  (:data:`DEFAULT_VIRTUAL_NODES` per shard), so 10k keys spread within a
  few percent of the fair share.
* **Stable** -- adding or removing one shard only reassigns the keys that
  move to/from that shard (roughly ``1/N`` of them); every other key keeps
  its shard, which is what makes :mod:`repro.cluster.rebalance` cheap.
* **Replica sets** -- :meth:`ConsistentHashRing.successors` extends
  :meth:`ConsistentHashRing.assign` to a deterministic list of R *distinct*
  shards per key (the ring-order successors), which is the placement rule
  for per-shard replication: every tuple is stored on all R successors, so
  any R-1 shard failures leave at least one copy reachable
  (:meth:`ConsistentHashRing.covers` is the exact feasibility check).
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Iterable, Sequence

#: Virtual nodes per shard.  256 keeps the maximum deviation from the fair
#: share around ~10% for clusters up to 8 shards (tests/cluster/test_ring.py
#: pins the <=15% bound at 10k keys).
DEFAULT_VIRTUAL_NODES = 256

#: Backward-compatible alias from before replication existed, when "replicas"
#: unambiguously meant virtual nodes.  New code should say what it means.
DEFAULT_REPLICAS = DEFAULT_VIRTUAL_NODES


class RingError(Exception):
    """The ring cannot satisfy a placement request."""


def _hash_point(data: bytes) -> int:
    return int.from_bytes(hashlib.sha256(data).digest()[:16], "big")


class ConsistentHashRing:
    """A consistent-hash ring mapping byte keys to shard identifiers."""

    def __init__(
        self,
        shard_ids: Iterable[str] = (),
        *,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> None:
        if virtual_nodes < 1:
            raise RingError("a ring needs at least one virtual node per shard")
        self._virtual_nodes = virtual_nodes
        self._shard_ids: list[str] = []
        # Parallel sorted arrays: bisect over _points, index into _owners.
        self._points: list[int] = []
        self._owners: list[str] = []
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    @property
    def shard_ids(self) -> tuple[str, ...]:
        """The shards on the ring, in insertion order."""
        return tuple(self._shard_ids)

    @property
    def virtual_nodes(self) -> int:
        """Virtual nodes per shard."""
        return self._virtual_nodes

    def __len__(self) -> int:
        return len(self._shard_ids)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shard_ids

    def add_shard(self, shard_id: str) -> None:
        """Insert one shard's virtual nodes."""
        if not shard_id:
            raise RingError("shard ids must be non-empty strings")
        if shard_id in self._shard_ids:
            raise RingError(f"shard {shard_id!r} is already on the ring")
        self._shard_ids.append(shard_id)
        for point in self._shard_points(shard_id):
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)

    def remove_shard(self, shard_id: str) -> None:
        """Remove one shard's virtual nodes."""
        if shard_id not in self._shard_ids:
            raise RingError(f"shard {shard_id!r} is not on the ring")
        self._shard_ids.remove(shard_id)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard_id
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def _shard_points(self, shard_id: str) -> list[int]:
        label = shard_id.encode("utf-8")
        return [
            _hash_point(b"ring-node\x00" + label + b"\x00" + str(i).encode("ascii"))
            for i in range(self._virtual_nodes)
        ]

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #

    def assign(self, key: bytes) -> str:
        """The shard owning ``key`` (the first virtual node at or after it)."""
        return self.successors(key, 1)[0]

    def successors(self, key: bytes, count: int) -> tuple[str, ...]:
        """The ``count`` distinct shards holding the replicas of ``key``.

        Walks the ring clockwise from the key's position and collects the
        first ``count`` *distinct* shard owners, so
        ``successors(key, 1) == (assign(key),)`` and the list inherits the
        ring's stability: a membership change only touches the successor
        lists whose walk crosses the changed shard's virtual nodes.
        """
        if count < 1:
            raise RingError("a key needs at least one replica")
        if not self._points:
            raise RingError("the ring has no shards")
        if count > len(self._shard_ids):
            raise RingError(
                f"cannot place {count} replicas on {len(self._shard_ids)} shard(s)"
            )
        point = _hash_point(b"ring-key\x00" + key)
        index = bisect.bisect(self._points, point)
        return self._distinct_owners_from(index, count)

    def _distinct_owners_from(self, index: int, count: int) -> tuple[str, ...]:
        """First ``count`` distinct owners at or after virtual node ``index``."""
        total = len(self._points)
        owners: list[str] = []
        for step in range(total):
            owner = self._owners[(index + step) % total]
            if owner not in owners:
                owners.append(owner)
                if len(owners) == count:
                    break
        return tuple(owners)

    def covers(self, live_shard_ids: Iterable[str], count: int) -> bool:
        """Whether ``live_shard_ids`` reach >= 1 of every key's ``count`` replicas.

        The read-failover feasibility check: with replication factor
        ``count``, a scatter that only got answers from ``live_shard_ids``
        is still *complete* -- every tuple reachable at least once -- iff
        every ring segment's successor list intersects the live set.  Fewer
        than ``count`` dead shards always covers (successor lists hold
        ``count`` distinct shards); beyond that the segments are checked
        exactly.
        """
        live = set(live_shard_ids) & set(self._shard_ids)
        if not self._shard_ids:
            return False
        if len(live) == len(self._shard_ids):
            return True
        if not live:
            return False
        count = min(count, len(self._shard_ids))
        if len(self._shard_ids) - len(live) < count:
            return True
        return all(
            any(owner in live for owner in self._distinct_owners_from(index, count))
            for index in range(len(self._points))
        )

    def partition(self, keys: Iterable[bytes]) -> dict[str, list[bytes]]:
        """Group keys by owning shard (every shard present, even when empty)."""
        groups: dict[str, list[bytes]] = {shard_id: [] for shard_id in self._shard_ids}
        for key in keys:
            groups[self.assign(key)].append(key)
        return groups

    def distribution(self, keys: Sequence[bytes]) -> Counter:
        """How many of ``keys`` land on each shard."""
        counts = Counter({shard_id: 0 for shard_id in self._shard_ids})
        counts.update(self.assign(key) for key in keys)
        return counts
