"""Deterministic consistent-hash ring over shard identifiers.

The cluster's placement function: every encrypted tuple is assigned to one
shard by hashing its *public* tuple id onto a ring of virtual nodes.  The
tuple id is a random nonce chosen at encryption time
(:class:`~repro.core.dph.EncryptedTuple`), so the coordinator's routing
decision is a function of values the provider already sees -- sharding adds
no new leakage beyond which provider stores which ciphertext, and even that
is a function of public randomness, not of any plaintext.

Properties the rest of :mod:`repro.cluster` relies on:

* **Deterministic** -- the ring is a pure function of the shard identifiers
  and the replica count; two coordinators configured with the same shard
  list route identically, with no shared state.
* **Balanced** -- each shard owns many virtual points
  (:data:`DEFAULT_REPLICAS` per shard), so 10k keys spread within a few
  percent of the fair share.
* **Stable** -- adding or removing one shard only reassigns the keys that
  move to/from that shard (roughly ``1/N`` of them); every other key keeps
  its shard, which is what makes :mod:`repro.cluster.rebalance` cheap.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Iterable, Sequence

#: Virtual nodes per shard.  256 keeps the maximum deviation from the fair
#: share around ~10% for clusters up to 8 shards (tests/cluster/test_ring.py
#: pins the <=15% bound at 10k keys).
DEFAULT_REPLICAS = 256


class RingError(Exception):
    """The ring cannot satisfy a placement request."""


def _hash_point(data: bytes) -> int:
    return int.from_bytes(hashlib.sha256(data).digest()[:16], "big")


class ConsistentHashRing:
    """A consistent-hash ring mapping byte keys to shard identifiers."""

    def __init__(
        self, shard_ids: Iterable[str] = (), *, replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise RingError("a ring needs at least one replica per shard")
        self._replicas = replicas
        self._shard_ids: list[str] = []
        # Parallel sorted arrays: bisect over _points, index into _owners.
        self._points: list[int] = []
        self._owners: list[str] = []
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    @property
    def shard_ids(self) -> tuple[str, ...]:
        """The shards on the ring, in insertion order."""
        return tuple(self._shard_ids)

    @property
    def replicas(self) -> int:
        """Virtual nodes per shard."""
        return self._replicas

    def __len__(self) -> int:
        return len(self._shard_ids)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shard_ids

    def add_shard(self, shard_id: str) -> None:
        """Insert one shard's virtual nodes."""
        if not shard_id:
            raise RingError("shard ids must be non-empty strings")
        if shard_id in self._shard_ids:
            raise RingError(f"shard {shard_id!r} is already on the ring")
        self._shard_ids.append(shard_id)
        for point in self._shard_points(shard_id):
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)

    def remove_shard(self, shard_id: str) -> None:
        """Remove one shard's virtual nodes."""
        if shard_id not in self._shard_ids:
            raise RingError(f"shard {shard_id!r} is not on the ring")
        self._shard_ids.remove(shard_id)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard_id
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def _shard_points(self, shard_id: str) -> list[int]:
        label = shard_id.encode("utf-8")
        return [
            _hash_point(b"ring-node\x00" + label + b"\x00" + str(i).encode("ascii"))
            for i in range(self._replicas)
        ]

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #

    def assign(self, key: bytes) -> str:
        """The shard owning ``key`` (the first virtual node at or after it)."""
        if not self._points:
            raise RingError("the ring has no shards")
        point = _hash_point(b"ring-key\x00" + key)
        index = bisect.bisect(self._points, point)
        if index == len(self._points):  # wrap around past the last node
            index = 0
        return self._owners[index]

    def partition(self, keys: Iterable[bytes]) -> dict[str, list[bytes]]:
        """Group keys by owning shard (every shard present, even when empty)."""
        groups: dict[str, list[bytes]] = {shard_id: [] for shard_id in self._shard_ids}
        for key in keys:
            groups[self.assign(key)].append(key)
        return groups

    def distribution(self, keys: Sequence[bytes]) -> Counter:
        """How many of ``keys`` land on each shard."""
        counts = Counter({shard_id: 0 for shard_id in self._shard_ids})
        counts.update(self.assign(key) for key in keys)
        return counts
