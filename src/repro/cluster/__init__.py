"""``repro.cluster`` -- sharded multi-provider outsourcing.

The paper outsources one encrypted relation to one untrusted provider;
this subsystem spreads the same ciphertexts across a *fleet* of providers
and queries them in parallel, which is what turns the reproduction into a
horizontally scalable service:

**Placement** (:mod:`repro.cluster.ring`)
    A deterministic consistent-hash ring keyed on the public random tuple
    id, so routing reveals nothing the providers do not already see and
    membership changes strand only ``~1/N`` of the tuples.  The ring also
    yields each key's deterministic *successor list* -- the R distinct
    shards holding its replicas.

**Execution** (:mod:`repro.cluster.executor`)
    Scatter-gather with per-shard timeouts and a pluggable
    partial-failure policy: ``fail_fast`` for correctness-critical paths,
    ``degraded`` for reads that should survive a dead shard.  Two
    engines, one outcome model: a thread pool (one blocking call per
    shard) and an event-loop scatter that drives every shard's round trip
    concurrently from a single coordinator thread over pipelined
    connections (``cluster://...?async=1``), cancelling stragglers
    mid-flight on timeout.

**Topology persistence** (:mod:`repro.cluster.manifest`)
    Fleet manifests: shard ids/addresses, replication factor and ring
    configuration as a JSON file (``repro cluster spawn --manifest``),
    restored by ``connect("cluster+file://fleet.json")`` without
    re-supplying topology.

**Routing** (:mod:`repro.cluster.router`)
    :class:`ShardRouter` -- the same duck-type as
    :class:`~repro.outsourcing.server.OutsourcedDatabaseServer`, so
    ``EncryptedDatabase.connect("cluster://h1:p1,h2:p2?replicas=2")`` (or
    ``EncryptedDatabase.open(shards=[...], replicas=2)``) works
    transparently: inserts go to all R replica shards (fail-fast), deletes
    fan out fleet-wide, queries scatter to all shards and the evaluation
    results merge client-side, deduplicated by tuple id.  A read that
    loses shards fails over to surviving replicas and stays *complete*
    whenever the ring coverage holds -- a dead shard stops degrading
    queries.

**Elasticity** (:mod:`repro.cluster.rebalance`)
    Insert-first, replica-aware tuple migration when shards are added or
    removed: every tuple converges onto exactly its R ring successors, a
    mid-migration crash duplicates rather than loses ciphertexts, and
    under-replicated tuples are re-copied from any surviving holder.

Security note: the coordinator runs client-side (trusted).  Each provider
in the fleet observes strictly less than the single-provider deployment --
its ``1/N`` of the ciphertexts plus every query's fan-out -- so the
paper's per-provider security analysis carries over unchanged.
"""

from repro.cluster.executor import (
    ClusterError,
    DEGRADED,
    FAIL_FAST,
    GatherResult,
    PARTIAL_FAILURE_POLICIES,
    ScatterGatherExecutor,
    ShardFailedError,
    ShardOutcome,
    ShardTimeoutError,
    resolve_outcomes,
    scatter_async,
)
from repro.cluster.manifest import (
    CLUSTER_FILE_URL_PREFIX,
    ClusterManifest,
    ManifestError,
    ShardEntry,
    parse_cluster_file_url,
)
from repro.cluster.rebalance import (
    RebalanceReport,
    misplaced_tuples,
    rebalance,
    surplus_copies,
)
from repro.cluster.ring import (
    ConsistentHashRing,
    DEFAULT_REPLICAS,
    DEFAULT_VIRTUAL_NODES,
    RingError,
)
from repro.cluster.router import (
    CLUSTER_URL_PREFIX,
    ClusterStats,
    ShardRouter,
    merge_evaluation_results,
    parse_cluster_options,
    parse_cluster_url,
)

__all__ = [
    "ClusterError",
    "DEGRADED",
    "FAIL_FAST",
    "GatherResult",
    "PARTIAL_FAILURE_POLICIES",
    "ScatterGatherExecutor",
    "ShardFailedError",
    "ShardOutcome",
    "ShardTimeoutError",
    "resolve_outcomes",
    "scatter_async",
    "CLUSTER_FILE_URL_PREFIX",
    "ClusterManifest",
    "ManifestError",
    "ShardEntry",
    "parse_cluster_file_url",
    "RebalanceReport",
    "misplaced_tuples",
    "rebalance",
    "surplus_copies",
    "ConsistentHashRing",
    "DEFAULT_REPLICAS",
    "DEFAULT_VIRTUAL_NODES",
    "RingError",
    "CLUSTER_URL_PREFIX",
    "ClusterStats",
    "ShardRouter",
    "merge_evaluation_results",
    "parse_cluster_options",
    "parse_cluster_url",
]
