"""Scatter-gather execution across a shard fleet.

:class:`ScatterGatherExecutor` fans one operation out to many shards on a
thread pool and gathers per-shard :class:`ShardOutcome`\\ s.  Threads (not a
process pool) are the right tool here: an in-process shard is GIL-bound
anyway, and a ``tcp://`` shard spends its time blocked on the socket while
the remote provider does the work -- which is exactly where the near-linear
scaling of the sharded deployment comes from.

Failure handling is a *policy*, not hard-coded:

* :data:`FAIL_FAST` -- any shard failure fails the whole operation
  (:class:`ShardFailedError` carries every outcome for diagnosis).  Always
  used for writes: a partially applied write is corruption.
* :data:`DEGRADED` -- a read that loses some shards still answers from the
  survivors; the caller is told which shards were missing so it can surface
  the result as partial.  At least one shard must answer.

A per-shard ``timeout`` bounds how long the gather waits for each shard:
every shard gets the *full* budget over its own wait window (it is not a
shared deadline burned from scatter start, so a slow-but-within-budget
shard is never misreported as timed out just because an earlier shard used
up the wall clock).  A shard that exceeds its budget is reported as failed
with :class:`ShardTimeoutError` (the worker thread is left to finish in
the background -- Python offers no safe preemption -- but its result is
discarded).  The worst-case wall clock of one gather is therefore
``len(calls) * timeout``, not ``timeout``.  One caveat survives: when
*every* worker is occupied by hung thunks (pool saturation across
concurrent gathers), a queued call can exhaust its budget before a worker
ever picks it up and is then reported as timed out without having run;
:class:`~repro.cluster.router.ShardRouter` sizes its pool at 4x the shard
count to keep that out of the single-gather path.

The **event-loop scatter** (:func:`scatter_async` /
:meth:`ScatterGatherExecutor.scatter_on_loop`) is the pipelined
alternative: when every shard sits behind an asyncio proxy
(:class:`~repro.net.aio.AsyncRemoteServerProxy`), one coordinator thread
drives *all* shard round trips concurrently as coroutines -- no thread per
shard, every shard's timeout ticking simultaneously, so the worst-case
wall clock of one gather is ``timeout``, not ``len(calls) * timeout``.  A
shard that exceeds its budget has its in-flight request *cancelled*
(:func:`asyncio.wait_for`), which orphans the correlation id on the
pipelined connection: the connection survives, the provider's late answer
is dropped.  Outcome semantics (per-shard :class:`ShardOutcome`, policy
resolution) are identical to the thread-pool path, so the router's
failover and dedup logic is transport-agnostic.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.obs import current_trace, use_trace
from repro.outsourcing.server import ServerError

#: Any shard failure fails the operation.
FAIL_FAST = "fail_fast"
#: Serve reads from the surviving shards and flag the result as partial.
DEGRADED = "degraded"

PARTIAL_FAILURE_POLICIES = (FAIL_FAST, DEGRADED)


class ClusterError(ServerError):
    """A cluster operation failed (subclasses the provider error, so the
    session facade's error translation applies unchanged)."""


class ShardTimeoutError(ClusterError):
    """One shard did not answer within the per-shard timeout."""


class ShardFailedError(ClusterError):
    """One or more shards failed a scatter; ``outcomes`` has the full picture."""

    def __init__(self, message: str, outcomes: Sequence["ShardOutcome"]) -> None:
        super().__init__(message)
        self.outcomes = tuple(outcomes)

    @property
    def failed_shard_ids(self) -> tuple[str, ...]:
        return tuple(o.shard_id for o in self.outcomes if not o.ok)


@dataclass
class ShardOutcome:
    """What one shard returned (or why it did not)."""

    shard_id: str
    value: Any = None
    error: Exception | None = None
    elapsed_s: float = 0.0
    #: Wall-clock instant the shard's thunk started (or the gather began
    #: waiting on it); what per-shard trace spans are anchored to.
    started_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class GatherResult:
    """A policy-resolved scatter: the surviving values, in scatter order."""

    values: tuple[Any, ...]
    #: Shards that failed but were tolerated by the DEGRADED policy.
    missing_shard_ids: tuple[str, ...] = ()
    outcomes: tuple[ShardOutcome, ...] = field(default=())

    @property
    def degraded(self) -> bool:
        return bool(self.missing_shard_ids)


class ScatterGatherExecutor:
    """A bounded thread pool that scatters callables across shards."""

    def __init__(self, max_workers: int = 8, timeout: float | None = None) -> None:
        if max_workers < 1:
            raise ValueError("the executor needs at least one worker")
        self._timeout = timeout
        self._max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-cluster"
        )

    @property
    def timeout(self) -> float | None:
        """Per-shard gather timeout in seconds (None waits forever)."""
        return self._timeout

    @property
    def max_workers(self) -> int:
        """Size of the scatter thread pool."""
        return self._max_workers

    def close(self) -> None:
        """Shut the pool down (outstanding work is still drained)."""
        self._pool.shutdown(wait=False)

    def scatter(
        self,
        calls: Sequence[tuple[str, Callable[[], Any]]],
        timeout: float | None = None,
    ) -> list[ShardOutcome]:
        """Run every ``(shard_id, thunk)`` concurrently; never raises itself.

        Each shard is granted the full ``timeout`` over its own wait window:
        the deadline restarts when the gather turns to that shard's future,
        so a shard queued behind a slow sibling keeps its whole budget
        instead of inheriting a deadline another shard already burned.
        (If the pool stays saturated for the entire window the queued thunk
        may still never run -- see the module docstring.)
        """
        if timeout is None:
            timeout = self._timeout
        # Capture the caller's ambient trace here: the thunks run on pool
        # threads where the contextvar is unset, so _timed re-binds it.
        trace = current_trace()
        futures = [
            (shard_id, self._pool.submit(self._timed, trace, thunk))
            for shard_id, thunk in calls
        ]
        outcomes = []
        for shard_id, future in futures:
            wait_started = time.monotonic()
            wait_started_wall = time.time()
            try:
                value, elapsed, started_wall = future.result(timeout=timeout)
                outcomes.append(
                    ShardOutcome(
                        shard_id=shard_id,
                        value=value,
                        elapsed_s=elapsed,
                        started_s=started_wall,
                    )
                )
            except FutureTimeoutError:
                outcomes.append(
                    ShardOutcome(
                        shard_id=shard_id,
                        error=ShardTimeoutError(
                            f"shard {shard_id!r} did not answer within "
                            f"its {timeout}s budget"
                        ),
                        elapsed_s=time.monotonic() - wait_started,
                        started_s=wait_started_wall,
                    )
                )
            except Exception as exc:  # noqa: BLE001 - per-shard failures are data
                outcomes.append(
                    ShardOutcome(
                        shard_id=shard_id,
                        error=exc,
                        elapsed_s=time.monotonic() - wait_started,
                        started_s=wait_started_wall,
                    )
                )
        return outcomes

    def scatter_on_loop(
        self,
        loop_thread,
        calls: Sequence[tuple[str, Callable[[], Any]]],
        timeout: float | None = None,
    ) -> list[ShardOutcome]:
        """Scatter coroutine factories on an event loop; never raises itself.

        ``calls`` pairs each shard id with a *coroutine factory* (called on
        the loop); ``loop_thread`` is an
        :class:`~repro.net.aio.EventLoopThread` (anything with its ``run``
        contract).  All shards' round trips are in flight simultaneously,
        each under its own full ``timeout``; a shard that exceeds it has
        its request cancelled mid-flight and is reported with
        :class:`ShardTimeoutError`, exactly like the thread-pool path.
        """
        if timeout is None:
            timeout = self._timeout
        return loop_thread.run(scatter_async(calls, timeout))

    def gather(
        self,
        operation: str,
        calls: Sequence[tuple[str, Callable[[], Any]]],
        *,
        policy: str = FAIL_FAST,
        timeout: float | None = None,
    ) -> GatherResult:
        """Scatter, then resolve the outcomes under a partial-failure policy."""
        return resolve_outcomes(
            operation, self.scatter(calls, timeout=timeout), policy=policy
        )

    @staticmethod
    def _timed(trace, thunk: Callable[[], Any]) -> tuple[Any, float, float]:
        started_wall = time.time()
        started = time.monotonic()
        with use_trace(trace):
            value = thunk()
        return value, time.monotonic() - started, started_wall


async def scatter_async(
    calls: Sequence[tuple[str, Callable[[], Any]]],
    timeout: float | None = None,
) -> list[ShardOutcome]:
    """Run every ``(shard_id, coroutine factory)`` concurrently on this loop.

    The event-loop twin of :meth:`ScatterGatherExecutor.scatter`: one task
    per shard, all awaited together, each granted the full ``timeout``
    concurrently.  Timeouts *cancel* the shard's in-flight coroutine
    (pipelined connections orphan the correlation id and live on); other
    per-shard exceptions become failed outcomes.  Never raises itself.
    """

    async def run_one(shard_id: str, factory: Callable[[], Any]) -> ShardOutcome:
        started_wall = time.time()
        started = time.monotonic()
        try:
            value = await asyncio.wait_for(factory(), timeout)
        except asyncio.TimeoutError:
            return ShardOutcome(
                shard_id=shard_id,
                error=ShardTimeoutError(
                    f"shard {shard_id!r} did not answer within "
                    f"its {timeout}s budget"
                ),
                elapsed_s=time.monotonic() - started,
                started_s=started_wall,
            )
        except Exception as exc:  # noqa: BLE001 - per-shard failures are data
            return ShardOutcome(
                shard_id=shard_id,
                error=exc,
                elapsed_s=time.monotonic() - started,
                started_s=started_wall,
            )
        return ShardOutcome(
            shard_id=shard_id,
            value=value,
            elapsed_s=time.monotonic() - started,
            started_s=started_wall,
        )

    return list(
        await asyncio.gather(
            *(run_one(shard_id, factory) for shard_id, factory in calls)
        )
    )


def resolve_outcomes(
    operation: str, outcomes: Sequence[ShardOutcome], *, policy: str = FAIL_FAST
) -> GatherResult:
    """Apply a partial-failure policy to raw scatter outcomes.

    Raises :class:`ShardFailedError` when the policy does not tolerate the
    observed failures; otherwise returns the surviving values (in scatter
    order) plus the ids of any shards the DEGRADED policy papered over.
    """
    if policy not in PARTIAL_FAILURE_POLICIES:
        raise ClusterError(
            f"unknown partial-failure policy {policy!r} "
            f"(choose from {PARTIAL_FAILURE_POLICIES})"
        )
    failures = [o for o in outcomes if not o.ok]
    if not failures:
        return GatherResult(
            values=tuple(o.value for o in outcomes), outcomes=tuple(outcomes)
        )
    detail = "; ".join(
        f"{o.shard_id}: {o.error}" for o in failures[:3]
    ) + ("; ..." if len(failures) > 3 else "")
    if policy == FAIL_FAST or len(failures) == len(outcomes):
        raise ShardFailedError(
            f"{operation} failed on {len(failures)}/{len(outcomes)} shard(s): {detail}",
            outcomes,
        )
    return GatherResult(
        values=tuple(o.value for o in outcomes if o.ok),
        missing_shard_ids=tuple(o.shard_id for o in failures),
        outcomes=tuple(outcomes),
    )
