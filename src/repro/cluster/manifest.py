"""Fleet manifests: the topology of a sharded deployment as a file.

A ``cluster://`` URL names the shards but loses everything else a session
needs to come back to a fleet: the stable shard ids keying the placement
ring, the replication factor, the ring's virtual-node count.  Restarting a
coordinator against a persisted fleet therefore meant re-supplying all of
it by hand -- get the shard order wrong and every tuple looks misplaced
until a rebalance.

A :class:`ClusterManifest` captures that topology as a small JSON document:

.. code-block:: json

    {
      "version": 1,
      "replicas": 2,
      "virtual_nodes": 256,
      "async": false,
      "shards": [
        {"shard_id": "shard-0", "url": "tcp://127.0.0.1:7707"},
        {"shard_id": "shard-1", "url": "tcp://127.0.0.1:7708"}
      ]
    }

``repro cluster spawn --manifest fleet.json`` writes one next to the fleet
it starts, and ``EncryptedDatabase.connect("cluster+file://fleet.json")``
(or ``repro cluster status --manifest fleet.json``) restores a session
from it without re-supplying topology.  Shard ids in the manifest are the
ring's key space: they survive address changes (repoint a shard's URL and
its data placement is untouched) and coordinator restarts.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass

from repro.cluster.executor import ClusterError
from repro.cluster.ring import DEFAULT_VIRTUAL_NODES

#: URL scheme resolving a fleet through a manifest file on disk.
CLUSTER_FILE_URL_PREFIX = "cluster+file://"

#: Manifest document version this module reads and writes.
MANIFEST_VERSION = 1


class ManifestError(ClusterError):
    """A fleet manifest could not be read, parsed or validated."""


@dataclass(frozen=True)
class ShardEntry:
    """One shard of the fleet: its stable ring id and current address."""

    shard_id: str
    url: str


@dataclass(frozen=True)
class ClusterManifest:
    """The persisted topology of one sharded deployment."""

    shards: tuple[ShardEntry, ...]
    replicas: int = 1
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    #: Whether sessions should default to the pipelined async transport.
    async_transport: bool = False

    def __post_init__(self) -> None:
        from repro.net.client import RemoteError, parse_tcp_url

        if not self.shards:
            raise ManifestError("a fleet manifest needs at least one shard")
        if self.replicas < 1:
            raise ManifestError("the replication factor must be at least 1")
        if self.replicas > len(self.shards):
            raise ManifestError(
                f"replication factor {self.replicas} needs at least that many "
                f"shards, got {len(self.shards)}"
            )
        if self.virtual_nodes < 1:
            raise ManifestError("virtual_nodes must be at least 1")
        seen_ids: set[str] = set()
        seen_urls: set[str] = set()
        for entry in self.shards:
            if not entry.shard_id:
                raise ManifestError("shard ids must be non-empty")
            if entry.shard_id in seen_ids:
                raise ManifestError(f"duplicate shard id {entry.shard_id!r}")
            if entry.url in seen_urls:
                raise ManifestError(f"duplicate shard URL {entry.url!r}")
            seen_ids.add(entry.shard_id)
            seen_urls.add(entry.url)
            try:
                parse_tcp_url(entry.url)
            except RemoteError as exc:
                raise ManifestError(
                    f"shard {entry.shard_id!r}: {exc}"
                ) from exc

    @property
    def shard_ids(self) -> tuple[str, ...]:
        """The stable ring identifiers, in manifest order."""
        return tuple(entry.shard_id for entry in self.shards)

    @property
    def shard_urls(self) -> tuple[str, ...]:
        """The current ``tcp://`` addresses, in manifest order."""
        return tuple(entry.url for entry in self.shards)

    def cluster_url(self) -> str:
        """The equivalent ``cluster://`` URL (topology options included)."""
        hosts = ",".join(url[len("tcp://"):] for url in self.shard_urls)
        options = []
        if self.replicas != 1:
            options.append(f"replicas={self.replicas}")
        if self.async_transport:
            options.append("async=1")
        query = ("?" + "&".join(options)) if options else ""
        return f"cluster://{hosts}{query}"

    def to_json(self) -> dict:
        """The manifest as its JSON document object."""
        return {
            "version": MANIFEST_VERSION,
            "replicas": self.replicas,
            "virtual_nodes": self.virtual_nodes,
            "async": self.async_transport,
            "shards": [
                {"shard_id": entry.shard_id, "url": entry.url}
                for entry in self.shards
            ],
        }

    @classmethod
    def from_json(cls, document: object) -> "ClusterManifest":
        """Build (and validate) a manifest from its JSON document object."""
        if not isinstance(document, dict):
            raise ManifestError("a fleet manifest is a JSON object")
        version = document.get("version")
        if version != MANIFEST_VERSION:
            raise ManifestError(
                f"unsupported manifest version {version!r} "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        raw_shards = document.get("shards")
        if not isinstance(raw_shards, list):
            raise ManifestError("the manifest's 'shards' field must be a list")
        shards = []
        for index, raw in enumerate(raw_shards):
            if not isinstance(raw, dict):
                raise ManifestError(f"shard entry #{index} is not an object")
            try:
                shards.append(
                    ShardEntry(shard_id=str(raw["shard_id"]), url=str(raw["url"]))
                )
            except KeyError as exc:
                raise ManifestError(
                    f"shard entry #{index} is missing its {exc.args[0]!r} field"
                ) from exc
        try:
            replicas = int(document.get("replicas", 1))
            virtual_nodes = int(document.get("virtual_nodes", DEFAULT_VIRTUAL_NODES))
            async_transport = bool(document.get("async", False))
        except (TypeError, ValueError) as exc:
            raise ManifestError(f"malformed manifest field: {exc}") from exc
        return cls(
            shards=tuple(shards),
            replicas=replicas,
            virtual_nodes=virtual_nodes,
            async_transport=async_transport,
        )

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the manifest atomically (tmp + rename); returns the path."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.to_json(), indent=2) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, target)
        except OSError as exc:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise ManifestError(f"cannot write manifest {target}: {exc}") from exc
        return target

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "ClusterManifest":
        """Read and validate a manifest file."""
        source = pathlib.Path(path)
        try:
            text = source.read_text(encoding="utf-8")
        except OSError as exc:
            raise ManifestError(f"cannot read manifest {source}: {exc}") from exc
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise ManifestError(f"manifest {source} is not valid JSON: {exc}") from exc
        return cls.from_json(document)


def parse_cluster_file_url(url: str) -> pathlib.Path:
    """Extract the manifest path from a ``cluster+file://PATH`` URL.

    Query strings are rejected rather than folded into the file name:
    the manifest itself carries the topology options, and a stray
    ``?async=1`` silently becoming part of the path would surface as a
    baffling "no such file" instead of the real mistake.
    """
    if not url.startswith(CLUSTER_FILE_URL_PREFIX):
        raise ManifestError(
            f"unsupported manifest URL {url!r} "
            f"(want {CLUSTER_FILE_URL_PREFIX}path/to/fleet.json)"
        )
    path = url[len(CLUSTER_FILE_URL_PREFIX):]
    if "?" in path or "#" in path:
        raise ManifestError(
            f"manifest URL {url!r} carries a query or fragment; "
            "cluster+file:// URLs take no options (the manifest itself "
            "carries the topology)"
        )
    if not path:
        raise ManifestError(f"manifest URL {url!r} names no file")
    return pathlib.Path(path)
