"""The shard router: one logical provider over a fleet of shards.

:class:`ShardRouter` implements the same duck-type
:class:`~repro.api.EncryptedDatabase` and
:class:`~repro.outsourcing.client.OutsourcingClient` already consume --
byte-level :meth:`~ShardRouter.handle_message` plus the management calls --
so a session drives N providers exactly as it drives one.  Each backend is
either an in-process :class:`~repro.outsourcing.server.OutsourcedDatabaseServer`
(or anything with its duck-type) or a ``tcp://host:port`` URL (opened as an
owned :class:`~repro.net.client.RemoteServerProxy`), mixed freely.

Routing is per *encrypted tuple*: the consistent-hash ring of
:mod:`repro.cluster.ring` keys on the public random tuple id, so placement
is a function of values every provider sees anyway.  Operation shapes:

===================  ====================================================
``INSERT_TUPLE``     one shard (the ring owner of the tuple id)
``DELETE_TUPLES``    scatter the public ids to every shard (providers
                     ignore unknown ids, so this stays correct while
                     tuples are mid-migration or a rebalance is deferred)
``STORE_RELATION``   partitioned across all shards (every shard stores the
                     relation, possibly empty, so queries can fan out)
``QUERY``            scatter to all shards, merge the evaluation results
``BATCH_QUERY``      scatter the whole batch, merge element-wise
===================  ====================================================

Writes always run fail-fast (a partially applied write is corruption);
reads honor the router's partial-failure ``policy``
(:data:`~repro.cluster.executor.FAIL_FAST` or
:data:`~repro.cluster.executor.DEGRADED`).

The coordinator (this class) runs client-side and is trusted; the providers
individually observe strictly less than the single-provider deployment --
each sees only its ``1/N`` of the ciphertexts and every query's fan-out,
which is the same access pattern the paper already concedes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.dph import (
    DphError,
    EncryptedQuery,
    EncryptedRelation,
    EncryptedTuple,
    EvaluationResult,
    ServerEvaluator,
)
from repro.cluster.executor import (
    ClusterError,
    FAIL_FAST,
    GatherResult,
    PARTIAL_FAILURE_POLICIES,
    ScatterGatherExecutor,
)
from repro.cluster.ring import ConsistentHashRing, DEFAULT_REPLICAS
from repro.outsourcing import protocol
from repro.outsourcing.protocol import (
    Message,
    MessageKind,
    MessageV2,
    ProtocolError,
    SUPPORTED_VERSIONS,
)
from repro.outsourcing.server import ServerError
from repro.outsourcing.storage import StorageError

#: URL scheme of a sharded deployment: ``cluster://host:port,host:port,...``
CLUSTER_URL_PREFIX = "cluster://"


def parse_cluster_url(url: str) -> tuple[str, ...]:
    """Split ``cluster://h1:p1,h2:p2,...`` into per-shard ``tcp://`` URLs."""
    from repro.net.client import RemoteError, parse_tcp_url

    if not url.startswith(CLUSTER_URL_PREFIX):
        raise ClusterError(
            f"unsupported cluster URL {url!r} (want {CLUSTER_URL_PREFIX}host:port,...)"
        )
    parts = [part.strip() for part in url[len(CLUSTER_URL_PREFIX):].split(",")]
    parts = [part for part in parts if part]
    if not parts:
        raise ClusterError(f"cluster URL {url!r} names no shards")
    urls = []
    for part in parts:
        tcp_url = part if part.startswith("tcp://") else f"tcp://{part}"
        try:
            parse_tcp_url(tcp_url)
        except RemoteError as exc:
            raise ClusterError(str(exc)) from exc
        if tcp_url in urls:
            raise ClusterError(f"cluster URL {url!r} lists shard {part!r} twice")
        urls.append(tcp_url)
    return tuple(urls)


def merge_evaluation_results(
    results: Sequence[EvaluationResult],
) -> EvaluationResult:
    """Concatenate per-shard matches; sum the server-side work counters."""
    if not results:
        raise ClusterError("cannot merge zero evaluation results")
    tuples: list[EncryptedTuple] = []
    examined = 0
    token_evaluations = 0
    for result in results:
        tuples.extend(result.matching.encrypted_tuples)
        examined += result.examined
        token_evaluations += result.token_evaluations
    return EvaluationResult(
        matching=EncryptedRelation(
            schema=results[0].matching.schema, encrypted_tuples=tuple(tuples)
        ),
        examined=examined,
        token_evaluations=token_evaluations,
    )


@dataclass
class ClusterStats:
    """Counters of the router's scatter-gather activity."""

    scatter_reads: int = 0
    degraded_reads: int = 0
    routed_inserts: int = 0
    #: Shards missing from the most recent degraded read.
    last_missing_shard_ids: tuple[str, ...] = ()

    def as_dict(self) -> dict:
        return {
            "scatter_reads": self.scatter_reads,
            "degraded_reads": self.degraded_reads,
            "routed_inserts": self.routed_inserts,
            "last_missing_shard_ids": list(self.last_missing_shard_ids),
        }


@dataclass
class _Shard:
    """One backend: the duck-typed server plus ownership bookkeeping."""

    shard_id: str
    server: Any
    #: True when the router opened this backend itself (a tcp:// proxy) and
    #: is therefore responsible for closing it.
    owned: bool = False


class ShardRouter:
    """One logical :class:`OutsourcedDatabaseServer` spread over many shards."""

    def __init__(
        self,
        shards: Sequence[Any],
        *,
        shard_ids: Sequence[str] | None = None,
        replicas: int = DEFAULT_REPLICAS,
        policy: str = FAIL_FAST,
        shard_timeout: float | None = None,
        pool_size: int = 4,
        timeout: float | None = 30.0,
    ) -> None:
        """Build a router over backends (server objects and/or tcp:// URLs).

        Parameters
        ----------
        shards:
            The backends.  A string is treated as a ``tcp://host:port`` URL
            and opened as an owned proxy; anything else must satisfy the
            :class:`~repro.outsourcing.server.OutsourcedDatabaseServer`
            duck-type.
        shard_ids:
            Ring identifiers, one per backend.  Defaults to the URL for URL
            shards and ``shard-<index>`` for object shards.  Identifiers are
            the ring's key space: reuse the same ids (and order, for the
            positional defaults) across coordinator restarts, or tuples will
            appear misplaced until a rebalance.
        replicas:
            Virtual nodes per shard on the ring.
        policy:
            Partial-failure policy for scatter reads (``fail_fast`` or
            ``degraded``); writes are always fail-fast.
        shard_timeout:
            Per-shard gather timeout in seconds (None waits forever).
        pool_size / timeout:
            Connection-pool settings for URL shards.
        """
        if not shards:
            raise ClusterError("a cluster needs at least one shard")
        if policy not in PARTIAL_FAILURE_POLICIES:
            raise ClusterError(
                f"unknown partial-failure policy {policy!r} "
                f"(choose from {PARTIAL_FAILURE_POLICIES})"
            )
        if shard_ids is not None and len(shard_ids) != len(shards):
            raise ClusterError(
                f"{len(shards)} shard(s) but {len(shard_ids)} shard id(s)"
            )
        self._policy = policy
        self._pool_size = pool_size
        self._timeout = timeout
        self._shards: dict[str, _Shard] = {}
        self._ring = ConsistentHashRing(replicas=replicas)
        self._evaluators: dict[str, ServerEvaluator] = {}
        self._schemas: dict[str, Any] = {}
        self._stats = ClusterStats()
        # Room for several concurrent scatters (threads are created lazily,
        # so the headroom is free when idle).  Note the per-shard timeout is
        # measured from the scatter call, so under heavier concurrency than
        # this headroom it also covers time spent queued for a worker.
        self._executor = ScatterGatherExecutor(
            max_workers=self._pool_headroom(len(shards)), timeout=shard_timeout
        )
        try:
            for index, backend in enumerate(shards):
                explicit = shard_ids[index] if shard_ids is not None else None
                shard = self._open_backend(backend, explicit, index)
                if shard.shard_id in self._shards:
                    if shard.owned:
                        shard.server.close()
                    raise ClusterError(f"duplicate shard id {shard.shard_id!r}")
                self._shards[shard.shard_id] = shard
                self._ring.add_shard(shard.shard_id)
        except BaseException:
            self.close()
            raise

    @staticmethod
    def _pool_headroom(shard_count: int) -> int:
        return min(64, max(8, 4 * shard_count))

    @classmethod
    def connect(
        cls,
        url: str,
        *,
        replicas: int = DEFAULT_REPLICAS,
        policy: str = FAIL_FAST,
        shard_timeout: float | None = None,
        pool_size: int = 4,
        timeout: float | None = 30.0,
    ) -> "ShardRouter":
        """Open a router from a ``cluster://host:port,host:port`` URL."""
        return cls(
            parse_cluster_url(url),
            replicas=replicas,
            policy=policy,
            shard_timeout=shard_timeout,
            pool_size=pool_size,
            timeout=timeout,
        )

    def _open_backend(
        self, backend: Any, shard_id: str | None, index: int
    ) -> _Shard:
        if isinstance(backend, str):
            from repro.net.client import RemoteServerProxy

            proxy = RemoteServerProxy.connect(
                backend, pool_size=self._pool_size, timeout=self._timeout
            )
            return _Shard(
                shard_id=shard_id if shard_id is not None else backend,
                server=proxy,
                owned=True,
            )
        return _Shard(
            shard_id=shard_id if shard_id is not None else self._free_shard_id(index),
            server=backend,
        )

    def _free_shard_id(self, index: int) -> str:
        """First unused positional id (an earlier remove may have freed one)."""
        while f"shard-{index}" in self._shards:
            index += 1
        return f"shard-{index}"

    # ------------------------------------------------------------------ #
    # Cluster introspection
    # ------------------------------------------------------------------ #

    @property
    def shard_ids(self) -> tuple[str, ...]:
        """Ring identifiers of the shards, in insertion order."""
        return tuple(self._shards)

    @property
    def ring(self) -> ConsistentHashRing:
        """The placement ring (shared, do not mutate directly)."""
        return self._ring

    @property
    def policy(self) -> str:
        """Partial-failure policy applied to scatter reads."""
        return self._policy

    @property
    def stats(self) -> ClusterStats:
        """Scatter/routing counters."""
        return self._stats

    def shard(self, shard_id: str) -> Any:
        """The backend registered under one ring identifier."""
        try:
            return self._shards[shard_id].server
        except KeyError as exc:
            raise ClusterError(f"no shard named {shard_id!r}") from exc

    def shard_for(self, tuple_id: bytes) -> str:
        """Which shard the ring assigns a tuple id to."""
        return self._ring.assign(tuple_id)

    def per_shard_tuple_counts(self, name: str) -> dict[str, int]:
        """Ciphertext count of one relation on every shard."""
        gathered = self._gather(
            f"tuple-count({name!r})",
            [(s.shard_id, (lambda sv: lambda: sv.tuple_count(name))(s.server))
             for s in self._shards.values()],
            policy=FAIL_FAST,
        )
        return dict(zip(self.shard_ids, gathered.values))

    def cluster_status(self) -> dict[str, dict]:
        """Best-effort per-shard health/stats snapshot (never raises)."""
        status: dict[str, dict] = {}
        for shard in self._shards.values():
            try:
                names = tuple(shard.server.relation_names)
                entry: dict[str, Any] = {
                    "ok": True,
                    "relations": {n: shard.server.tuple_count(n) for n in names},
                }
                remote_stats = getattr(shard.server, "server_stats", None)
                if remote_stats is not None:
                    entry["stats"] = remote_stats()
                else:
                    entry["audit"] = shard.server.audit_log.summary()
            except Exception as exc:  # noqa: BLE001 - a status probe never raises
                entry = {"ok": False, "error": str(exc)}
            status[shard.shard_id] = entry
        return status

    def close(self) -> None:
        """Close owned backends and the scatter pool."""
        for shard in self._shards.values():
            if shard.owned:
                shard.server.close()
        self._executor.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The OutsourcedDatabaseServer duck-type: session management
    # ------------------------------------------------------------------ #

    @property
    def supported_protocol_versions(self) -> tuple[int, ...]:
        """Versions every shard speaks (the fleet negotiates as one)."""
        common = [
            version
            for version in SUPPORTED_VERSIONS
            if all(
                version in shard.server.supported_protocol_versions
                for shard in self._shards.values()
            )
        ]
        return tuple(common)

    def register_evaluator(self, name: str, evaluator: ServerEvaluator) -> None:
        """Deploy the keyless evaluator on every shard."""
        self._gather(
            f"register-evaluator({name!r})",
            self._all_shards(lambda server: server.register_evaluator(name, evaluator)),
            policy=FAIL_FAST,
        )
        self._evaluators[name] = evaluator

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Union of the shards' relations, first-seen order preserved."""
        gathered = self._gather(
            "relation-names",
            self._all_shards(lambda server: tuple(server.relation_names)),
            policy=FAIL_FAST,
        )
        names: list[str] = []
        for shard_names in gathered.values:
            for name in shard_names:
                if name not in names:
                    names.append(name)
        return tuple(names)

    def stored_relation(self, name: str) -> EncryptedRelation:
        """The full ciphertext relation, reassembled from every shard."""
        gathered = self._gather(
            f"stored-relation({name!r})",
            self._all_shards(lambda server: server.stored_relation(name)),
            policy=FAIL_FAST,  # reassembling data must be complete
        )
        tuples: list[EncryptedTuple] = []
        for piece in gathered.values:
            tuples.extend(piece.encrypted_tuples)
        return EncryptedRelation(
            schema=gathered.values[0].schema, encrypted_tuples=tuple(tuples)
        )

    def tuple_count(self, name: str) -> int:
        """Total ciphertext count across the fleet."""
        return sum(self.per_shard_tuple_counts(name).values())

    def drop_relation(self, name: str) -> None:
        """Drop the relation on every shard (fail-fast: no half-dropped state)."""
        self._gather(
            f"drop-relation({name!r})",
            self._all_shards(lambda server: server.drop_relation(name)),
            policy=FAIL_FAST,
        )
        self._evaluators.pop(name, None)
        self._schemas.pop(name, None)

    # ------------------------------------------------------------------ #
    # The OutsourcedDatabaseServer duck-type: wire level
    # ------------------------------------------------------------------ #

    def handle_message(self, raw: bytes) -> bytes:
        """Route one protocol envelope across the fleet.

        Mirrors the single-provider contract: failures inside a well-formed
        request come back as ``ERROR`` envelopes, not exceptions.
        """
        request = protocol.parse_message(raw)
        try:
            return self._route_envelope(request, raw)
        except (ServerError, StorageError, ProtocolError, DphError, ValueError) as exc:
            return self._respond(
                request, MessageKind.ERROR, str(exc).encode("utf-8")
            ).to_bytes()

    def _route_envelope(self, request: Message | MessageV2, raw: bytes) -> bytes:
        kind = request.kind
        if kind is MessageKind.INSERT_TUPLE:
            encrypted_tuple, consumed = protocol.decode_encrypted_tuple(request.body)
            if consumed != len(request.body):
                raise ProtocolError("trailing bytes after encrypted tuple")
            shard_id = self._ring.assign(encrypted_tuple.tuple_id)
            self._stats.routed_inserts += 1
            try:
                return self.shard(shard_id).handle_message(raw)
            except (ServerError, StorageError, ProtocolError, DphError, ValueError):
                raise
            except Exception as exc:  # a dying backend must not escape the envelope contract
                raise ClusterError(f"shard {shard_id!r} failed: {exc}") from exc
        if kind is MessageKind.STORE_RELATION:
            encrypted_relation = protocol.decode_encrypted_relation(request.body)
            self._scatter_store(request, encrypted_relation)
            return self._respond(
                request, MessageKind.ACK, protocol.encode_count(len(encrypted_relation))
            ).to_bytes()
        if kind is MessageKind.DELETE_TUPLES:
            deleted = self._scatter_delete(
                request, protocol.decode_tuple_ids(request.body)
            )
            return self._respond(
                request, MessageKind.ACK, protocol.encode_count(deleted)
            ).to_bytes()
        if kind is MessageKind.QUERY:
            merged = self._scatter_query(request, raw)
            if request.version == protocol.PROTOCOL_V1:
                body = protocol.encode_encrypted_relation(merged.matching)
            else:
                body = protocol.encode_evaluation_result(merged)
            return self._respond(request, MessageKind.QUERY_RESULT, body).to_bytes()
        if kind is MessageKind.BATCH_QUERY:
            merged_batch = self._scatter_batch(request, raw)
            return self._respond(
                request,
                MessageKind.BATCH_RESULT,
                protocol.encode_result_batch(merged_batch),
            ).to_bytes()
        raise ClusterError(f"cannot route message kind {kind.value!r}")

    def _scatter_store(
        self, request: Message | MessageV2, encrypted_relation: EncryptedRelation
    ) -> None:
        self._schemas[request.relation_name] = encrypted_relation.schema
        groups = self._partition_tuples(encrypted_relation)
        calls = []
        for shard_id, tuples in groups.items():
            shard_relation = EncryptedRelation(
                schema=encrypted_relation.schema, encrypted_tuples=tuple(tuples)
            )
            envelope = self._respond(
                request,
                MessageKind.STORE_RELATION,
                protocol.encode_encrypted_relation(shard_relation),
            ).to_bytes()
            calls.append(self._envelope_call(shard_id, envelope, MessageKind.ACK))
        self._gather(
            f"store-relation({request.relation_name!r})", calls, policy=FAIL_FAST
        )

    def _scatter_delete(
        self, request: Message | MessageV2, tuple_ids: Sequence[bytes]
    ) -> int:
        # Every shard gets the full id list: ring ownership is a *placement*
        # policy, not an invariant -- a deferred rebalance or a crash mid-
        # migration can leave a tuple (or its transient duplicate) off its
        # owner, and providers ignore ids they do not hold.
        if not tuple_ids:
            return 0
        envelope = self._respond(
            request, MessageKind.DELETE_TUPLES, protocol.encode_tuple_ids(tuple_ids)
        ).to_bytes()
        calls = [
            self._envelope_call(shard_id, envelope, MessageKind.ACK)
            for shard_id in self._shards
        ]
        gathered = self._gather(
            f"delete-tuples({request.relation_name!r})", calls, policy=FAIL_FAST
        )
        return sum(protocol.decode_count(response.body) for response in gathered.values)

    def _scatter_query(
        self, request: Message | MessageV2, raw: bytes
    ) -> EvaluationResult:
        calls = [
            self._envelope_call(shard_id, raw, MessageKind.QUERY_RESULT)
            for shard_id in self._shards
        ]
        gathered = self._gather(
            f"query({request.relation_name!r})", calls, policy=self._policy, read=True
        )
        results = [self._decode_result(request, response) for response in gathered.values]
        return merge_evaluation_results(results)

    def _scatter_batch(
        self, request: Message | MessageV2, raw: bytes
    ) -> list[EvaluationResult]:
        calls = [
            self._envelope_call(shard_id, raw, MessageKind.BATCH_RESULT)
            for shard_id in self._shards
        ]
        gathered = self._gather(
            f"batch-query({request.relation_name!r})",
            calls,
            policy=self._policy,
            read=True,
        )
        per_shard = [
            protocol.decode_result_batch(response.body) for response in gathered.values
        ]
        lengths = {len(results) for results in per_shard}
        if len(lengths) != 1:
            raise ClusterError(
                f"shards answered differing batch sizes: {sorted(lengths)}"
            )
        return [
            merge_evaluation_results([results[i] for results in per_shard])
            for i in range(lengths.pop())
        ]

    @staticmethod
    def _decode_result(
        request: Message | MessageV2, response: Message | MessageV2
    ) -> EvaluationResult:
        if request.version == protocol.PROTOCOL_V1:
            return EvaluationResult(
                matching=protocol.decode_encrypted_relation(response.body)
            )
        result, consumed = protocol.decode_evaluation_result(response.body)
        if consumed != len(response.body):
            raise ClusterError("trailing bytes after evaluation result")
        return result

    def _envelope_call(
        self, shard_id: str, envelope: bytes, expect: MessageKind
    ) -> tuple[str, Callable[[], Message | MessageV2]]:
        server = self.shard(shard_id)

        def call() -> Message | MessageV2:
            response = protocol.parse_message(server.handle_message(envelope))
            if response.kind is MessageKind.ERROR:
                raise ClusterError(response.body.decode("utf-8", "replace"))
            if response.kind is not expect:
                raise ClusterError(
                    f"shard {shard_id!r} answered {response.kind.value!r}, "
                    f"expected {expect.value!r}"
                )
            return response

        return shard_id, call

    # ------------------------------------------------------------------ #
    # Object-level convenience API (what OutsourcingClient uses)
    # ------------------------------------------------------------------ #

    def store_relation(
        self,
        name: str,
        encrypted_relation: EncryptedRelation,
        evaluator: ServerEvaluator,
    ) -> None:
        """Deploy the evaluator everywhere, then store each shard's partition."""
        self.register_evaluator(name, evaluator)
        self._schemas[name] = encrypted_relation.schema
        groups = self._partition_tuples(encrypted_relation)
        self._gather(
            f"store-relation({name!r})",
            [
                (
                    shard_id,
                    (
                        lambda sv, part: lambda: sv.store_relation(
                            name,
                            EncryptedRelation(
                                schema=encrypted_relation.schema,
                                encrypted_tuples=tuple(part),
                            ),
                            evaluator,
                        )
                    )(self.shard(shard_id), tuples),
                )
                for shard_id, tuples in groups.items()
            ],
            policy=FAIL_FAST,
        )

    def insert_tuple(self, name: str, encrypted_tuple: EncryptedTuple) -> None:
        """Append one ciphertext on its ring-assigned shard."""
        shard_id = self._ring.assign(encrypted_tuple.tuple_id)
        self._stats.routed_inserts += 1
        self.shard(shard_id).insert_tuple(name, encrypted_tuple)

    def delete_tuples(self, name: str, tuple_ids: Sequence[bytes]) -> int:
        """Delete ids on every shard; returns the fleet-wide count.

        The full id list goes to the whole fleet (providers ignore unknown
        ids), so deletes stay correct while tuples sit off their ring owner
        -- a deferred rebalance, or insert-first migration duplicates.
        """
        if not tuple_ids:
            return 0
        ids = list(tuple_ids)
        gathered = self._gather(
            f"delete-tuples({name!r})",
            self._all_shards(lambda server: server.delete_tuples(name, ids)),
            policy=FAIL_FAST,
        )
        return sum(gathered.values)

    def execute_query(
        self, name: str, encrypted_query: EncryptedQuery
    ) -> EvaluationResult:
        """Scatter one encrypted query and merge the per-shard results."""
        gathered = self._gather(
            f"query({name!r})",
            self._all_shards(lambda server: server.execute_query(name, encrypted_query)),
            policy=self._policy,
            read=True,
        )
        return merge_evaluation_results(list(gathered.values))

    def execute_batch(
        self, name: str, encrypted_queries: Sequence[EncryptedQuery]
    ) -> list[EvaluationResult]:
        """Scatter a query batch and merge element-wise."""
        gathered = self._gather(
            f"batch-query({name!r})",
            self._all_shards(lambda server: server.execute_batch(name, encrypted_queries)),
            policy=self._policy,
            read=True,
        )
        return [
            merge_evaluation_results([results[i] for results in gathered.values])
            for i in range(len(encrypted_queries))
        ]

    # ------------------------------------------------------------------ #
    # Elastic membership
    # ------------------------------------------------------------------ #

    def add_shard(
        self, backend: Any, shard_id: str | None = None, *, rebalance: bool = True
    ):
        """Grow the fleet by one shard and migrate its ring share onto it.

        The new shard is primed with every known relation (its evaluator and
        an empty partition) before it joins the ring, so scatter reads never
        observe a shard without the relation.  Requires every relation's
        evaluator to have been registered through this router.

        Returns the :class:`~repro.cluster.rebalance.RebalanceReport` (or
        None with ``rebalance=False``, leaving existing tuples in place
        until :meth:`rebalance` runs).
        """
        names = self.relation_names
        missing = [name for name in names if name not in self._evaluators]
        if missing:
            raise ClusterError(
                f"cannot prime a new shard: no evaluator registered through this "
                f"router for relation(s) {missing} (register_evaluator them first)"
            )
        shard = self._open_backend(backend, shard_id, len(self._shards))
        if shard.shard_id in self._shards:
            if shard.owned:
                shard.server.close()
            raise ClusterError(f"duplicate shard id {shard.shard_id!r}")
        try:
            for name in names:
                schema = self._any_schema(name)
                shard.server.store_relation(
                    name,
                    EncryptedRelation(schema=schema, encrypted_tuples=()),
                    self._evaluators[name],
                )
        except BaseException:
            if shard.owned:
                shard.server.close()
            raise
        self._shards[shard.shard_id] = shard
        self._ring.add_shard(shard.shard_id)
        self._resize_executor()
        if not rebalance:
            return None
        return self.rebalance()

    def remove_shard(self, shard_id: str, *, drain: bool = True):
        """Shrink the fleet, draining the leaving shard's tuples first.

        With ``drain=True`` every tuple on the leaving shard is re-inserted
        at its new ring owner and the relations are dropped from the leaving
        shard before it is detached (and closed, when owned).  Returns the
        :class:`~repro.cluster.rebalance.RebalanceReport` of the drain.
        """
        from repro.cluster.rebalance import RebalanceReport

        if shard_id not in self._shards:
            raise ClusterError(f"no shard named {shard_id!r}")
        if len(self._shards) == 1:
            raise ClusterError("cannot remove the last shard")
        leaving = self._shards[shard_id]
        self._ring.remove_shard(shard_id)
        report = RebalanceReport()
        try:
            if drain:
                for name in tuple(leaving.server.relation_names):
                    relation = leaving.server.stored_relation(name)
                    for encrypted_tuple in relation:
                        target = self._ring.assign(encrypted_tuple.tuple_id)
                        self.shard(target).insert_tuple(name, encrypted_tuple)
                        report.record_move(name, shard_id, target)
                    report.scanned += len(relation)
                    leaving.server.drop_relation(name)
        except BaseException:
            # Put the shard back: its data was not (fully) drained.
            self._ring.add_shard(shard_id)
            raise
        del self._shards[shard_id]
        if leaving.owned:
            leaving.server.close()
        return report

    def rebalance(self):
        """Move every misplaced tuple to its ring-assigned shard."""
        from repro.cluster.rebalance import rebalance as run_rebalance

        return run_rebalance(
            {shard_id: shard.server for shard_id, shard in self._shards.items()},
            self._ring,
            self.relation_names,
        )

    def _any_schema(self, name: str):
        """The (public) schema of a stored relation.

        Served from the cache populated at store time; falls back to
        fetching one shard's copy for relations stored before this router
        existed (e.g. an attach-style session over persisted shards).
        """
        cached = self._schemas.get(name)
        if cached is not None:
            return cached
        first = next(iter(self._shards.values()))
        schema = first.server.stored_relation(name).schema
        self._schemas[name] = schema
        return schema

    def _resize_executor(self) -> None:
        wanted = self._pool_headroom(len(self._shards))
        if wanted > self._executor.max_workers:
            old = self._executor
            self._executor = ScatterGatherExecutor(
                max_workers=wanted, timeout=old.timeout
            )
            old.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _partition_tuples(
        self, encrypted_relation: EncryptedRelation
    ) -> dict[str, list[EncryptedTuple]]:
        groups: dict[str, list[EncryptedTuple]] = {
            shard_id: [] for shard_id in self._shards
        }
        for encrypted_tuple in encrypted_relation:
            groups[self._ring.assign(encrypted_tuple.tuple_id)].append(encrypted_tuple)
        return groups

    def _all_shards(
        self, operation: Callable[[Any], Any]
    ) -> list[tuple[str, Callable[[], Any]]]:
        return [
            (shard.shard_id, (lambda sv: lambda: operation(sv))(shard.server))
            for shard in self._shards.values()
        ]

    def _gather(
        self,
        operation: str,
        calls: Sequence[tuple[str, Callable[[], Any]]],
        *,
        policy: str,
        read: bool = False,
    ) -> GatherResult:
        if read:
            self._stats.scatter_reads += 1
        gathered = self._executor.gather(operation, calls, policy=policy)
        if gathered.degraded:
            self._stats.degraded_reads += 1
            self._stats.last_missing_shard_ids = gathered.missing_shard_ids
        return gathered

    @staticmethod
    def _respond(
        request: Message | MessageV2, kind: MessageKind, body: bytes
    ) -> Message | MessageV2:
        envelope = Message if request.version == protocol.PROTOCOL_V1 else MessageV2
        return envelope(kind=kind, relation_name=request.relation_name, body=body)
