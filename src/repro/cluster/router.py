"""The shard router: one logical provider over a fleet of shards.

:class:`ShardRouter` implements the same duck-type
:class:`~repro.api.EncryptedDatabase` and
:class:`~repro.outsourcing.client.OutsourcingClient` already consume --
byte-level :meth:`~ShardRouter.handle_message` plus the management calls --
so a session drives N providers exactly as it drives one.  Each backend is
either an in-process :class:`~repro.outsourcing.server.OutsourcedDatabaseServer`
(or anything with its duck-type) or a ``tcp://host:port`` URL (opened as an
owned :class:`~repro.net.client.RemoteServerProxy`), mixed freely.

Routing is per *encrypted tuple*: the consistent-hash ring of
:mod:`repro.cluster.ring` keys on the public random tuple id, so placement
is a function of values every provider sees anyway.  With a replication
factor R (``replicas=R``) every tuple lives on its R ring successors --
R distinct shards.  Operation shapes:

===================  ====================================================
``INSERT_TUPLE``     all R replica shards of the tuple id (fail-fast)
``DELETE_TUPLES``    scatter the public ids to every shard (providers
                     ignore unknown ids, so this stays correct while
                     tuples are mid-migration or a rebalance is deferred)
``STORE_RELATION``   partitioned across all shards, each tuple stored on
                     its R successors (every shard stores the relation,
                     possibly empty, so queries can fan out)
``QUERY``            scatter to all shards, merge the evaluation results
                     (deduplicated by public tuple id)
``BATCH_QUERY``      scatter the whole batch, merge element-wise
===================  ====================================================

Writes always run fail-fast (a partially applied write is corruption).
Scatter reads first try to *fail over*: when some shards fail but every
ring segment still has a live replica (:meth:`ConsistentHashRing.covers`),
the surviving answers are provably complete after deduplication and the
read succeeds as if nothing happened -- no policy fires, nothing degrades.
Only when failover is impossible (more failures than replicas can absorb)
does the router fall back to its partial-failure ``policy``
(:data:`~repro.cluster.executor.FAIL_FAST` or
:data:`~repro.cluster.executor.DEGRADED`).

Merged reads deduplicate by the public tuple id: replication makes
multiple physical copies of one ciphertext the *normal* case, and the
insert-first rebalancer can leave transient duplicates after a crash, so
every read path collapses copies before answering (a tuple id is a random
nonce chosen at encryption time; two ciphertexts sharing it are the same
stored tuple, not a collision).

The coordinator (this class) runs client-side and is trusted; the providers
individually observe strictly less than the single-provider deployment --
each sees only its ``1/N`` of the ciphertexts and every query's fan-out,
which is the same access pattern the paper already concedes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.cache import CacheError, ResultCache, coerce_cache_config
from repro.core.dph import (
    DphError,
    EncryptedQuery,
    EncryptedRelation,
    EncryptedTuple,
    EvaluationResult,
    ServerEvaluator,
)
from repro.cluster.executor import (
    ClusterError,
    FAIL_FAST,
    GatherResult,
    PARTIAL_FAILURE_POLICIES,
    ScatterGatherExecutor,
    resolve_outcomes,
)
from repro.cluster.ring import ConsistentHashRing, DEFAULT_VIRTUAL_NODES
from repro.obs import MetricsRegistry, current_trace_id, merge_snapshots
from repro.outsourcing import protocol
from repro.outsourcing.protocol import (
    Message,
    MessageKind,
    MessageV2,
    ProtocolError,
    SUPPORTED_VERSIONS,
)
from repro.outsourcing.server import ServerError
from repro.outsourcing.storage import StorageError

#: URL scheme of a sharded deployment: ``cluster://host:port,host:port,...``
CLUSTER_URL_PREFIX = "cluster://"


def parse_cluster_options(url: str) -> tuple[tuple[str, ...], dict]:
    """Split ``cluster://h1:p1,...?replicas=R&async=1`` into URLs and options.

    Returns the per-shard ``tcp://`` URLs plus the parsed query options:
    ``replicas`` (the replication factor of the deployment), ``async``
    (drive the fleet over pipelined asyncio connections from one
    event-loop thread instead of a blocking pool per shard), ``index``
    (the session maintains encrypted inverted indexes and serves exact
    selects through ``INDEX_LOOKUP``) and ``cache`` (the router keeps a
    coordinator-side result cache shared by every session it serves).
    Unknown options are rejected rather than ignored: a typo silently
    dropping ``?async=1`` would be a silent performance change.
    """
    from repro.net.client import RemoteError, parse_bool_option, parse_tcp_url

    if not url.startswith(CLUSTER_URL_PREFIX):
        raise ClusterError(
            f"unsupported cluster URL {url!r} (want {CLUSTER_URL_PREFIX}host:port,...)"
        )
    rest = url[len(CLUSTER_URL_PREFIX):]
    options: dict = {}
    if "?" in rest:
        rest, _, query = rest.partition("?")
        for item in query.split("&"):
            if not item:
                continue
            key, _, value = item.partition("=")
            if key == "replicas":
                try:
                    options["replicas"] = int(value)
                except ValueError as exc:
                    raise ClusterError(
                        f"cluster URL option replicas must be an integer, got {value!r}"
                    ) from exc
            elif key in ("async", "index", "cache"):
                try:
                    options[key] = parse_bool_option(key, value)
                except RemoteError as exc:
                    raise ClusterError(str(exc)) from exc
            else:
                raise ClusterError(
                    f"unknown cluster URL option {key!r} "
                    "(supported: replicas, async, index, cache)"
                )
    parts = [part.strip() for part in rest.split(",")]
    parts = [part for part in parts if part]
    if not parts:
        raise ClusterError(f"cluster URL {url!r} names no shards")
    urls = []
    for part in parts:
        tcp_url = part if part.startswith("tcp://") else f"tcp://{part}"
        try:
            parse_tcp_url(tcp_url)
        except RemoteError as exc:
            raise ClusterError(str(exc)) from exc
        if tcp_url in urls:
            raise ClusterError(f"cluster URL {url!r} lists shard {part!r} twice")
        urls.append(tcp_url)
    return tuple(urls), options


def parse_cluster_url(url: str) -> tuple[str, ...]:
    """Split ``cluster://h1:p1,h2:p2,...`` into per-shard ``tcp://`` URLs."""
    return parse_cluster_options(url)[0]


def merge_evaluation_results(
    results: Sequence[EvaluationResult],
) -> EvaluationResult:
    """Merge per-shard matches, one copy per public tuple id.

    Replication stores each ciphertext on R shards, and the insert-first
    rebalancer can leave a transient extra copy after a crash, so the same
    tuple id may arrive from several shards; answering it once is what
    keeps query multiplicities exact.  The server-side work counters
    (``examined``/``token_evaluations``) stay summed -- they measure work
    the fleet really performed, duplicates included.
    """
    if not results:
        raise ClusterError("cannot merge zero evaluation results")
    tuples: list[EncryptedTuple] = []
    seen: set[bytes] = set()
    examined = 0
    token_evaluations = 0
    for result in results:
        for encrypted_tuple in result.matching.encrypted_tuples:
            if encrypted_tuple.tuple_id in seen:
                continue
            seen.add(encrypted_tuple.tuple_id)
            tuples.append(encrypted_tuple)
        examined += result.examined
        token_evaluations += result.token_evaluations
    return EvaluationResult(
        matching=EncryptedRelation(
            schema=results[0].matching.schema, encrypted_tuples=tuple(tuples)
        ),
        examined=examined,
        token_evaluations=token_evaluations,
    )


class ClusterStats:
    """Counters of the router's scatter-gather activity.

    The counters live in a :class:`~repro.obs.MetricsRegistry` (as
    ``cluster_<name>_total``), so one registry snapshot covers transport,
    provider, and routing activity alike; every historical attribute read
    (``stats.scatter_reads``, ...) keeps working through ``__getattr__``
    and :meth:`as_dict` keeps its key set.  Scatters run on a thread pool
    and several sessions may share one router, so mutations go through the
    ``record_*`` methods (registry counters carry their own locks; the
    last-shard-id tuples share this object's lock) and :meth:`as_dict`
    returns an atomic snapshot of the tuple pair.
    """

    _COUNTERS = (
        "scatter_reads",
        "degraded_reads",
        #: see record_failover_read: reads completed via surviving replicas.
        "failover_reads",
        "routed_inserts",
        # Scatters driven as coroutines on the event-loop thread (the
        # pipelined async-transport path) rather than the thread pool.
        "loop_scatters",
        # ``INDEX_LOOKUP`` scatters routed across the fleet.
        "index_lookups",
        # Per-shard scan fallbacks inside index lookups (a fleet member that
        # does not speak ``INDEX_LOOKUP`` answered the embedded query).
        "index_scan_fallbacks",
        # ``INDEX_PUT`` / ``INDEX_DELTA`` fan-outs.
        "index_writes",
    )

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        registry = metrics if metrics is not None else MetricsRegistry()
        self._metrics = registry
        self._counters = {
            name: registry.counter(f"cluster_{name}_total") for name in self._COUNTERS
        }
        self._lock = threading.Lock()
        #: Shards missing from the most recent degraded read.
        self.last_missing_shard_ids: tuple[str, ...] = ()
        #: Shards whose failure the most recent failover read absorbed.
        self.last_failover_shard_ids: tuple[str, ...] = ()

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry holding the routing counters."""
        return self._metrics

    def __getattr__(self, name: str) -> int:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return counters[name].value
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {name!r}"
        )

    def record_scatter_read(self) -> None:
        self._counters["scatter_reads"].inc()

    def record_routed_insert(self) -> None:
        self._counters["routed_inserts"].inc()

    def record_loop_scatter(self) -> None:
        self._counters["loop_scatters"].inc()

    def record_index_lookup(self) -> None:
        self._counters["index_lookups"].inc()

    def record_index_scan_fallback(self) -> None:
        self._counters["index_scan_fallbacks"].inc()

    def record_index_write(self) -> None:
        self._counters["index_writes"].inc()

    def record_degraded_read(self, missing_shard_ids: Sequence[str]) -> None:
        self._counters["degraded_reads"].inc()
        with self._lock:
            self.last_missing_shard_ids = tuple(missing_shard_ids)

    def record_failover_read(self, failed_shard_ids: Sequence[str]) -> None:
        self._counters["failover_reads"].inc()
        with self._lock:
            self.last_failover_shard_ids = tuple(failed_shard_ids)

    def as_dict(self) -> dict:
        counts = {name: self._counters[name].value for name in self._COUNTERS}
        with self._lock:
            counts["last_missing_shard_ids"] = list(self.last_missing_shard_ids)
            counts["last_failover_shard_ids"] = list(self.last_failover_shard_ids)
        return counts


@dataclass
class _Shard:
    """One backend: the duck-typed server plus ownership bookkeeping."""

    shard_id: str
    server: Any
    #: True when the router opened this backend itself (a tcp:// proxy) and
    #: is therefore responsible for closing it.
    owned: bool = False


class ShardRouter:
    """One logical :class:`OutsourcedDatabaseServer` spread over many shards."""

    def __init__(
        self,
        shards: Sequence[Any],
        *,
        shard_ids: Sequence[str] | None = None,
        replicas: int = 1,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        policy: str = FAIL_FAST,
        shard_timeout: float | None = None,
        pool_size: int = 4,
        timeout: float | None = 30.0,
        async_transport: bool = False,
        cache=None,
    ) -> None:
        """Build a router over backends (server objects and/or tcp:// URLs).

        Parameters
        ----------
        shards:
            The backends.  A string is treated as a ``tcp://host:port`` URL
            and opened as an owned proxy; anything else must satisfy the
            :class:`~repro.outsourcing.server.OutsourcedDatabaseServer`
            duck-type.
        shard_ids:
            Ring identifiers, one per backend.  Defaults to the URL for URL
            shards and ``shard-<index>`` for object shards.  Identifiers are
            the ring's key space: reuse the same ids (and order, for the
            positional defaults) across coordinator restarts, or tuples will
            appear misplaced until a rebalance.
        replicas:
            Replication factor R: every tuple is written to its R ring
            successor shards (fail-fast), so reads stay complete with up to
            R-1 shards down.  Needs at least R shards; 1 disables
            replication.
        virtual_nodes:
            Virtual nodes per shard on the ring.
        policy:
            Partial-failure policy for scatter reads whose failures exceed
            what the replicas can absorb (``fail_fast`` or ``degraded``);
            writes are always fail-fast.
        shard_timeout:
            Per-shard gather timeout in seconds (None waits forever).
        pool_size / timeout:
            Connection-pool settings for URL shards.
        async_transport:
            Open URL shards as pipelined asyncio proxies
            (:class:`~repro.net.aio.AsyncRemoteServerProxy`) sharing one
            event-loop thread, so every scatter drives all shard round
            trips concurrently from that single thread instead of burning
            a blocking thread per shard (``cluster://...?async=1``).
            Envelope scatters then run on the event loop whenever every
            addressed shard is pipelined; mixed fleets (object backends
            alongside URLs) fall back to the thread pool per call.
        cache:
            Keep a coordinator-side result cache (see :mod:`repro.cache`):
            repeated hot reads are answered from the router's memory
            before any shard is touched, and the cache is shared by every
            session this router serves.  Invalidation rides the existing
            write paths (ring-routed inserts invalidate only the owning
            relation, delete fan-outs likewise; membership changes and
            rebalances flush everything), and degraded reads are never
            cached, so replication and failover cannot resurrect stale
            entries.  ``True`` enables the defaults; an int sets the entry
            budget; a :class:`~repro.cache.CacheConfig` (or dict of its
            fields) sets everything (``cluster://...?cache=1``).  Off by
            default.
        """
        if not shards:
            raise ClusterError("a cluster needs at least one shard")
        if replicas < 1:
            raise ClusterError("the replication factor must be at least 1")
        if replicas > len(shards):
            raise ClusterError(
                f"replication factor {replicas} needs at least {replicas} "
                f"shard(s), got {len(shards)}"
            )
        if policy not in PARTIAL_FAILURE_POLICIES:
            raise ClusterError(
                f"unknown partial-failure policy {policy!r} "
                f"(choose from {PARTIAL_FAILURE_POLICIES})"
            )
        if shard_ids is not None and len(shard_ids) != len(shards):
            raise ClusterError(
                f"{len(shards)} shard(s) but {len(shard_ids)} shard id(s)"
            )
        self._policy = policy
        self._replication = replicas
        self._pool_size = pool_size
        self._timeout = timeout
        self._loop_thread = None
        if async_transport:
            from repro.net.aio import EventLoopThread

            # One loop thread for the whole fleet: every pipelined shard
            # connection lives on it, and the event-loop scatter path
            # drives all shard round trips from it concurrently.
            self._loop_thread = EventLoopThread("repro-cluster-aio").start()
        self._shards: dict[str, _Shard] = {}
        self._ring = ConsistentHashRing(virtual_nodes=virtual_nodes)
        self._evaluators: dict[str, ServerEvaluator] = {}
        self._schemas: dict[str, Any] = {}
        self._metrics = MetricsRegistry()
        self._stats = ClusterStats(metrics=self._metrics)
        try:
            cache_config = coerce_cache_config(cache)
        except CacheError as exc:
            raise ClusterError(str(exc)) from exc
        self._cache = (
            ResultCache(cache_config, metrics=self._metrics, tier="coordinator")
            if cache_config is not None
            else None
        )
        self._closed = False
        # Room for several concurrent scatters (threads are created lazily,
        # so the headroom is free when idle).  Note the per-shard timeout is
        # measured from the scatter call, so under heavier concurrency than
        # this headroom it also covers time spent queued for a worker.
        self._executor = ScatterGatherExecutor(
            max_workers=self._pool_headroom(len(shards)), timeout=shard_timeout
        )
        try:
            for index, backend in enumerate(shards):
                explicit = shard_ids[index] if shard_ids is not None else None
                shard = self._open_backend(backend, explicit, index)
                if shard.shard_id in self._shards:
                    if shard.owned:
                        shard.server.close()
                    raise ClusterError(f"duplicate shard id {shard.shard_id!r}")
                self._shards[shard.shard_id] = shard
                self._ring.add_shard(shard.shard_id)
        except BaseException:
            self.close()
            raise

    @staticmethod
    def _pool_headroom(shard_count: int) -> int:
        return min(64, max(8, 4 * shard_count))

    @classmethod
    def connect(
        cls,
        url: str,
        *,
        replicas: int | None = None,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        policy: str = FAIL_FAST,
        shard_timeout: float | None = None,
        pool_size: int = 4,
        timeout: float | None = 30.0,
        async_transport: bool | None = None,
        cache=None,
    ) -> "ShardRouter":
        """Open a router from a ``cluster://h1:p1[?replicas=R&async=1]`` URL.

        The replication factor, the transport and the coordinator cache
        can come from the URL query or the keywords (they must agree when
        both are given); replication defaults to 1, the transport to
        blocking pools, the cache to off.
        """
        urls, options = parse_cluster_options(url)
        url_replicas = options.get("replicas")
        if replicas is None:
            replicas = url_replicas if url_replicas is not None else 1
        elif url_replicas is not None and url_replicas != replicas:
            raise ClusterError(
                f"conflicting replication factors: the URL says "
                f"{url_replicas}, the caller says {replicas}"
            )
        url_async = options.get("async")
        if async_transport is None:
            async_transport = bool(url_async) if url_async is not None else False
        elif url_async is not None and url_async != async_transport:
            raise ClusterError(
                f"conflicting transports: the URL says async={url_async}, "
                f"the caller says async_transport={async_transport}"
            )
        url_cache = options.get("cache")
        if cache is None:
            cache = bool(url_cache) if url_cache is not None else None
        elif url_cache is not None and bool(url_cache) != bool(cache):
            raise ClusterError(
                f"conflicting cache settings: the URL says cache={url_cache}, "
                f"the caller says cache={cache}"
            )
        return cls(
            urls,
            replicas=replicas,
            virtual_nodes=virtual_nodes,
            policy=policy,
            shard_timeout=shard_timeout,
            pool_size=pool_size,
            timeout=timeout,
            async_transport=async_transport,
            cache=cache,
        )

    @classmethod
    def from_manifest(
        cls,
        manifest,
        *,
        policy: str = FAIL_FAST,
        shard_timeout: float | None = None,
        pool_size: int = 4,
        timeout: float | None = 30.0,
        async_transport: bool | None = None,
        cache=None,
    ) -> "ShardRouter":
        """Open a router from a :class:`~repro.cluster.manifest.ClusterManifest`.

        The manifest supplies the topology -- shard URLs *and their stable
        ring ids*, replication factor, virtual-node count, default
        transport -- so a coordinator restart reproduces the placement
        ring exactly (no tuples look misplaced just because the shard
        order changed hands).  Runtime knobs (policy, timeouts, pool
        size) stay caller-side; ``async_transport`` overrides the
        manifest's default when given.
        """
        return cls(
            manifest.shard_urls,
            shard_ids=manifest.shard_ids,
            replicas=manifest.replicas,
            virtual_nodes=manifest.virtual_nodes,
            policy=policy,
            shard_timeout=shard_timeout,
            pool_size=pool_size,
            timeout=timeout,
            async_transport=(
                manifest.async_transport
                if async_transport is None
                else async_transport
            ),
            cache=cache,
        )

    def _open_backend(
        self, backend: Any, shard_id: str | None, index: int
    ) -> _Shard:
        if isinstance(backend, str):
            if self._loop_thread is not None:
                from repro.net.aio import AsyncRemoteServerProxy

                proxy: Any = AsyncRemoteServerProxy.connect(
                    backend, loop=self._loop_thread, timeout=self._timeout
                )
            else:
                from repro.net.client import RemoteServerProxy

                proxy = RemoteServerProxy.connect(
                    backend, pool_size=self._pool_size, timeout=self._timeout
                )
            return _Shard(
                shard_id=shard_id if shard_id is not None else backend,
                server=proxy,
                owned=True,
            )
        return _Shard(
            shard_id=shard_id if shard_id is not None else self._free_shard_id(index),
            server=backend,
        )

    def _free_shard_id(self, index: int) -> str:
        """First unused positional id (an earlier remove may have freed one)."""
        while f"shard-{index}" in self._shards:
            index += 1
        return f"shard-{index}"

    # ------------------------------------------------------------------ #
    # Cluster introspection
    # ------------------------------------------------------------------ #

    @property
    def shard_ids(self) -> tuple[str, ...]:
        """Ring identifiers of the shards, in insertion order."""
        return tuple(self._shards)

    @property
    def ring(self) -> ConsistentHashRing:
        """The placement ring (shared, do not mutate directly)."""
        return self._ring

    @property
    def policy(self) -> str:
        """Partial-failure policy applied to scatter reads."""
        return self._policy

    @property
    def replication(self) -> int:
        """Replication factor R: physical copies stored per tuple."""
        return self._replication

    @property
    def async_transport(self) -> bool:
        """True when URL shards ride pipelined asyncio connections."""
        return self._loop_thread is not None

    @property
    def stats(self) -> ClusterStats:
        """Scatter/routing counters."""
        return self._stats

    @property
    def cache(self) -> ResultCache | None:
        """The coordinator-side result cache, or None when disabled."""
        return self._cache

    def shard(self, shard_id: str) -> Any:
        """The backend registered under one ring identifier."""
        try:
            return self._shards[shard_id].server
        except KeyError as exc:
            raise ClusterError(f"no shard named {shard_id!r}") from exc

    def shard_for(self, tuple_id: bytes) -> str:
        """The primary shard of a tuple id (its first ring successor)."""
        return self._ring.assign(tuple_id)

    def replica_shards(self, tuple_id: bytes) -> tuple[str, ...]:
        """The R shards storing a tuple id, primary first."""
        return self._ring.successors(tuple_id, self._replication)

    def per_shard_tuple_counts(self, name: str) -> dict[str, int]:
        """Ciphertext count of one relation on every shard."""
        gathered = self._gather(
            f"tuple-count({name!r})",
            [(s.shard_id, (lambda sv: lambda: sv.tuple_count(name))(s.server))
             for s in self._shards.values()],
            policy=FAIL_FAST,
        )
        return dict(zip(self.shard_ids, gathered.values))

    def cluster_status(self) -> dict[str, dict]:
        """Best-effort per-shard health/stats snapshot (never raises)."""
        status: dict[str, dict] = {}
        for shard in self._shards.values():
            try:
                names = tuple(shard.server.relation_names)
                entry: dict[str, Any] = {
                    "ok": True,
                    "relations": {n: shard.server.tuple_count(n) for n in names},
                }
                remote_stats = getattr(shard.server, "server_stats", None)
                if remote_stats is not None:
                    entry["stats"] = remote_stats()
                else:
                    entry["audit"] = shard.server.audit_log.summary()
            except Exception as exc:  # noqa: BLE001 - a status probe never raises
                entry = {"ok": False, "error": str(exc)}
            status[shard.shard_id] = entry
        if self._cache is not None:
            # The coordinator itself is part of the serving picture when it
            # absorbs reads; consumers iterating per-shard entries can key
            # on "cache" to tell this row apart (it still reports ok=True).
            status["coordinator-cache"] = {"ok": True, "cache": self._cache.stats()}
        return status

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry holding the router's own counters and histograms."""
        return self._metrics

    def metrics_snapshot(self) -> dict:
        """One merged snapshot: the router's registry plus every shard's.

        Shards that cannot answer (dead, or builds without the metrics
        plane) are skipped -- a metrics probe never raises.  Histograms
        merge exactly because every registry shares the fixed bucket
        bounds.
        """
        snapshots = [self._metrics.snapshot()]
        for shard in self._shards.values():
            try:
                local = getattr(shard.server, "metrics_snapshot", None)
                if local is not None:
                    snapshots.append(local())
                    continue
                remote = getattr(shard.server, "metrics", None)
                if callable(remote):  # a proxy's metrics control op
                    snapshot = remote().get("metrics")
                    if snapshot:
                        snapshots.append(snapshot)
            except Exception:  # noqa: BLE001 - a metrics probe never raises
                continue
        return merge_snapshots(*snapshots)

    def collect_trace(self, trace_id: bytes) -> list[dict]:
        """Every span the fleet recorded under ``trace_id``, shard-tagged.

        Fans the ``trace`` control operation out to shards that support it
        (older builds simply contribute nothing) and annotates each span
        with the shard it came from; per-shard failures are suppressed --
        trace assembly is diagnostics, not serving.
        """
        spans: list[dict] = []
        for shard in self._shards.values():
            collector = getattr(shard.server, "collect_trace", None)
            if collector is None:
                continue
            try:
                shard_spans = collector(trace_id)
            except Exception:  # noqa: BLE001 - a trace probe never raises
                continue
            for entry in shard_spans:
                tagged = dict(entry)
                annotations = dict(tagged.get("annotations") or {})
                annotations.setdefault("shard_id", shard.shard_id)
                tagged["annotations"] = annotations
                spans.append(tagged)
        return spans

    def close(self) -> None:
        """Close owned backends, the scatter pool, and the loop thread.

        Idempotent: several sessions may share one router (the coordinator
        cache deployment), and each closing session closes its server.
        """
        if self._closed:
            return
        self._closed = True
        for shard in self._shards.values():
            if shard.owned:
                shard.server.close()
        self._executor.close()
        if self._loop_thread is not None:
            self._loop_thread.stop()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The OutsourcedDatabaseServer duck-type: session management
    # ------------------------------------------------------------------ #

    @property
    def supported_protocol_versions(self) -> tuple[int, ...]:
        """Versions every shard speaks (the fleet negotiates as one)."""
        common = [
            version
            for version in SUPPORTED_VERSIONS
            if all(
                version in shard.server.supported_protocol_versions
                for shard in self._shards.values()
            )
        ]
        return tuple(common)

    def register_evaluator(self, name: str, evaluator: ServerEvaluator) -> None:
        """Deploy the keyless evaluator on every shard."""
        self._gather(
            f"register-evaluator({name!r})",
            self._all_shards(lambda server: server.register_evaluator(name, evaluator)),
            policy=FAIL_FAST,
        )
        self._evaluators[name] = evaluator

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Union of the shards' relations, first-seen order preserved."""
        gathered = self._gather(
            "relation-names",
            self._all_shards(lambda server: tuple(server.relation_names)),
            policy=FAIL_FAST,
        )
        names: list[str] = []
        for shard_names in gathered.values:
            for name in shard_names:
                if name not in names:
                    names.append(name)
        return tuple(names)

    def stored_relation(self, name: str) -> EncryptedRelation:
        """The logical ciphertext relation, reassembled from every shard.

        Each tuple id appears exactly once, however many physical copies
        the fleet holds (replicas, or transient migration duplicates).
        Reassembly must be complete: a dead shard is tolerated only when
        surviving replicas still cover its data (read failover); otherwise
        the call fails fast regardless of the read policy.
        """
        gathered = self._gather(
            f"stored-relation({name!r})",
            self._all_shards(lambda server: server.stored_relation(name)),
            policy=FAIL_FAST,  # reassembling data must be complete
            read=True,
        )
        tuples: list[EncryptedTuple] = []
        seen: set[bytes] = set()
        for piece in gathered.values:
            for encrypted_tuple in piece.encrypted_tuples:
                if encrypted_tuple.tuple_id in seen:
                    continue
                seen.add(encrypted_tuple.tuple_id)
                tuples.append(encrypted_tuple)
        return EncryptedRelation(
            schema=gathered.values[0].schema, encrypted_tuples=tuple(tuples)
        )

    def tuple_count(self, name: str) -> int:
        """Logical tuple count: distinct tuple ids across the fleet.

        Physical copies count once, so the number always matches what a
        query can return -- replication (R copies per tuple) and crash
        duplicates never inflate it.  :meth:`per_shard_tuple_counts` still
        reports the raw physical counts (cheap metadata reads) for
        placement introspection.  Each shard answers with its *id list*
        (the v2 ``LIST_TUPLE_IDS`` op) rather than its stored ciphertexts,
        so the wire cost is ``O(ids)`` instead of ``O(data * R)``.
        """
        return len(self._distinct_tuple_ids(name))

    def list_tuple_ids(self, name: str) -> tuple[bytes, ...]:
        """Distinct public tuple ids across the fleet (sorted, each once)."""
        return tuple(sorted(self._distinct_tuple_ids(name)))

    def _distinct_tuple_ids(self, name: str) -> set[bytes]:
        gathered = self._gather(
            f"list-tuple-ids({name!r})",
            self._all_shards(lambda server: self._shard_tuple_ids(server, name)),
            policy=FAIL_FAST,
            read=True,
        )
        ids: set[bytes] = set()
        for shard_ids in gathered.values:
            ids.update(shard_ids)
        return ids

    @staticmethod
    def _shard_tuple_ids(server: Any, name: str) -> tuple[bytes, ...]:
        lister = getattr(server, "list_tuple_ids", None)
        if lister is not None:
            return tuple(lister(name))
        # Duck-typed backend without the id-listing op: fall back to the
        # stored relation (correct, just O(data) like the pre-op world).
        return tuple(t.tuple_id for t in server.stored_relation(name).encrypted_tuples)

    def drop_relation(self, name: str) -> None:
        """Drop the relation on every shard (fail-fast: no half-dropped state)."""
        try:
            self._gather(
                f"drop-relation({name!r})",
                self._all_shards(lambda server: server.drop_relation(name)),
                policy=FAIL_FAST,
            )
        finally:
            self._invalidate_cache(name)
        self._evaluators.pop(name, None)
        self._schemas.pop(name, None)

    def _invalidate_cache(self, relation: str) -> None:
        """Bump the coordinator cache's generation for one relation."""
        if self._cache is not None:
            self._cache.invalidate(relation)

    def _flush_cache(self) -> None:
        """Conservative full flush: data may have moved between shards."""
        if self._cache is not None:
            self._cache.flush()

    # ------------------------------------------------------------------ #
    # The OutsourcedDatabaseServer duck-type: wire level
    # ------------------------------------------------------------------ #

    def handle_message(self, raw: bytes) -> bytes:
        """Route one protocol envelope across the fleet.

        Mirrors the single-provider contract: failures inside a well-formed
        request come back as ``ERROR`` envelopes, not exceptions.
        """
        request = protocol.parse_message(raw)
        try:
            return self._route_envelope(request, raw)
        except (ServerError, StorageError, ProtocolError, DphError, ValueError) as exc:
            return self._respond(
                request, MessageKind.ERROR, str(exc).encode("utf-8")
            ).to_bytes()

    #: Envelope kinds that mutate a relation's data (or its index): each
    #: invalidates the coordinator cache's entries for that relation, even
    #: on failure -- a fail-fast write can still have landed on some
    #: replicas before failing, and one extra miss beats one stale hit.
    _WRITE_KINDS = frozenset(
        {
            MessageKind.INSERT_TUPLE,
            MessageKind.STORE_RELATION,
            MessageKind.DELETE_TUPLES,
            MessageKind.DELETE_TUPLES_EXACT,
            MessageKind.INDEX_PUT,
            MessageKind.INDEX_DELTA,
        }
    )

    def _route_envelope(self, request: Message | MessageV2, raw: bytes) -> bytes:
        """Cache-aware routing: reads consult the coordinator cache, writes
        invalidate it; everything else goes straight to the fleet."""
        if self._cache is not None:
            kind = request.kind
            if kind in self._WRITE_KINDS:
                try:
                    return self._route_envelope_uncached(request, raw)
                finally:
                    self._cache.invalidate(request.relation_name)
            if kind is MessageKind.QUERY:
                return self._cached_query(request, raw)
            if kind is MessageKind.BATCH_QUERY:
                return self._cached_batch(request, raw)
            if kind is MessageKind.INDEX_LOOKUP:
                return self._cached_index_lookup(request, raw)
        return self._route_envelope_uncached(request, raw)

    def _cached_query(self, request: Message | MessageV2, raw: bytes) -> bytes:
        """Serve one QUERY from the cache, or scatter and fill.

        The token is the encoded encrypted query -- exactly the envelope
        body -- shared with the batch path, so a single-query fill serves
        later batch elements and vice versa.  Only *complete* answers are
        cached: a degraded read (some ring segment unanswered) is correct
        to serve once but must not be replayed after the shards recover.
        """
        name = request.relation_name
        token = ("query", request.body)
        merged = self._cache.lookup(name, token)
        if merged is None:
            generation = self._cache.generation(name)
            merged, complete = self._scatter_query(request, raw)
            if complete:
                self._cache.put(name, token, merged, generation)
        return self._query_result_response(request, merged)

    def _cached_batch(self, request: Message | MessageV2, raw: bytes) -> bytes:
        """Element-wise batch caching: only the missing queries scatter."""
        name = request.relation_name
        queries = protocol.decode_query_batch(request.body)
        tokens = [("query", protocol.encode_encrypted_query(q)) for q in queries]
        results: list[EvaluationResult | None] = [
            self._cache.lookup(name, token) for token in tokens
        ]
        missing = [i for i, result in enumerate(results) if result is None]
        if missing:
            generation = self._cache.generation(name)
            sub_raw = self._respond(
                request,
                MessageKind.BATCH_QUERY,
                protocol.encode_query_batch([queries[i] for i in missing]),
            ).to_bytes()
            fetched, complete = self._scatter_batch(request, sub_raw)
            if len(fetched) != len(missing):
                raise ClusterError(
                    f"shards answered {len(fetched)} results "
                    f"for {len(missing)} queries"
                )
            for position, result in zip(missing, fetched):
                results[position] = result
                if complete:
                    self._cache.put(name, tokens[position], result, generation)
        return self._respond(
            request,
            MessageKind.BATCH_RESULT,
            protocol.encode_result_batch(results),
        ).to_bytes()

    def _cached_index_lookup(self, request: Message | MessageV2, raw: bytes) -> bytes:
        """Serve one INDEX_LOOKUP from the cache, or scatter and fill.

        Keyed on the raw lookup body (labels + embedded fallback query):
        an indexed session re-asks a hot query with byte-identical labels,
        so the token repeats exactly like the plain-query one.
        """
        name = request.relation_name
        token = ("index", request.body)
        merged = self._cache.lookup(name, token)
        if merged is None:
            generation = self._cache.generation(name)
            merged, complete = self._scatter_index_lookup(request, raw)
            if complete:
                self._cache.put(name, token, merged, generation)
        return self._respond(
            request,
            MessageKind.QUERY_RESULT,
            protocol.encode_evaluation_result(merged),
        ).to_bytes()

    def _query_result_response(
        self, request: Message | MessageV2, merged: EvaluationResult
    ) -> bytes:
        if request.version == protocol.PROTOCOL_V1:
            body = protocol.encode_encrypted_relation(merged.matching)
        else:
            body = protocol.encode_evaluation_result(merged)
        return self._respond(request, MessageKind.QUERY_RESULT, body).to_bytes()

    def _route_envelope_uncached(
        self, request: Message | MessageV2, raw: bytes
    ) -> bytes:
        kind = request.kind
        if kind is MessageKind.INSERT_TUPLE:
            encrypted_tuple, consumed = protocol.decode_encrypted_tuple(request.body)
            if consumed != len(request.body):
                raise ProtocolError("trailing bytes after encrypted tuple")
            targets = self.replica_shards(encrypted_tuple.tuple_id)
            self._stats.record_routed_insert()
            if len(targets) == 1:  # unreplicated fast path: no scatter hop
                shard_id = targets[0]
                try:
                    return self.shard(shard_id).handle_message(raw)
                except (ServerError, StorageError, ProtocolError, DphError, ValueError):
                    raise
                except Exception as exc:  # a dying backend must not escape the envelope contract
                    raise ClusterError(f"shard {shard_id!r} failed: {exc}") from exc
            # Replicated insert: every replica must apply it (fail-fast) or
            # the write as a whole fails -- a partial write is corruption.
            gathered = self._gather_envelopes(
                f"insert-tuple({request.relation_name!r})",
                {shard_id: raw for shard_id in targets},
                expect=MessageKind.ACK,
                policy=FAIL_FAST,
            )
            return gathered.values[0].to_bytes()
        if kind is MessageKind.STORE_RELATION:
            encrypted_relation = protocol.decode_encrypted_relation(request.body)
            self._scatter_store(request, encrypted_relation)
            return self._respond(
                request, MessageKind.ACK, protocol.encode_count(len(encrypted_relation))
            ).to_bytes()
        if kind is MessageKind.DELETE_TUPLES:
            deleted = self._scatter_delete(
                request, protocol.decode_tuple_ids(request.body)
            )
            return self._respond(
                request, MessageKind.ACK, protocol.encode_count(deleted)
            ).to_bytes()
        if kind is MessageKind.QUERY:
            merged, _ = self._scatter_query(request, raw)
            return self._query_result_response(request, merged)
        if kind is MessageKind.BATCH_QUERY:
            merged_batch, _ = self._scatter_batch(request, raw)
            return self._respond(
                request,
                MessageKind.BATCH_RESULT,
                protocol.encode_result_batch(merged_batch),
            ).to_bytes()
        if kind is MessageKind.LIST_TUPLE_IDS:
            gathered = self._gather_envelopes(
                f"list-tuple-ids({request.relation_name!r})",
                {shard_id: raw for shard_id in self._shards},
                expect=MessageKind.TUPLE_IDS,
                policy=FAIL_FAST,
                read=True,
            )
            ids: set[bytes] = set()
            for response in gathered.values:
                ids.update(protocol.decode_tuple_ids(response.body))
            return self._respond(
                request, MessageKind.TUPLE_IDS, protocol.encode_tuple_ids(sorted(ids))
            ).to_bytes()
        if kind is MessageKind.DELETE_TUPLES_EXACT:
            # Like DELETE_TUPLES, the full id list goes to the whole fleet;
            # the union of per-shard outcomes is the exact logical id set
            # (each physical copy of a tuple reports the same public id).
            gathered = self._gather_envelopes(
                f"delete-tuples-exact({request.relation_name!r})",
                {shard_id: raw for shard_id in self._shards},
                expect=MessageKind.TUPLE_IDS,
                policy=FAIL_FAST,
            )
            deleted: set[bytes] = set()
            for response in gathered.values:
                deleted.update(protocol.decode_tuple_ids(response.body))
            return self._respond(
                request,
                MessageKind.TUPLE_IDS,
                protocol.encode_tuple_ids(sorted(deleted)),
            ).to_bytes()
        if kind in (MessageKind.INDEX_PUT, MessageKind.INDEX_DELTA):
            # Index writes replicate fleet-wide: every shard holds the whole
            # index (it is compact soft state), so lookups stay correct under
            # any placement -- rebalances, crash duplicates, replica reads.
            self._stats.record_index_write()
            gathered = self._gather_envelopes(
                f"{kind.value}({request.relation_name!r})",
                {shard_id: raw for shard_id in self._shards},
                expect=MessageKind.ACK,
                policy=FAIL_FAST,
            )
            counts = [protocol.decode_count(response.body) for response in gathered.values]
            return self._respond(
                request, MessageKind.ACK, protocol.encode_count(max(counts))
            ).to_bytes()
        if kind is MessageKind.INDEX_LOOKUP:
            merged, _ = self._scatter_index_lookup(request, raw)
            return self._respond(
                request,
                MessageKind.QUERY_RESULT,
                protocol.encode_evaluation_result(merged),
            ).to_bytes()
        raise ClusterError(f"cannot route message kind {kind.value!r}")

    def _scatter_store(
        self, request: Message | MessageV2, encrypted_relation: EncryptedRelation
    ) -> None:
        self._schemas[request.relation_name] = encrypted_relation.schema
        groups = self._partition_tuples(encrypted_relation)
        envelopes = {}
        for shard_id, tuples in groups.items():
            shard_relation = EncryptedRelation(
                schema=encrypted_relation.schema, encrypted_tuples=tuple(tuples)
            )
            envelopes[shard_id] = self._respond(
                request,
                MessageKind.STORE_RELATION,
                protocol.encode_encrypted_relation(shard_relation),
            ).to_bytes()
        self._gather_envelopes(
            f"store-relation({request.relation_name!r})",
            envelopes,
            expect=MessageKind.ACK,
            policy=FAIL_FAST,
        )

    def _scatter_delete(
        self, request: Message | MessageV2, tuple_ids: Sequence[bytes]
    ) -> int:
        # Every shard gets the full id list: ring ownership is a *placement*
        # policy, not an invariant -- a deferred rebalance or a crash mid-
        # migration can leave a tuple (or its transient duplicate) off its
        # owner, and providers ignore ids they do not hold.
        if not tuple_ids:
            return 0
        envelope = self._respond(
            request, MessageKind.DELETE_TUPLES, protocol.encode_tuple_ids(tuple_ids)
        ).to_bytes()
        gathered = self._gather_envelopes(
            f"delete-tuples({request.relation_name!r})",
            {shard_id: envelope for shard_id in self._shards},
            expect=MessageKind.ACK,
            policy=FAIL_FAST,
        )
        return self._logical_deletions(
            [protocol.decode_count(response.body) for response in gathered.values],
            len(tuple_ids),
        )

    @staticmethod
    def _logical_deletions(per_shard_deleted: Sequence[int], requested: int) -> int:
        """Logical tuples removed, from per-shard physical deletion counts.

        With replication (and with transient migration duplicates) one
        logical tuple dies on several shards, so the raw sum over-counts;
        the fleet cannot report per-id outcomes, so the sum is capped at
        the number of addressed ids.  This is exact whenever every
        addressed id still existed somewhere -- the normal case, since the
        session derives the ids from a just-executed query.  It is an
        *estimate* for stale batches on a replicated cluster: addressing
        ids that no longer exist alongside ids with R live copies can make
        the capped sum land anywhere between the true logical count and
        the batch size.  The per-id ``DELETE_TUPLES_EXACT`` op supersedes
        this whenever the fleet supports it; the estimate survives only
        for duck-typed backends without the op.
        """
        return min(sum(per_shard_deleted), requested)

    def _scatter_query(
        self, request: Message | MessageV2, raw: bytes
    ) -> tuple[EvaluationResult, bool]:
        """The merged result plus whether it is *complete* (not degraded).

        Failover reads are complete -- the survivors provably cover every
        ring segment -- so they stay cacheable; only a DEGRADED-policy
        answer that actually lost data reports False.
        """
        gathered = self._gather_envelopes(
            f"query({request.relation_name!r})",
            {shard_id: raw for shard_id in self._shards},
            expect=MessageKind.QUERY_RESULT,
            policy=self._policy,
            read=True,
        )
        results = [self._decode_result(request, response) for response in gathered.values]
        return merge_evaluation_results(results), not gathered.degraded

    def _scatter_index_lookup(
        self, request: Message | MessageV2, raw: bytes
    ) -> tuple[EvaluationResult, bool]:
        """Scatter an ``INDEX_LOOKUP``, per-shard scan fallback included.

        A fleet member that does not speak the op (an older build in a
        mixed fleet) answers with the ``cannot serve message kind`` error;
        this coordinator then replays the lookup's embedded fallback query
        to *that shard only* as a plain ``QUERY``, so the merged answer
        stays complete -- some shards at O(result), the stragglers at
        O(data) -- instead of failing the read.
        """
        from repro.index.wire import decode_index_lookup

        lookup = decode_index_lookup(request.body)
        fallback_raw = None
        if lookup.fallback_query is not None:
            fallback_raw = self._respond(
                request,
                MessageKind.QUERY,
                protocol.encode_encrypted_query(lookup.fallback_query),
            ).to_bytes()
        self._stats.record_index_lookup()
        calls = [
            self._lookup_call(shard_id, raw, fallback_raw)
            for shard_id in self._shards
        ]
        async_calls = None
        if self._loop_thread is not None and all(
            hasattr(self.shard(shard_id), "handle_message_async")
            for shard_id in self._shards
        ):
            async_calls = [
                self._lookup_call_async(shard_id, raw, fallback_raw)
                for shard_id in self._shards
            ]
        gathered = self._gather(
            f"index-lookup({request.relation_name!r})",
            calls,
            policy=self._policy,
            read=True,
            async_calls=async_calls,
        )
        results = [self._decode_result(request, response) for response in gathered.values]
        return merge_evaluation_results(results), not gathered.degraded

    #: The error text a provider answers for a message kind it cannot serve;
    #: the lookup scatter keys its per-shard scan fallback on it.
    _UNSERVED_KIND_MARKER = b"cannot serve message kind"

    def _lookup_fallback_applies(
        self, response: Message | MessageV2, fallback_raw: bytes | None
    ) -> bool:
        return (
            response.kind is MessageKind.ERROR
            and fallback_raw is not None
            and self._UNSERVED_KIND_MARKER in response.body
        )

    def _lookup_call(
        self, shard_id: str, envelope: bytes, fallback_raw: bytes | None
    ) -> tuple[str, Callable[[], Message | MessageV2]]:
        server = self.shard(shard_id)

        def call() -> Message | MessageV2:
            response = protocol.parse_message(server.handle_message(envelope))
            if self._lookup_fallback_applies(response, fallback_raw):
                self._stats.record_index_scan_fallback()
                return self._check_envelope_response(
                    shard_id, server.handle_message(fallback_raw), MessageKind.QUERY_RESULT
                )
            return self._checked_lookup_response(shard_id, response)

        return shard_id, call

    def _lookup_call_async(
        self, shard_id: str, envelope: bytes, fallback_raw: bytes | None
    ) -> tuple[str, Callable[[], Any]]:
        server = self.shard(shard_id)
        # Captured here, on the session thread: the coroutine runs on the
        # loop thread where the ambient contextvar is unset.
        trace_id = current_trace_id()

        async def round_trip() -> Message | MessageV2:
            response = protocol.parse_message(
                await server.handle_message_async(envelope, trace_id=trace_id)
            )
            if self._lookup_fallback_applies(response, fallback_raw):
                self._stats.record_index_scan_fallback()
                return self._check_envelope_response(
                    shard_id,
                    await server.handle_message_async(fallback_raw, trace_id=trace_id),
                    MessageKind.QUERY_RESULT,
                )
            return self._checked_lookup_response(shard_id, response)

        return shard_id, round_trip

    @staticmethod
    def _checked_lookup_response(
        shard_id: str, response: Message | MessageV2
    ) -> Message | MessageV2:
        if response.kind is MessageKind.ERROR:
            raise ClusterError(response.body.decode("utf-8", "replace"))
        if response.kind is not MessageKind.QUERY_RESULT:
            raise ClusterError(
                f"shard {shard_id!r} answered {response.kind.value!r}, "
                f"expected {MessageKind.QUERY_RESULT.value!r}"
            )
        return response

    def _scatter_batch(
        self, request: Message | MessageV2, raw: bytes
    ) -> tuple[list[EvaluationResult], bool]:
        gathered = self._gather_envelopes(
            f"batch-query({request.relation_name!r})",
            {shard_id: raw for shard_id in self._shards},
            expect=MessageKind.BATCH_RESULT,
            policy=self._policy,
            read=True,
        )
        per_shard = [
            protocol.decode_result_batch(response.body) for response in gathered.values
        ]
        lengths = {len(results) for results in per_shard}
        if len(lengths) != 1:
            raise ClusterError(
                f"shards answered differing batch sizes: {sorted(lengths)}"
            )
        merged = [
            merge_evaluation_results([results[i] for results in per_shard])
            for i in range(lengths.pop())
        ]
        return merged, not gathered.degraded

    @staticmethod
    def _decode_result(
        request: Message | MessageV2, response: Message | MessageV2
    ) -> EvaluationResult:
        if request.version == protocol.PROTOCOL_V1:
            return EvaluationResult(
                matching=protocol.decode_encrypted_relation(response.body)
            )
        result, consumed = protocol.decode_evaluation_result(response.body)
        if consumed != len(response.body):
            raise ClusterError("trailing bytes after evaluation result")
        return result

    def _gather_envelopes(
        self,
        operation: str,
        envelopes: dict[str, bytes],
        *,
        expect: MessageKind,
        policy: str,
        read: bool = False,
    ) -> GatherResult:
        """Scatter per-shard envelopes, on the event loop when possible.

        When every addressed shard sits behind a pipelined asyncio proxy
        (the ``async_transport`` fleet), the scatter runs as coroutines on
        the router's loop thread -- one coordinator thread, all shard
        round trips in flight at once, timeouts cancelling mid-flight.
        Otherwise (in-process backends, mixed fleets, sync proxies) the
        thread-pool scatter serves as the fallback.  Outcome resolution --
        failover, policy, stats -- is identical either way.
        """
        calls = [
            self._envelope_call(shard_id, envelope, expect)
            for shard_id, envelope in envelopes.items()
        ]
        async_calls = None
        if self._loop_thread is not None and all(
            hasattr(self.shard(shard_id), "handle_message_async")
            for shard_id in envelopes
        ):
            async_calls = [
                self._envelope_call_async(shard_id, envelope, expect)
                for shard_id, envelope in envelopes.items()
            ]
        return self._gather(
            operation, calls, policy=policy, read=read, async_calls=async_calls
        )

    def _check_envelope_response(
        self, shard_id: str, raw_response: bytes, expect: MessageKind
    ) -> Message | MessageV2:
        response = protocol.parse_message(raw_response)
        if response.kind is MessageKind.ERROR:
            raise ClusterError(response.body.decode("utf-8", "replace"))
        if response.kind is not expect:
            raise ClusterError(
                f"shard {shard_id!r} answered {response.kind.value!r}, "
                f"expected {expect.value!r}"
            )
        return response

    def _envelope_call(
        self, shard_id: str, envelope: bytes, expect: MessageKind
    ) -> tuple[str, Callable[[], Message | MessageV2]]:
        server = self.shard(shard_id)

        def call() -> Message | MessageV2:
            return self._check_envelope_response(
                shard_id, server.handle_message(envelope), expect
            )

        return shard_id, call

    def _envelope_call_async(
        self, shard_id: str, envelope: bytes, expect: MessageKind
    ) -> tuple[str, Callable[[], Any]]:
        server = self.shard(shard_id)
        trace_id = current_trace_id()  # captured on the session thread

        async def round_trip() -> Message | MessageV2:
            return self._check_envelope_response(
                shard_id,
                await server.handle_message_async(envelope, trace_id=trace_id),
                expect,
            )

        return shard_id, round_trip

    # ------------------------------------------------------------------ #
    # Object-level convenience API (what OutsourcingClient uses)
    # ------------------------------------------------------------------ #

    def store_relation(
        self,
        name: str,
        encrypted_relation: EncryptedRelation,
        evaluator: ServerEvaluator,
    ) -> None:
        """Deploy the evaluator everywhere, then store each shard's partition."""
        self.register_evaluator(name, evaluator)
        self._schemas[name] = encrypted_relation.schema
        groups = self._partition_tuples(encrypted_relation)
        try:
            self._gather(
                f"store-relation({name!r})",
                [
                    (
                        shard_id,
                        (
                            lambda sv, part: lambda: sv.store_relation(
                                name,
                                EncryptedRelation(
                                    schema=encrypted_relation.schema,
                                    encrypted_tuples=tuple(part),
                                ),
                                evaluator,
                            )
                        )(self.shard(shard_id), tuples),
                    )
                    for shard_id, tuples in groups.items()
                ],
                policy=FAIL_FAST,
            )
        finally:
            self._invalidate_cache(name)

    def insert_tuple(self, name: str, encrypted_tuple: EncryptedTuple) -> None:
        """Append one ciphertext on all R of its ring-assigned replica shards.

        Fail-fast: if any replica cannot apply the write, the insert as a
        whole fails (the caller may retry; providers tolerate re-inserts of
        an id they already hold only as duplicates that reads deduplicate,
        so surfacing the failure beats silently under-replicating).
        """
        targets = self.replica_shards(encrypted_tuple.tuple_id)
        self._stats.record_routed_insert()
        try:
            if len(targets) == 1:  # unreplicated fast path: no scatter hop
                self.shard(targets[0]).insert_tuple(name, encrypted_tuple)
                return
            self._gather(
                f"insert-tuple({name!r})",
                [
                    (
                        shard_id,
                        (lambda sv: lambda: sv.insert_tuple(name, encrypted_tuple))(
                            self.shard(shard_id)
                        ),
                    )
                    for shard_id in targets
                ],
                policy=FAIL_FAST,
            )
        finally:
            self._invalidate_cache(name)

    def delete_tuples(self, name: str, tuple_ids: Sequence[bytes]) -> int:
        """Delete ids on every shard; returns the *logical* count removed.

        The full id list goes to the whole fleet (providers ignore unknown
        ids), so deletes stay correct while tuples sit off their ring owner
        -- a deferred rebalance, insert-first migration duplicates, or the
        R replica copies.  When every shard reports per-id outcomes
        (:meth:`delete_tuples_exact`) the logical count is exact even for
        stale or replayed batches; only duck-typed backends without the op
        fall back to the capped-sum estimate of :meth:`_logical_deletions`.
        """
        if not tuple_ids:
            return 0
        if all(
            hasattr(shard.server, "delete_tuples_exact")
            for shard in self._shards.values()
        ):
            return len(self.delete_tuples_exact(name, tuple_ids))
        ids = list(tuple_ids)
        try:
            gathered = self._gather(
                f"delete-tuples({name!r})",
                self._all_shards(lambda server: server.delete_tuples(name, ids)),
                policy=FAIL_FAST,
            )
        finally:
            self._invalidate_cache(name)
        return self._logical_deletions(gathered.values, len(ids))

    def delete_tuples_exact(self, name: str, tuple_ids: Sequence[bytes]) -> tuple[bytes, ...]:
        """Delete ids fleet-wide and report exactly which ids were live.

        The union of per-shard outcomes is the precise logical deletion
        set: every physical copy of a tuple reports the same public id, so
        replication and crash duplicates collapse for free.  This is the
        per-id outcome op the capped-sum estimate of
        :meth:`_logical_deletions` could not provide.
        """
        if not tuple_ids:
            return ()
        ids = list(tuple_ids)
        try:
            gathered = self._gather(
                f"delete-tuples-exact({name!r})",
                self._all_shards(
                    lambda server: tuple(server.delete_tuples_exact(name, ids))
                ),
                policy=FAIL_FAST,
            )
        finally:
            self._invalidate_cache(name)
        deleted: set[bytes] = set()
        for shard_deleted in gathered.values:
            deleted.update(shard_deleted)
        return tuple(sorted(deleted))

    def execute_query(
        self, name: str, encrypted_query: EncryptedQuery
    ) -> EvaluationResult:
        """Scatter one encrypted query and merge the per-shard results."""
        token = None
        generation = None
        if self._cache is not None:
            # Same token namespace as the QUERY envelope path (whose body
            # *is* the encoded encrypted query), so both surfaces share hits.
            token = ("query", protocol.encode_encrypted_query(encrypted_query))
            cached = self._cache.lookup(name, token)
            if cached is not None:
                return cached
            generation = self._cache.generation(name)
        gathered = self._gather(
            f"query({name!r})",
            self._all_shards(lambda server: server.execute_query(name, encrypted_query)),
            policy=self._policy,
            read=True,
        )
        merged = merge_evaluation_results(list(gathered.values))
        if self._cache is not None and not gathered.degraded:
            self._cache.put(name, token, merged, generation)
        return merged

    def execute_batch(
        self, name: str, encrypted_queries: Sequence[EncryptedQuery]
    ) -> list[EvaluationResult]:
        """Scatter a query batch and merge element-wise (cache-aware)."""
        queries = list(encrypted_queries)
        if self._cache is None:
            return self._scatter_object_batch(name, queries)[0]
        tokens = [("query", protocol.encode_encrypted_query(q)) for q in queries]
        results: list[EvaluationResult | None] = [
            self._cache.lookup(name, token) for token in tokens
        ]
        missing = [i for i, value in enumerate(results) if value is None]
        if missing:
            generation = self._cache.generation(name)
            fetched, complete = self._scatter_object_batch(
                name, [queries[i] for i in missing]
            )
            for i, merged in zip(missing, fetched):
                results[i] = merged
                if complete:
                    self._cache.put(name, tokens[i], merged, generation)
        return list(results)

    def _scatter_object_batch(
        self, name: str, queries: Sequence[EncryptedQuery]
    ) -> tuple[list[EvaluationResult], bool]:
        gathered = self._gather(
            f"batch-query({name!r})",
            self._all_shards(lambda server: server.execute_batch(name, queries)),
            policy=self._policy,
            read=True,
        )
        merged = [
            merge_evaluation_results([results[i] for results in gathered.values])
            for i in range(len(queries))
        ]
        return merged, not gathered.degraded

    # ------------------------------------------------------------------ #
    # Elastic membership
    # ------------------------------------------------------------------ #

    def add_shard(
        self, backend: Any, shard_id: str | None = None, *, rebalance: bool = True
    ):
        """Grow the fleet by one shard and migrate its ring share onto it.

        The new shard is primed with every known relation (its evaluator and
        an empty partition) before it joins the ring, so scatter reads never
        observe a shard without the relation.  Requires every relation's
        evaluator to have been registered through this router.

        Returns the :class:`~repro.cluster.rebalance.RebalanceReport` (or
        None with ``rebalance=False``, leaving existing tuples in place
        until :meth:`rebalance` runs).
        """
        names = self.relation_names
        missing = [name for name in names if name not in self._evaluators]
        if missing:
            raise ClusterError(
                f"cannot prime a new shard: no evaluator registered through this "
                f"router for relation(s) {missing} (register_evaluator them first)"
            )
        shard = self._open_backend(backend, shard_id, len(self._shards))
        if shard.shard_id in self._shards:
            if shard.owned:
                shard.server.close()
            raise ClusterError(f"duplicate shard id {shard.shard_id!r}")
        try:
            for name in names:
                schema = self._any_schema(name)
                shard.server.store_relation(
                    name,
                    EncryptedRelation(schema=schema, encrypted_tuples=()),
                    self._evaluators[name],
                )
        except BaseException:
            if shard.owned:
                shard.server.close()
            raise
        self._shards[shard.shard_id] = shard
        self._ring.add_shard(shard.shard_id)
        self._resize_executor()
        # The ring changed: routed reads may now land on the (still empty)
        # newcomer, so no pre-join cache entry may survive.
        self._flush_cache()
        if not rebalance:
            return None
        return self.rebalance()

    def remove_shard(self, shard_id: str, *, drain: bool = True):
        """Shrink the fleet, draining the leaving shard's tuples first.

        With ``drain=True`` the leaving shard is taken off the ring and a
        replica-aware rebalance runs over the whole fleet (the leaving
        backend included as a copy source), so every tuple ends up on its R
        new ring successors -- the replication factor is restored, not just
        the leaving shard's data rehomed.  The relations are then dropped
        from the leaving shard before it is detached (and closed, when
        owned).  Returns the
        :class:`~repro.cluster.rebalance.RebalanceReport` of the drain.

        Removal below R shards is refused: the remaining fleet could not
        hold R distinct copies of anything.
        """
        from repro.cluster.rebalance import RebalanceReport
        from repro.cluster.rebalance import rebalance as run_rebalance

        if shard_id not in self._shards:
            raise ClusterError(f"no shard named {shard_id!r}")
        if len(self._shards) == 1:
            raise ClusterError("cannot remove the last shard")
        if len(self._shards) - 1 < self._replication:
            raise ClusterError(
                f"removing shard {shard_id!r} would leave "
                f"{len(self._shards) - 1} shard(s), fewer than the "
                f"replication factor {self._replication}"
            )
        leaving = self._shards[shard_id]
        self._ring.remove_shard(shard_id)
        report = RebalanceReport()
        try:
            if drain:
                report = run_rebalance(
                    {sid: shard.server for sid, shard in self._shards.items()},
                    self._ring,
                    self.relation_names,
                    replication=self._replication,
                )
                for name in tuple(leaving.server.relation_names):
                    leaving.server.drop_relation(name)
        except BaseException:
            # Put the shard back: its data was not (fully) drained.
            self._ring.add_shard(shard_id)
            self._flush_cache()
            raise
        del self._shards[shard_id]
        self._flush_cache()
        if leaving.owned:
            leaving.server.close()
        return report

    def rebalance(self):
        """Repair every tuple's placement to exactly its R ring successors."""
        from repro.cluster.rebalance import rebalance as run_rebalance

        try:
            return run_rebalance(
                {shard_id: shard.server for shard_id, shard in self._shards.items()},
                self._ring,
                self.relation_names,
                replication=self._replication,
            )
        finally:
            # Tuples moved between shards: even a partial move invalidates
            # any cached merge that predates it.
            self._flush_cache()

    def _any_schema(self, name: str):
        """The (public) schema of a stored relation.

        Served from the cache populated at store time; falls back to
        fetching one shard's copy for relations stored before this router
        existed (e.g. an attach-style session over persisted shards).
        """
        cached = self._schemas.get(name)
        if cached is not None:
            return cached
        first = next(iter(self._shards.values()))
        schema = first.server.stored_relation(name).schema
        self._schemas[name] = schema
        return schema

    def _resize_executor(self) -> None:
        wanted = self._pool_headroom(len(self._shards))
        if wanted > self._executor.max_workers:
            old = self._executor
            self._executor = ScatterGatherExecutor(
                max_workers=wanted, timeout=old.timeout
            )
            old.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _partition_tuples(
        self, encrypted_relation: EncryptedRelation
    ) -> dict[str, list[EncryptedTuple]]:
        """Per-shard slices: every tuple goes to each of its R successors."""
        groups: dict[str, list[EncryptedTuple]] = {
            shard_id: [] for shard_id in self._shards
        }
        for encrypted_tuple in encrypted_relation:
            for shard_id in self.replica_shards(encrypted_tuple.tuple_id):
                groups[shard_id].append(encrypted_tuple)
        return groups

    def _all_shards(
        self, operation: Callable[[Any], Any]
    ) -> list[tuple[str, Callable[[], Any]]]:
        return [
            (shard.shard_id, (lambda sv: lambda: operation(sv))(shard.server))
            for shard in self._shards.values()
        ]

    def _gather(
        self,
        operation: str,
        calls: Sequence[tuple[str, Callable[[], Any]]],
        *,
        policy: str,
        read: bool = False,
        async_calls: Sequence[tuple[str, Callable[[], Any]]] | None = None,
    ) -> GatherResult:
        """Scatter ``calls`` and resolve failures: failover first, then policy.

        When ``async_calls`` (coroutine factories, same shard order) are
        provided the scatter runs on the router's event-loop thread over
        the pipelined connections; the thread pool remains the fallback.

        A full-fleet *read* that loses shards first tries replica failover:
        when every ring segment still has a live successor
        (:meth:`ConsistentHashRing.covers`) the surviving answers are
        complete after deduplication, so the read succeeds un-degraded and
        only ``stats.failover_reads`` records that anything happened.  Only
        when the failures exceed what the replicas absorb does the
        partial-failure ``policy`` decide between raising and degrading.
        """
        from repro.obs import current_trace

        if read:
            self._stats.record_scatter_read()
        trace = current_trace()
        scatter_started_wall = time.time()
        scatter_started = time.monotonic()
        if async_calls is not None and self._loop_thread is not None:
            self._stats.record_loop_scatter()
            transport = "event-loop"
            outcomes = self._executor.scatter_on_loop(self._loop_thread, async_calls)
        else:
            transport = "thread-pool"
            outcomes = self._executor.scatter(calls)
        scatter_elapsed = time.monotonic() - scatter_started
        self._record_outcomes(
            trace, operation, transport, scatter_started_wall, scatter_elapsed, outcomes
        )
        failures = [o for o in outcomes if not o.ok]
        if (
            failures
            and read
            and self._replication > 1
            and len(calls) == len(self._shards)  # coverage math needs the full fleet
        ):
            live = [o.shard_id for o in outcomes if o.ok]
            if self._ring.covers(live, self._replication):
                self._stats.record_failover_read([o.shard_id for o in failures])
                return GatherResult(
                    values=tuple(o.value for o in outcomes if o.ok),
                    outcomes=tuple(outcomes),
                )
        gathered = resolve_outcomes(operation, outcomes, policy=policy)
        if gathered.degraded:
            self._stats.record_degraded_read(gathered.missing_shard_ids)
        return gathered

    def _record_outcomes(
        self,
        trace,
        operation: str,
        transport: str,
        started_wall: float,
        elapsed_s: float,
        outcomes,
    ) -> None:
        """Per-shard latency histograms plus, when traced, the scatter spans.

        Every outcome -- success, failure, timeout -- feeds its shard's
        ``cluster_shard_seconds`` histogram (the executor timed all of
        them), so shard tail latency is visible without tracing; under a
        trace the router additionally records one ``router.scatter`` span
        and a ``shard.request`` child span per outcome.
        """
        for outcome in outcomes:
            self._metrics.histogram(
                "cluster_shard_seconds", shard_id=outcome.shard_id
            ).observe(outcome.elapsed_s)
        if trace is None:
            return
        failed = [o.shard_id for o in outcomes if not o.ok]
        trace.record(
            "router.scatter",
            started_wall,
            elapsed_s,
            operation=operation,
            transport=transport,
            shards=len(outcomes),
            failed_shard_ids=failed,
        )
        for outcome in outcomes:
            annotations = {"shard_id": outcome.shard_id}
            if outcome.ok:
                annotations["outcome"] = "ok"
            else:
                annotations["outcome"] = "error"
                annotations["error"] = str(outcome.error)
            trace.record(
                "shard.request",
                outcome.started_s or started_wall,
                outcome.elapsed_s,
                **annotations,
            )

    @staticmethod
    def _respond(
        request: Message | MessageV2, kind: MessageKind, body: bytes
    ) -> Message | MessageV2:
        envelope = Message if request.version == protocol.PROTOCOL_V1 else MessageV2
        return envelope(kind=kind, relation_name=request.relation_name, body=body)
