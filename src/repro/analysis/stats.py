"""Statistics for empirical security estimates.

The security games of the paper are probabilistic experiments; every number
the experiment harness reports (attack success probability, adversary
advantage, false-positive rate) is a binomial proportion estimated from a
finite number of trials.  This module provides the estimators and the
confidence machinery:

* :func:`wilson_interval` -- the Wilson score interval for a binomial
  proportion (well-behaved at proportions near 0 and 1, which is exactly
  where security experiments live);
* :func:`hoeffding_bound` -- the two-sided Hoeffding deviation bound, used to
  state how many trials are needed to resolve a given advantage;
* :class:`BinomialEstimate` -- a proportion together with its interval and the
  derived distinguishing *advantage* ``2p - 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)``; for ``trials == 0`` the maximally uninformative
    interval ``(0, 1)`` is returned.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError("need 0 <= successes <= trials")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if trials == 0:
        return (0.0, 1.0)
    z = _z_value(confidence)
    p_hat = successes / trials
    denominator = 1 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def hoeffding_bound(trials: int, deviation: float) -> float:
    """Probability bound ``2 exp(-2 n t^2)`` that the empirical mean deviates by ``deviation``."""
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if deviation < 0:
        raise ValueError("deviation must be non-negative")
    return min(1.0, 2.0 * math.exp(-2.0 * trials * deviation * deviation))


def trials_for_advantage(deviation: float, failure_probability: float = 0.05) -> int:
    """Number of trials needed so the Hoeffding bound drops below ``failure_probability``."""
    if deviation <= 0:
        raise ValueError("deviation must be positive")
    if not 0 < failure_probability < 1:
        raise ValueError("failure_probability must be in (0, 1)")
    return math.ceil(math.log(2.0 / failure_probability) / (2.0 * deviation * deviation))


def mean_and_std(values: list[float]) -> tuple[float, float]:
    """Sample mean and (population) standard deviation."""
    if not values:
        raise ValueError("need at least one value")
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(variance)


def _z_value(confidence: float) -> float:
    """Two-sided normal quantile via the inverse error function."""
    # erfinv through Newton iterations on erf; adequate for the few confidence
    # levels experiments use and avoids a scipy dependency in the library core.
    target = confidence
    low, high = 0.0, 10.0
    for _ in range(200):
        mid = (low + high) / 2
        if math.erf(mid / math.sqrt(2.0)) < target:
            low = mid
        else:
            high = mid
    return (low + high) / 2


@dataclass(frozen=True)
class BinomialEstimate:
    """A binomial proportion estimate with its Wilson interval."""

    successes: int
    trials: int
    confidence: float = 0.95

    @property
    def proportion(self) -> float:
        """Point estimate of the success probability."""
        if self.trials == 0:
            return 0.0
        return self.successes / self.trials

    @property
    def interval(self) -> tuple[float, float]:
        """Wilson confidence interval of the success probability."""
        return wilson_interval(self.successes, self.trials, self.confidence)

    @property
    def advantage(self) -> float:
        """Distinguishing advantage ``2p - 1`` (can be negative for bad guessers)."""
        return 2.0 * self.proportion - 1.0

    @property
    def advantage_interval(self) -> tuple[float, float]:
        """Wilson interval mapped to the advantage scale."""
        low, high = self.interval
        return (2.0 * low - 1.0, 2.0 * high - 1.0)

    def is_negligible(self, threshold: float = 0.1) -> bool:
        """Whether the advantage is statistically indistinguishable from 0.

        True when the advantage interval contains 0 or stays below
        ``threshold`` in absolute value -- the empirical stand-in for the
        asymptotic notion of a negligible winning probability.
        """
        low, high = self.advantage_interval
        if low <= 0.0 <= high:
            return True
        return max(abs(low), abs(high)) < threshold

    def is_overwhelming(self, threshold: float = 0.9) -> bool:
        """Whether the advantage is confidently above ``threshold`` (attack succeeds)."""
        low, _ = self.advantage_interval
        return low >= threshold
