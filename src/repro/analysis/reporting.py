"""Plain-text experiment tables.

Every benchmark in ``benchmarks/`` prints the rows it reproduces using
:class:`ExperimentTable`, so the output of ``pytest benchmarks/`` can be
compared line by line with the tables recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentTable:
    """A titled table with a fixed header and appendable rows."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append a row; values are converted with :func:`format_value`."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([format_value(v) for v in values])

    def render(self) -> str:
        """Render the table as aligned plain text."""
        return format_table(self.title, self.columns, self.rows)

    def __str__(self) -> str:
        return self.render()


def format_value(value) -> str:
    """Human-friendly formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


def format_table(title: str, columns: list[str], rows: list[list[str]]) -> str:
    """Render a title, header and rows as an aligned monospace table."""
    widths = [len(c) for c in columns]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: list[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} ==", render_row(columns), separator]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)
