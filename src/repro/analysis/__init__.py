"""Statistical analysis and reporting utilities for the experiment suite."""

from repro.analysis.stats import (
    BinomialEstimate,
    hoeffding_bound,
    mean_and_std,
    wilson_interval,
)
from repro.analysis.reporting import ExperimentTable, format_table

__all__ = [
    "BinomialEstimate",
    "hoeffding_bound",
    "mean_and_std",
    "wilson_interval",
    "ExperimentTable",
    "format_table",
]
