"""End-to-end tracing: trace ids, spans, an ambient current trace.

A **trace id** is 16 random bytes minted once per session operation
(:func:`new_trace_id`).  The id rides the protocol-v3 envelope to every
provider the operation touches (see
:func:`repro.outsourcing.protocol.attach_trace`), so each process can
record **spans** -- named, annotated time intervals -- against the same id
without any of them holding a reference to the others.

Within one process the current trace is **ambient**: the session facade
sets it around each operation (:func:`use_trace`), and every instrumented
layer below -- proxies, router, dispatcher, access methods -- records spans
with :func:`span` without threading a trace object through its arguments.
The ambient store is a :class:`contextvars.ContextVar`, so concurrent
asyncio tasks and threads never see each other's traces; code that hops
threads (the scatter executor, the dispatch pool) captures the trace at
submission and re-binds it in the worker.

Completed traces land in a bounded :class:`TraceBuffer` (merged by id, so
the several envelopes of one operation build one trace) and, above a
configurable threshold, in a :class:`SlowQueryLog`.  Both are exposed over
the ``trace`` control operation and the ``repro trace`` CLI.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field

#: Size of a trace id in bytes (fixed: the v3 envelope appends exactly this
#: many trailing bytes, which is what makes the O(1) attach/peek possible).
TRACE_ID_SIZE = 16


def new_trace_id() -> bytes:
    """Mint a fresh 16-byte trace id."""
    return os.urandom(TRACE_ID_SIZE)


@dataclass
class Span:
    """One named, annotated time interval of a trace."""

    name: str
    #: Wall-clock start (``time.time()``), for cross-process alignment.
    start_s: float = 0.0
    #: Monotonic duration (``time.monotonic()`` delta), immune to clock steps.
    duration_s: float = 0.0
    annotations: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "annotations": dict(self.annotations),
        }


class Trace:
    """All spans recorded under one trace id (thread-safe)."""

    def __init__(self, trace_id: bytes) -> None:
        if len(trace_id) != TRACE_ID_SIZE:
            raise ValueError(
                f"trace ids are {TRACE_ID_SIZE} bytes, got {len(trace_id)}"
            )
        self.trace_id = trace_id
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    @property
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def add_span(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def record(
        self, name: str, start_s: float, duration_s: float, **annotations
    ) -> Span:
        """Append an already-timed span (e.g. from a shard outcome)."""
        span = Span(
            name=name,
            start_s=start_s,
            duration_s=max(duration_s, 0.0),
            annotations=annotations,
        )
        self.add_span(span)
        return span

    @contextlib.contextmanager
    def span(self, name: str, **annotations):
        """Record one span around a ``with`` block; yields the mutable span."""
        entry = Span(name=name, start_s=time.time(), annotations=annotations)
        started = time.monotonic()
        try:
            yield entry
        finally:
            entry.duration_s = time.monotonic() - started
            self.add_span(entry)

    def duration_s(self) -> float:
        """Wall-clock extent of the trace (latest span end - earliest start)."""
        spans = self.spans
        if not spans:
            return 0.0
        start = min(s.start_s for s in spans)
        end = max(s.start_s + s.duration_s for s in spans)
        return max(end - start, 0.0)

    def as_dict(self) -> dict:
        spans = sorted(self.spans, key=lambda s: s.start_s)
        return {
            "trace_id": self.trace_id.hex(),
            "duration_s": self.duration_s(),
            "spans": [s.as_dict() for s in spans],
        }


# --------------------------------------------------------------------------- #
# Ambient current trace
# --------------------------------------------------------------------------- #

_current_trace: contextvars.ContextVar[Trace | None] = contextvars.ContextVar(
    "repro_obs_current_trace", default=None
)


def current_trace() -> Trace | None:
    """The trace of the operation in progress, or None when untraced."""
    return _current_trace.get()


def current_trace_id() -> bytes | None:
    """The ambient trace's id, or None when untraced."""
    trace = _current_trace.get()
    return trace.trace_id if trace is not None else None


@contextlib.contextmanager
def use_trace(trace: Trace | None):
    """Bind ``trace`` as the ambient trace for the ``with`` block.

    Passing None is allowed and a no-op bind, so thread-hop call sites can
    unconditionally re-bind whatever they captured.
    """
    token = _current_trace.set(trace)
    try:
        yield trace
    finally:
        _current_trace.reset(token)


@contextlib.contextmanager
def span(name: str, **annotations):
    """Record a span on the ambient trace (no-op when untraced).

    Always yields a :class:`Span` so call sites can set annotations without
    None checks; the span is simply discarded when no trace is bound.
    """
    trace = _current_trace.get()
    if trace is None:
        yield Span(name=name, annotations=annotations)
        return
    with trace.span(name, **annotations) as entry:
        yield entry


# --------------------------------------------------------------------------- #
# Completed-trace retention
# --------------------------------------------------------------------------- #

class TraceBuffer:
    """A bounded, id-keyed buffer of completed traces.

    Recording a trace whose id is already buffered merges its spans into
    the existing entry: the several envelopes of one session operation
    (e.g. an indexed insert's delta + tuple) assemble into one trace.
    """

    def __init__(self, max_traces: int = 256) -> None:
        if max_traces < 1:
            raise ValueError("the trace buffer holds at least one trace")
        self._max_traces = max_traces
        self._lock = threading.Lock()
        self._traces: OrderedDict[bytes, Trace] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def record(self, trace: Trace) -> None:
        """Retain (or merge) one completed trace, evicting the oldest."""
        with self._lock:
            existing = self._traces.get(trace.trace_id)
            if existing is not None and existing is not trace:
                for entry in trace.spans:
                    existing.add_span(entry)
                self._traces.move_to_end(trace.trace_id)
                return
            self._traces[trace.trace_id] = trace
            self._traces.move_to_end(trace.trace_id)
            while len(self._traces) > self._max_traces:
                self._traces.popitem(last=False)

    def get(self, trace_id: bytes) -> dict | None:
        """The buffered trace with this id as a JSON-able dict, or None."""
        with self._lock:
            trace = self._traces.get(trace_id)
        return trace.as_dict() if trace is not None else None

    def recent(self, limit: int = 10) -> list[dict]:
        """The most recently completed traces, newest first."""
        with self._lock:
            traces = list(self._traces.values())
        return [t.as_dict() for t in reversed(traces[-limit:])]


class SlowQueryLog:
    """A bounded log of traces slower than a threshold."""

    def __init__(self, threshold_s: float = 1.0, max_entries: int = 128) -> None:
        self.threshold_s = threshold_s
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=max_entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def observe(self, trace: Trace) -> bool:
        """Log the trace if it exceeds the threshold; True when logged."""
        duration = trace.duration_s()
        if duration < self.threshold_s:
            return False
        spans = sorted(trace.spans, key=lambda s: s.start_s)
        with self._lock:
            self._entries.append(
                {
                    "trace_id": trace.trace_id.hex(),
                    "duration_s": duration,
                    "recorded_at": time.time(),
                    "spans": [s.name for s in spans],
                }
            )
        return True

    def entries(self, limit: int = 20) -> list[dict]:
        """The slowest-query records, newest first."""
        with self._lock:
            entries = list(self._entries)
        return list(reversed(entries[-limit:]))
