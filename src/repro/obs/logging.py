"""One-line structured JSON logs for long-running processes.

``repro serve`` and friends report periodic state as single-line JSON
records instead of ad-hoc prose, so a log shipper (or a human with
``jq``) can consume them without a parser per message shape::

    {"event": "stats", "ts": 1754650000.12, "connections_total": 4, ...}

Every record carries ``event`` and a wall-clock ``ts``; everything else is
caller-supplied and must be JSON-able.
"""

from __future__ import annotations

import json
import sys
import time


def format_json(event: str, **fields) -> str:
    """The one-line JSON record for ``event`` (no trailing newline)."""
    record = {"event": event, "ts": round(time.time(), 6)}
    record.update(fields)
    return json.dumps(record, sort_keys=False, default=str)


def log_json(event: str, stream=None, **fields) -> None:
    """Write one structured record to ``stream`` (default stdout) and flush."""
    stream = stream if stream is not None else sys.stdout
    stream.write(format_json(event, **fields) + "\n")
    stream.flush()
