"""Observability: metrics, tracing, and structured logs for the serving stack.

Dependency-free instrumentation shared by every layer of the reproduction:

* :mod:`repro.obs.metrics` -- a thread-safe :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket log-scale latency histograms, with a
  JSON-able snapshot format, fleet-wide snapshot merging and Prometheus
  text rendering.  The legacy stat surfaces (``TcpServerStats``,
  ``ClusterStats``, index stats) are facades over one of these registries,
  so every pre-existing counter survives under its old name.
* :mod:`repro.obs.trace` -- 16-byte trace ids propagated end-to-end in the
  protocol-v3 envelope, an ambient current-trace context, spans recorded
  at every serving layer, a bounded :class:`TraceBuffer` of completed
  traces and a threshold-based :class:`SlowQueryLog`.
* :mod:`repro.obs.logging` -- one-line structured JSON log records for
  long-running processes (``repro serve``).
"""

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    MetricsRegistry,
    aggregate_snapshot,
    histogram_summaries,
    merge_snapshots,
    render_prometheus,
    snapshot_delta,
)
from repro.obs.trace import (
    TRACE_ID_SIZE,
    SlowQueryLog,
    Span,
    Trace,
    TraceBuffer,
    current_trace,
    current_trace_id,
    new_trace_id,
    span,
    use_trace,
)
from repro.obs.logging import log_json

__all__ = [
    "BUCKET_BOUNDS",
    "MetricsRegistry",
    "aggregate_snapshot",
    "histogram_summaries",
    "merge_snapshots",
    "render_prometheus",
    "snapshot_delta",
    "TRACE_ID_SIZE",
    "SlowQueryLog",
    "Span",
    "Trace",
    "TraceBuffer",
    "current_trace",
    "current_trace_id",
    "new_trace_id",
    "span",
    "use_trace",
    "log_json",
]
