"""Thread-safe metrics: counters, gauges and log-scale latency histograms.

One :class:`MetricsRegistry` per serving component (a provider process, a
TCP front-end, a router, a client session).  Every instrument is identified
by a name plus a label set (``op_kind``, ``relation``, ``shard_id``,
``access_method``, ...), mirroring the Prometheus data model without the
dependency.

Histograms use one **fixed** log-scale bucket layout shared process- and
fleet-wide (:data:`BUCKET_BOUNDS`), so merging snapshots from many
registries -- or many shards -- is a plain element-wise sum of bucket
counts, and p50/p95/p99 can be recovered from the merged counts.

Snapshots (:meth:`MetricsRegistry.snapshot`) are JSON-able dicts: they
travel over the ``metrics`` control operation, merge with
:func:`merge_snapshots`, summarize with :func:`histogram_summaries` and
render to Prometheus text format with :func:`render_prometheus`.
"""

from __future__ import annotations

import math
import re
import threading
import weakref

#: Histogram bucket upper bounds in seconds: sqrt(2)-spaced from 10us to
#: about one minute.  Fixed so that bucket counts from any two registries
#: (or any two shards) are directly summable.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    round(1e-5 * math.sqrt(2.0) ** i, 10) for i in range(46)
)

_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount


class Gauge:
    """A value that can go up and down (or be set outright)."""

    kind = "gauge"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value -= amount


class LatencyHistogram:
    """Fixed-bucket log-scale histogram of durations in seconds."""

    kind = "histogram"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        # One slot per bound plus the overflow bucket.
        self._buckets = [0] * (len(BUCKET_BOUNDS) + 1)
        self._count = 0
        self._sum = 0.0

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def buckets(self) -> list[int]:
        with self._lock:
            return list(self._buckets)

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        index = _bucket_index(seconds)
        with self._lock:
            self._buckets[index] += 1
            self._count += 1
            self._sum += seconds

    def percentile(self, q: float) -> float:
        """Approximate the q-quantile (``q`` in [0, 1]) from bucket counts."""
        with self._lock:
            return percentile_from_buckets(self._buckets, q)


def _bucket_index(seconds: float) -> int:
    # Linear scan is fine: observations are rare relative to crypto work,
    # and the early buckets (fast ops) exit almost immediately.
    for index, bound in enumerate(BUCKET_BOUNDS):
        if seconds <= bound:
            return index
    return len(BUCKET_BOUNDS)


def percentile_from_buckets(buckets: list[int], q: float) -> float:
    """The q-quantile implied by bucket counts over :data:`BUCKET_BOUNDS`.

    Linear interpolation inside the winning bucket; the overflow bucket
    reports its lower bound (there is no upper one to interpolate toward).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(buckets)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, count in enumerate(buckets):
        if count == 0:
            continue
        previous = cumulative
        cumulative += count
        if cumulative >= rank:
            if index >= len(BUCKET_BOUNDS):
                return BUCKET_BOUNDS[-1]
            lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
            upper = BUCKET_BOUNDS[index]
            fraction = (rank - previous) / count if count else 1.0
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
    return BUCKET_BOUNDS[-1]


#: Every live registry in this process; :func:`aggregate_snapshot` merges
#: them all (used by the benchmark harness to attach a metrics snapshot to
#: each result file without threading registries through every benchmark).
_REGISTRIES: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()


class MetricsRegistry:
    """A named, labelled family of thread-safe instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple, Counter | Gauge | LatencyHistogram] = {}
        _REGISTRIES.add(self)

    def _instrument(self, factory, name: str, labels: dict):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory(threading.Lock())
                self._instruments[key] = instrument
        if not isinstance(instrument, factory):
            raise ValueError(
                f"metric {name!r} is a {instrument.kind}, not a "
                f"{factory.kind}"  # type: ignore[attr-defined]
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        """Get or create a counter."""
        return self._instrument(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create a gauge."""
        return self._instrument(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> LatencyHistogram:
        """Get or create a latency histogram."""
        return self._instrument(LatencyHistogram, name, labels)

    def snapshot(self) -> dict:
        """A JSON-able copy of every instrument (see module docstring)."""
        with self._lock:
            items = list(self._instruments.items())
        counters, gauges, histograms = [], [], []
        for (name, label_key), instrument in items:
            labels = dict(label_key)
            if isinstance(instrument, Counter):
                counters.append(
                    {"name": name, "labels": labels, "value": instrument.value}
                )
            elif isinstance(instrument, Gauge):
                gauges.append(
                    {"name": name, "labels": labels, "value": instrument.value}
                )
            else:
                histograms.append(
                    {
                        "name": name,
                        "labels": labels,
                        "count": instrument.count,
                        "sum": instrument.sum,
                        "buckets": instrument.buckets,
                    }
                )
        return {
            "bucket_bounds": list(BUCKET_BOUNDS),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render_prometheus(self) -> str:
        """This registry's snapshot in Prometheus text exposition format."""
        return render_prometheus(self.snapshot())


def merge_snapshots(*snapshots: dict) -> dict:
    """Sum several registry snapshots into one (fleet-wide aggregation).

    Counters and gauges with the same name and labels add; histograms sum
    their bucket counts element-wise (the layout is fixed, see
    :data:`BUCKET_BOUNDS`).
    """
    counters: dict[tuple, dict] = {}
    gauges: dict[tuple, dict] = {}
    histograms: dict[tuple, dict] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for entry in snapshot.get("counters", ()):
            _merge_scalar(counters, entry)
        for entry in snapshot.get("gauges", ()):
            _merge_scalar(gauges, entry)
        for entry in snapshot.get("histograms", ()):
            key = (entry["name"], _label_key(entry["labels"]))
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = {
                    "name": entry["name"],
                    "labels": dict(entry["labels"]),
                    "count": entry["count"],
                    "sum": entry["sum"],
                    "buckets": list(entry["buckets"]),
                }
            else:
                merged["count"] += entry["count"]
                merged["sum"] += entry["sum"]
                for index, value in enumerate(entry["buckets"]):
                    merged["buckets"][index] += value
    return {
        "bucket_bounds": list(BUCKET_BOUNDS),
        "counters": list(counters.values()),
        "gauges": list(gauges.values()),
        "histograms": list(histograms.values()),
    }


def snapshot_delta(before: dict, after: dict) -> dict:
    """What happened *between* two (possibly merged) snapshots.

    Counters and histogram bucket counts subtract element-wise (clamped at
    zero: a registry that died between the snapshots can make ``after``
    smaller than ``before``, and a negative delta is meaningless); gauges
    are point-in-time readings, so the ``after`` value is kept as-is.
    Instruments present only in ``before`` -- or whose delta is empty --
    are dropped, so the result describes exactly the activity of the
    window.  This is how the benchmark harness scopes the process-wide
    :func:`aggregate_snapshot` to a single benchmark's operations instead
    of everything the pytest session ran before it.
    """
    before_counters = {
        (e["name"], _label_key(e["labels"])): e for e in before.get("counters", ())
    }
    before_histograms = {
        (e["name"], _label_key(e["labels"])): e for e in before.get("histograms", ())
    }
    counters = []
    for entry in after.get("counters", ()):
        key = (entry["name"], _label_key(entry["labels"]))
        base = before_counters.get(key)
        value = entry["value"] - (base["value"] if base else 0)
        if value > 0:
            counters.append(
                {"name": entry["name"], "labels": dict(entry["labels"]), "value": value}
            )
    gauges = [
        {"name": e["name"], "labels": dict(e["labels"]), "value": e["value"]}
        for e in after.get("gauges", ())
    ]
    histograms = []
    for entry in after.get("histograms", ()):
        key = (entry["name"], _label_key(entry["labels"]))
        base = before_histograms.get(key)
        if base is None:
            buckets = list(entry["buckets"])
            count = entry["count"]
            total = entry["sum"]
        else:
            buckets = [
                max(0, after_count - before_count)
                for after_count, before_count in zip(entry["buckets"], base["buckets"])
            ]
            count = max(0, entry["count"] - base["count"])
            total = max(0.0, entry["sum"] - base["sum"])
        if count > 0:
            histograms.append(
                {
                    "name": entry["name"],
                    "labels": dict(entry["labels"]),
                    "count": count,
                    "sum": total,
                    "buckets": buckets,
                }
            )
    return {
        "bucket_bounds": list(BUCKET_BOUNDS),
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def _merge_scalar(into: dict, entry: dict) -> None:
    key = (entry["name"], _label_key(entry["labels"]))
    merged = into.get(key)
    if merged is None:
        into[key] = {
            "name": entry["name"],
            "labels": dict(entry["labels"]),
            "value": entry["value"],
        }
    else:
        merged["value"] += entry["value"]


def histogram_summaries(snapshot: dict) -> list[dict]:
    """Per-histogram p50/p95/p99 summaries of a (possibly merged) snapshot."""
    summaries = []
    for entry in snapshot.get("histograms", ()):
        buckets = entry["buckets"]
        count = entry["count"]
        summaries.append(
            {
                "name": entry["name"],
                "labels": dict(entry["labels"]),
                "count": count,
                "sum": entry["sum"],
                "mean": (entry["sum"] / count) if count else 0.0,
                "p50": percentile_from_buckets(buckets, 0.50),
                "p95": percentile_from_buckets(buckets, 0.95),
                "p99": percentile_from_buckets(buckets, 0.99),
            }
        )
    return summaries


def aggregate_snapshot() -> dict:
    """Merge the snapshots of every live registry in this process."""
    return merge_snapshots(*(r.snapshot() for r in list(_REGISTRIES)))


def _prometheus_name(name: str) -> str:
    return _LABEL_CHARS.sub("_", name)


def _prometheus_labels(labels: dict, extra: str | None = None) -> str:
    parts = [
        f'{_prometheus_name(key)}="{_escape_label(value)}"'
        for key, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape_label(value) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def _type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", ()):
        name = _prometheus_name(entry["name"])
        _type_line(name, "counter")
        lines.append(f"{name}{_prometheus_labels(entry['labels'])} {entry['value']}")
    for entry in snapshot.get("gauges", ()):
        name = _prometheus_name(entry["name"])
        _type_line(name, "gauge")
        lines.append(f"{name}{_prometheus_labels(entry['labels'])} {entry['value']}")
    for entry in snapshot.get("histograms", ()):
        name = _prometheus_name(entry["name"])
        _type_line(name, "histogram")
        labels = entry["labels"]
        cumulative = 0
        for bound, count in zip(BUCKET_BOUNDS, entry["buckets"]):
            cumulative += count
            bucket_labels = _prometheus_labels(labels, 'le="%s"' % bound)
            lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
        cumulative += entry["buckets"][len(BUCKET_BOUNDS)]
        inf_labels = _prometheus_labels(labels, 'le="+Inf"')
        lines.append(f"{name}_bucket{inf_labels} {cumulative}")
        lines.append(f"{name}_sum{_prometheus_labels(labels)} {entry['sum']}")
        lines.append(f"{name}_count{_prometheus_labels(labels)} {entry['count']}")
    return "\n".join(lines) + "\n"
