"""Server-side observation log.

The paper's threat model is an honest-but-curious (or later adversarial)
service provider: Eve executes the protocol faithfully but records everything
she sees.  :class:`ServerAuditLog` is that record -- each stored relation,
each encrypted query and each result size.  The security experiments read the
log to build the adversary's view, and the examples print it to show exactly
how little (or how much) an outsourced deployment reveals.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum


class AuditEventKind(Enum):
    """Types of events the service provider observes."""

    RELATION_STORED = "relation-stored"
    TUPLE_INSERTED = "tuple-inserted"
    QUERY_EXECUTED = "query-executed"
    TUPLES_DELETED = "tuples-deleted"
    BATCH_EXECUTED = "batch-executed"
    RELATION_DROPPED = "relation-dropped"
    TUPLE_IDS_LISTED = "tuple-ids-listed"
    INDEX_STORED = "index-stored"
    INDEX_DELTA_APPLIED = "index-delta-applied"
    INDEX_LOOKUP_SERVED = "index-lookup-served"


@dataclass(frozen=True)
class AuditEvent:
    """One observation made by the service provider."""

    kind: AuditEventKind
    relation_name: str
    detail: dict = field(default_factory=dict)
    timestamp: float = field(default_factory=time.time)


class ServerAuditLog:
    """Append-only log of everything the untrusted server observes.

    By default the log grows without bound (the security experiments want
    the complete adversarial view).  Long-running providers -- ``repro
    serve`` in particular -- pass ``max_events`` to cap it as a ring buffer:
    the newest ``max_events`` observations are retained, older ones are
    discarded, and :attr:`dropped_events` counts what fell off.
    """

    def __init__(self, max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be a positive integer (or None)")
        self._max_events = max_events
        self._events: deque[AuditEvent] = deque(maxlen=max_events)
        self._dropped = 0

    @property
    def max_events(self) -> int | None:
        """The ring-buffer capacity, or ``None`` for an unbounded log."""
        return self._max_events

    @property
    def dropped_events(self) -> int:
        """Events discarded because the ring buffer was full."""
        return self._dropped

    @property
    def events(self) -> tuple[AuditEvent, ...]:
        """All retained events, oldest first."""
        return tuple(self._events)

    def record(self, kind: AuditEventKind, relation_name: str, **detail) -> AuditEvent:
        """Append an event (evicting the oldest when the buffer is capped)."""
        event = AuditEvent(kind=kind, relation_name=relation_name, detail=dict(detail))
        if self._max_events is not None and len(self._events) == self._max_events:
            self._dropped += 1
        self._events.append(event)
        return event

    def events_of_kind(self, kind: AuditEventKind) -> list[AuditEvent]:
        """All events of one kind."""
        return [e for e in self._events if e.kind is kind]

    def query_result_sizes(self, relation_name: str | None = None) -> list[int]:
        """Result sizes of all executed queries (what result-size attacks consume)."""
        sizes = []
        for event in self.events_of_kind(AuditEventKind.QUERY_EXECUTED):
            if relation_name is not None and event.relation_name != relation_name:
                continue
            sizes.append(event.detail.get("result_size", 0))
        return sizes

    def summary(self) -> dict[str, int]:
        """Event counts per kind."""
        return {
            kind.value: len(self.events_of_kind(kind)) for kind in AuditEventKind
        }

    def __len__(self) -> int:
        return len(self._events)
