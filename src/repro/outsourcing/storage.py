"""Pluggable ciphertext storage for the untrusted server.

The server's state is a map from relation name to encrypted relation; how
that map is persisted is an operational concern independent of the security
model (the provider stores only ciphertext either way).  The
:class:`StorageBackend` interface isolates it so deployments can swap the
default in-memory dict for the file-backed store (or, in later work, a
sharded / remote one) without touching the protocol layer.

The file backend reuses the wire codecs of
:mod:`repro.outsourcing.protocol`, so bytes at rest are exactly the bytes in
flight -- what a provider-side disk leak would expose is precisely what the
storage-overhead experiment E9 measures.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import tempfile
from abc import ABC, abstractmethod

from repro.core.dph import EncryptedRelation, EncryptedTuple
from repro.outsourcing.protocol import (
    decode_encrypted_relation,
    encode_encrypted_relation,
    encode_encrypted_tuple,
)


class StorageError(Exception):
    """A relation could not be loaded or saved."""


class StorageBackend(ABC):
    """Where the provider keeps its (ciphertext-only) relations."""

    @abstractmethod
    def save(self, name: str, encrypted_relation: EncryptedRelation) -> None:
        """Store (or replace) a relation under ``name``."""

    @abstractmethod
    def load(self, name: str) -> EncryptedRelation:
        """Return the stored relation, raising :class:`StorageError` if absent."""

    @abstractmethod
    def delete(self, name: str) -> None:
        """Drop a stored relation (no-op when absent)."""

    @abstractmethod
    def names(self) -> tuple[str, ...]:
        """Names of all stored relations."""

    def __contains__(self, name: str) -> bool:
        return name in self.names()

    def size_in_bytes(self, name: str) -> int:
        """Ciphertext footprint of one relation."""
        return self.load(name).size_in_bytes()

    def tuple_count(self, name: str) -> int:
        """Number of stored tuple ciphertexts.

        The default decodes the relation; backends with cheaper metadata
        access override this.
        """
        return len(self.load(name))

    def append(self, name: str, encrypted_tuple: EncryptedTuple) -> None:
        """Append one tuple ciphertext to a stored relation.

        The default rewrites the whole relation; backends with cheaper
        append paths override this.
        """
        stored = self.load(name)
        self.save(
            name,
            EncryptedRelation(
                schema=stored.schema,
                encrypted_tuples=stored.encrypted_tuples + (encrypted_tuple,),
            ),
        )


class InMemoryStorageBackend(StorageBackend):
    """The default backend: a process-local dict."""

    def __init__(self) -> None:
        self._relations: dict[str, EncryptedRelation] = {}

    def save(self, name: str, encrypted_relation: EncryptedRelation) -> None:
        self._relations[name] = encrypted_relation

    def load(self, name: str) -> EncryptedRelation:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise StorageError(f"no relation named {name!r} is stored") from exc

    def delete(self, name: str) -> None:
        self._relations.pop(name, None)

    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)


class FileStorageBackend(StorageBackend):
    """One file per relation, serialized with the protocol's wire codec.

    Relation names are hex-encoded in the filename so arbitrary names are
    safe on any filesystem.
    """

    SUFFIX = ".rel"

    def __init__(self, directory: str | pathlib.Path) -> None:
        self._directory = pathlib.Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> pathlib.Path:
        """Where the relation files live."""
        return self._directory

    def _path(self, name: str) -> pathlib.Path:
        return self._directory / f"{name.encode('utf-8').hex()}{self.SUFFIX}"

    def save(self, name: str, encrypted_relation: EncryptedRelation) -> None:
        """Write to a temporary file, then rename into place.

        ``os.replace`` is atomic on POSIX and Windows, so a crash mid-save
        leaves either the previous relation file or the new one -- never a
        half-written ciphertext.  The temporary file carries a ``.tmp``
        suffix so it can never be mistaken for a relation by :meth:`names`.
        """
        payload = encode_encrypted_relation(encrypted_relation)
        path = self._path(name)
        tmp_fd = tmp_path = None
        try:
            tmp_fd, tmp_path = tempfile.mkstemp(
                dir=self._directory, prefix=f".{path.name}.", suffix=".tmp"
            )
            with os.fdopen(tmp_fd, "wb") as handle:
                tmp_fd = None  # fdopen owns the descriptor now
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
            tmp_path = None
        except OSError as exc:
            raise StorageError(f"cannot save relation {name!r}: {exc}") from exc
        finally:
            if tmp_fd is not None:
                with contextlib.suppress(OSError):
                    os.close(tmp_fd)
            if tmp_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_path)

    def load(self, name: str) -> EncryptedRelation:
        path = self._path(name)
        if not path.exists():
            raise StorageError(f"no relation named {name!r} is stored")
        try:
            return decode_encrypted_relation(path.read_bytes())
        except Exception as exc:
            raise StorageError(f"stored relation {name!r} is corrupt: {exc}") from exc

    def delete(self, name: str) -> None:
        path = self._path(name)
        if path.exists():
            path.unlink()

    def names(self) -> tuple[str, ...]:
        names = []
        for path in sorted(self._directory.glob(f"*{self.SUFFIX}")):
            try:
                names.append(bytes.fromhex(path.stem).decode("utf-8"))
            except ValueError:
                continue  # foreign file in the storage directory
        return tuple(names)

    def tuple_count(self, name: str) -> int:
        """Read the 4-byte count field instead of decoding the whole file."""
        path = self._path(name)
        if not path.exists():
            raise StorageError(f"no relation named {name!r} is stored")
        try:
            with path.open("rb") as handle:
                header = handle.read(4)
                if len(header) != 4:
                    raise StorageError(f"stored relation {name!r} is corrupt")
                handle.seek(4 + int.from_bytes(header, "big"))
                count_raw = handle.read(4)
        except OSError as exc:
            raise StorageError(f"cannot read relation {name!r}: {exc}") from exc
        if len(count_raw) != 4:
            raise StorageError(f"stored relation {name!r} is corrupt")
        return int.from_bytes(count_raw, "big")

    def append(self, name: str, encrypted_tuple: EncryptedTuple) -> None:
        """Append in place: bump the tuple count and extend the file.

        The wire layout is ``len(schema) || schema || count || items...``
        with 4-byte big-endian prefixes, so an append only rewrites the
        4-byte count instead of the whole relation.
        """
        path = self._path(name)
        if not path.exists():
            raise StorageError(f"no relation named {name!r} is stored")
        item = encode_encrypted_tuple(encrypted_tuple)
        try:
            with path.open("r+b") as handle:
                header = handle.read(4)
                if len(header) != 4:
                    raise StorageError(f"stored relation {name!r} is corrupt")
                count_offset = 4 + int.from_bytes(header, "big")
                handle.seek(count_offset)
                count_raw = handle.read(4)
                if len(count_raw) != 4:
                    raise StorageError(f"stored relation {name!r} is corrupt")
                handle.seek(count_offset)
                handle.write((int.from_bytes(count_raw, "big") + 1).to_bytes(4, "big"))
                handle.seek(0, 2)
                handle.write(len(item).to_bytes(4, "big") + item)
        except OSError as exc:
            raise StorageError(f"cannot append to relation {name!r}: {exc}") from exc
