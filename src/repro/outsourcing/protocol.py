"""Wire format of the outsourcing protocol.

The client (Alex) and the service provider (Eve) exchange only ciphertext
objects; this module defines a compact, self-describing byte encoding for them
so the protocol layer is genuinely message-based (and so the storage /
bandwidth overhead experiments E8-E9 measure realistic serialized sizes, not
Python object graphs).

Two envelope versions coexist:

* **v1** (:class:`Message`) -- the original three-operation protocol
  (``STORE_RELATION`` / ``INSERT_TUPLE`` / ``QUERY``), kept byte-compatible
  for existing deployments.
* **v2** (:class:`MessageV2`) -- a magic-prefixed, versioned envelope adding
  the full-CRUD operations: tuple-id-addressed ``DELETE_TUPLES``,
  multi-query ``BATCH_QUERY`` and the metadata read ``LIST_TUPLE_IDS``
  (answered with ``TUPLE_IDS``, the public ids without their ciphertexts),
  plus ``ACK`` responses carrying counts and query results that include the
  server's evaluation statistics.

* **v3** -- byte-for-byte the v2 layout with version byte ``3`` and exactly
  :data:`TRACE_ID_SIZE` trailing bytes carrying a trace id (see
  :mod:`repro.obs.trace`).  The fixed trailing length makes trace handling
  O(1) on raw frames: :func:`attach_trace` upgrades a serialized v2
  envelope without re-encoding it, :func:`peek_trace_id` reads the id
  without parsing, and :func:`strip_trace` downgrades back to v2.
  Responses never carry trace ids; only requests do.

:func:`peek_version` distinguishes the versions on the wire (v1 envelopes
start with a 4-byte length prefix whose leading bytes are zero; v2+
envelopes start with :data:`V2_MAGIC` followed by the version byte), and
:func:`negotiate_version` picks the highest version both endpoints
support -- a v1 or pre-trace v2 peer simply never negotiates v3, so mixed
fleets degrade to untraced envelopes shard by shard.

Encoding conventions: all integers are big-endian; variable-length byte
strings are length-prefixed with 4 bytes; sequences are prefixed with a
4-byte element count.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from repro.core.dph import (
    EncryptedQuery,
    EncryptedRelation,
    EncryptedTuple,
    EvaluationResult,
)
from repro.relational.schema import RelationSchema

#: Protocol versions this module can speak.
PROTOCOL_V1 = 1
PROTOCOL_V2 = 2
PROTOCOL_V3 = 3
SUPPORTED_VERSIONS = (PROTOCOL_V1, PROTOCOL_V2, PROTOCOL_V3)

#: Size of the trace id a v3 envelope carries as its trailing bytes.
TRACE_ID_SIZE = 16

#: Leading magic of versioned (v2+) envelopes.  A v1 envelope starts with the
#: 4-byte big-endian length of its kind string (< 2**16), so its first byte is
#: always ``0x00`` and the two framings cannot collide.
V2_MAGIC = b"DPH"


class ProtocolError(Exception):
    """A message could not be encoded or decoded."""


# --------------------------------------------------------------------------- #
# Primitive encoders
# --------------------------------------------------------------------------- #

def _encode_bytes(value: bytes) -> bytes:
    return len(value).to_bytes(4, "big") + value


def _decode_bytes(raw: bytes, offset: int) -> tuple[bytes, int]:
    if offset + 4 > len(raw):
        raise ProtocolError("truncated length prefix")
    length = int.from_bytes(raw[offset: offset + 4], "big")
    offset += 4
    if offset + length > len(raw):
        raise ProtocolError("truncated byte string")
    return raw[offset: offset + length], offset + length


def _encode_sequence(items: list[bytes]) -> bytes:
    return len(items).to_bytes(4, "big") + b"".join(_encode_bytes(i) for i in items)


def _decode_sequence(raw: bytes, offset: int) -> tuple[list[bytes], int]:
    if offset + 4 > len(raw):
        raise ProtocolError("truncated sequence count")
    count = int.from_bytes(raw[offset: offset + 4], "big")
    offset += 4
    items = []
    for _ in range(count):
        item, offset = _decode_bytes(raw, offset)
        items.append(item)
    return items, offset


# --------------------------------------------------------------------------- #
# Ciphertext object encoders
# --------------------------------------------------------------------------- #

def encode_encrypted_tuple(encrypted_tuple: EncryptedTuple) -> bytes:
    """Serialize one tuple ciphertext."""
    return (
        _encode_bytes(encrypted_tuple.tuple_id)
        + _encode_bytes(encrypted_tuple.payload)
        + _encode_sequence(list(encrypted_tuple.search_fields))
        + _encode_bytes(encrypted_tuple.metadata)
    )


def decode_encrypted_tuple(raw: bytes, offset: int = 0) -> tuple[EncryptedTuple, int]:
    """Parse one tuple ciphertext, returning it and the next offset."""
    tuple_id, offset = _decode_bytes(raw, offset)
    payload, offset = _decode_bytes(raw, offset)
    fields, offset = _decode_sequence(raw, offset)
    metadata, offset = _decode_bytes(raw, offset)
    return (
        EncryptedTuple(
            tuple_id=tuple_id,
            payload=payload,
            search_fields=tuple(fields),
            metadata=metadata,
        ),
        offset,
    )


def encode_encrypted_relation(encrypted_relation: EncryptedRelation) -> bytes:
    """Serialize an encrypted relation (schema travels as its public declaration)."""
    schema_decl = _schema_declaration(encrypted_relation.schema)
    body = [encode_encrypted_tuple(t) for t in encrypted_relation.encrypted_tuples]
    return _encode_bytes(schema_decl.encode("utf-8")) + _encode_sequence(body)


def decode_encrypted_relation(raw: bytes) -> EncryptedRelation:
    """Parse an encrypted relation."""
    schema_bytes, offset = _decode_bytes(raw, 0)
    schema = RelationSchema.parse(schema_bytes.decode("utf-8"))
    bodies, offset = _decode_sequence(raw, offset)
    if offset != len(raw):
        raise ProtocolError("trailing bytes after encrypted relation")
    tuples = []
    for body in bodies:
        encrypted_tuple, consumed = decode_encrypted_tuple(body, 0)
        if consumed != len(body):
            raise ProtocolError("trailing bytes after encrypted tuple")
        tuples.append(encrypted_tuple)
    return EncryptedRelation(schema=schema, encrypted_tuples=tuple(tuples))


def encode_encrypted_query(encrypted_query: EncryptedQuery) -> bytes:
    """Serialize an encrypted query."""
    return (
        _encode_bytes(encrypted_query.scheme_name.encode("utf-8"))
        + _encode_sequence(list(encrypted_query.tokens))
        + _encode_bytes(encrypted_query.metadata)
    )


def decode_encrypted_query(raw: bytes) -> EncryptedQuery:
    """Parse an encrypted query."""
    name, offset = _decode_bytes(raw, 0)
    tokens, offset = _decode_sequence(raw, offset)
    metadata, offset = _decode_bytes(raw, offset)
    if offset != len(raw):
        raise ProtocolError("trailing bytes after encrypted query")
    return EncryptedQuery(
        scheme_name=name.decode("utf-8"), tokens=tuple(tokens), metadata=metadata
    )


def _schema_declaration(schema: RelationSchema) -> str:
    columns = ", ".join(
        f"{a.name}:{a.attribute_type.value}[{a.max_length}]" for a in schema.attributes
    )
    return f"{schema.name}({columns})"


# --------------------------------------------------------------------------- #
# Protocol-v2 body codecs
# --------------------------------------------------------------------------- #

def encode_tuple_ids(tuple_ids: Sequence[bytes]) -> bytes:
    """Serialize an id list (``DELETE_TUPLES`` request / ``TUPLE_IDS`` response)."""
    return _encode_sequence(list(tuple_ids))


def decode_tuple_ids(raw: bytes) -> tuple[bytes, ...]:
    """Parse a ``DELETE_TUPLES`` or ``TUPLE_IDS`` body."""
    ids, offset = _decode_sequence(raw, 0)
    if offset != len(raw):
        raise ProtocolError("trailing bytes after tuple id list")
    return tuple(ids)


def encode_query_batch(queries: Iterable[EncryptedQuery]) -> bytes:
    """Serialize the query list of a ``BATCH_QUERY`` request."""
    return _encode_sequence([encode_encrypted_query(q) for q in queries])


def decode_query_batch(raw: bytes) -> tuple[EncryptedQuery, ...]:
    """Parse a ``BATCH_QUERY`` body."""
    bodies, offset = _decode_sequence(raw, 0)
    if offset != len(raw):
        raise ProtocolError("trailing bytes after query batch")
    return tuple(decode_encrypted_query(body) for body in bodies)


def encode_evaluation_result(result: EvaluationResult) -> bytes:
    """Serialize a server evaluation result (matches plus work statistics)."""
    return (
        _encode_bytes(encode_encrypted_relation(result.matching))
        + result.examined.to_bytes(8, "big")
        + result.token_evaluations.to_bytes(8, "big")
    )


def decode_evaluation_result(raw: bytes, offset: int = 0) -> tuple[EvaluationResult, int]:
    """Parse an evaluation result, returning it and the next offset."""
    relation_bytes, offset = _decode_bytes(raw, offset)
    if offset + 16 > len(raw):
        raise ProtocolError("truncated evaluation statistics")
    examined = int.from_bytes(raw[offset: offset + 8], "big")
    token_evaluations = int.from_bytes(raw[offset + 8: offset + 16], "big")
    return (
        EvaluationResult(
            matching=decode_encrypted_relation(relation_bytes),
            examined=examined,
            token_evaluations=token_evaluations,
        ),
        offset + 16,
    )


def encode_result_batch(results: Iterable[EvaluationResult]) -> bytes:
    """Serialize the result list of a ``BATCH_RESULT`` response."""
    return _encode_sequence([encode_evaluation_result(r) for r in results])


def decode_result_batch(raw: bytes) -> tuple[EvaluationResult, ...]:
    """Parse a ``BATCH_RESULT`` body."""
    bodies, offset = _decode_sequence(raw, 0)
    if offset != len(raw):
        raise ProtocolError("trailing bytes after result batch")
    results = []
    for body in bodies:
        result, consumed = decode_evaluation_result(body, 0)
        if consumed != len(body):
            raise ProtocolError("trailing bytes after evaluation result")
        results.append(result)
    return tuple(results)


def encode_count(count: int) -> bytes:
    """Serialize the non-negative count carried by an ``ACK`` body."""
    if count < 0:
        raise ProtocolError("counts are non-negative")
    return count.to_bytes(8, "big")


def decode_count(raw: bytes) -> int:
    """Parse an ``ACK`` count body."""
    if len(raw) != 8:
        raise ProtocolError("malformed count body")
    return int.from_bytes(raw, "big")


# --------------------------------------------------------------------------- #
# Message envelope
# --------------------------------------------------------------------------- #

class MessageKind(Enum):
    """Protocol message types."""

    STORE_RELATION = "store-relation"
    INSERT_TUPLE = "insert-tuple"
    QUERY = "query"
    QUERY_RESULT = "query-result"
    ERROR = "error"
    ACK = "ack"
    # v2-only kinds:
    DELETE_TUPLES = "delete-tuples"
    BATCH_QUERY = "batch-query"
    BATCH_RESULT = "batch-result"
    LIST_TUPLE_IDS = "list-tuple-ids"
    TUPLE_IDS = "tuple-ids"
    DELETE_TUPLES_EXACT = "delete-tuples-exact"
    INDEX_PUT = "index-put"
    INDEX_DELTA = "index-delta"
    INDEX_LOOKUP = "index-lookup"


#: Kinds that may only travel inside a version >= 2 envelope.
V2_ONLY_KINDS = frozenset(
    {
        MessageKind.DELETE_TUPLES,
        MessageKind.BATCH_QUERY,
        MessageKind.BATCH_RESULT,
        MessageKind.LIST_TUPLE_IDS,
        MessageKind.TUPLE_IDS,
        MessageKind.DELETE_TUPLES_EXACT,
        MessageKind.INDEX_PUT,
        MessageKind.INDEX_DELTA,
        MessageKind.INDEX_LOOKUP,
    }
)


def _decode_envelope_fields(
    raw: bytes, offset: int, end: int | None = None
) -> tuple[MessageKind, str, bytes]:
    """Parse the ``kind | relation_name | body`` triple shared by all envelopes.

    ``end`` bounds the envelope fields when the frame carries trailing
    trace bytes (v3); it defaults to the end of ``raw``.
    """
    if end is None:
        end = len(raw)
    kind_bytes, offset = _decode_bytes(raw, offset)
    name_bytes, offset = _decode_bytes(raw, offset)
    body, offset = _decode_bytes(raw, offset)
    if offset != end:
        raise ProtocolError("trailing bytes after message")
    try:
        kind = MessageKind(kind_bytes.decode("utf-8"))
    except ValueError as exc:  # covers UnicodeDecodeError too
        raise ProtocolError(f"unknown message kind {kind_bytes!r}") from exc
    try:
        relation_name = name_bytes.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"relation name {name_bytes!r} is not valid UTF-8") from exc
    return kind, relation_name, body


@dataclass(frozen=True)
class Message:
    """A v1 protocol message: a kind, a target relation name, and a ciphertext body."""

    kind: MessageKind
    relation_name: str
    body: bytes = b""

    @property
    def version(self) -> int:
        """The envelope version (uniform access shared with :class:`MessageV2`)."""
        return PROTOCOL_V1

    def to_bytes(self) -> bytes:
        """Serialize the envelope."""
        return (
            _encode_bytes(self.kind.value.encode("utf-8"))
            + _encode_bytes(self.relation_name.encode("utf-8"))
            + _encode_bytes(self.body)
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Message":
        """Parse an envelope."""
        kind, relation_name, body = _decode_envelope_fields(raw, 0)
        if kind in V2_ONLY_KINDS:
            raise ProtocolError(
                f"message kind {kind.value!r} requires protocol version >= 2"
            )
        return cls(kind=kind, relation_name=relation_name, body=body)


@dataclass(frozen=True)
class MessageV2:
    """A versioned (v2/v3) protocol message.

    The frame is ``V2_MAGIC | version (1 byte) | kind | relation_name | body``
    with the usual length prefixes on the three variable parts.  When
    ``trace_id`` is set the envelope serializes as v3: the same layout with
    version byte ``3`` and the :data:`TRACE_ID_SIZE` id bytes appended.
    """

    kind: MessageKind
    relation_name: str
    body: bytes = b""
    trace_id: bytes | None = None

    @property
    def version(self) -> int:
        """The envelope version (3 when a trace id rides along)."""
        return PROTOCOL_V2 if self.trace_id is None else PROTOCOL_V3

    def to_bytes(self) -> bytes:
        """Serialize the envelope."""
        if self.trace_id is not None and len(self.trace_id) != TRACE_ID_SIZE:
            raise ProtocolError(
                f"trace ids are {TRACE_ID_SIZE} bytes, got {len(self.trace_id)}"
            )
        return (
            V2_MAGIC
            + bytes([self.version])
            + _encode_bytes(self.kind.value.encode("utf-8"))
            + _encode_bytes(self.relation_name.encode("utf-8"))
            + _encode_bytes(self.body)
            + (self.trace_id or b"")
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MessageV2":
        """Parse an envelope, rejecting foreign magic and unknown versions."""
        header = len(V2_MAGIC) + 1
        if len(raw) < header or raw[: len(V2_MAGIC)] != V2_MAGIC:
            raise ProtocolError("not a versioned protocol envelope")
        version = raw[len(V2_MAGIC)]
        if version not in (PROTOCOL_V2, PROTOCOL_V3):
            raise ProtocolError(f"unsupported protocol version {version}")
        trace_id = None
        end = len(raw)
        if version == PROTOCOL_V3:
            if len(raw) < header + TRACE_ID_SIZE:
                raise ProtocolError("truncated trace id")
            end -= TRACE_ID_SIZE
            trace_id = raw[end:]
        kind, relation_name, body = _decode_envelope_fields(raw, header, end)
        return cls(
            kind=kind, relation_name=relation_name, body=body, trace_id=trace_id
        )


def peek_version(raw: bytes) -> int:
    """The envelope version of a raw frame, without parsing the payload.

    Versioned envelopes announce themselves with :data:`V2_MAGIC`; anything
    else is treated as a legacy v1 frame (whose own parser still validates it).
    """
    if raw[: len(V2_MAGIC)] == V2_MAGIC:
        if len(raw) < len(V2_MAGIC) + 1:
            raise ProtocolError("truncated versioned envelope")
        return raw[len(V2_MAGIC)]
    return PROTOCOL_V1


def parse_message(raw: bytes) -> "Message | MessageV2":
    """Parse a frame of either envelope version."""
    version = peek_version(raw)
    if version == PROTOCOL_V1:
        return Message.from_bytes(raw)
    return MessageV2.from_bytes(raw)


def peek_envelope(raw: bytes) -> tuple[int, MessageKind, str]:
    """Validate an envelope's structure without copying its body.

    Returns ``(version, kind, relation_name)``.  Performs every structural
    check the full parsers do -- magic/version, kind validity (including
    the v2-only rule), name decoding, the body's length prefix accounting
    for exactly the remaining bytes -- but never slices the body, so a
    dispatcher can learn an envelope's routing key at ``O(header)`` cost
    even for a frame carrying a whole relation.
    """
    version = peek_version(raw)
    offset = 0 if version == PROTOCOL_V1 else len(V2_MAGIC) + 1
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(f"unsupported protocol version {version}")
    end = len(raw)
    if version == PROTOCOL_V3:
        if end < offset + TRACE_ID_SIZE:
            raise ProtocolError("truncated trace id")
        end -= TRACE_ID_SIZE
    kind_bytes, offset = _decode_bytes(raw, offset)
    name_bytes, offset = _decode_bytes(raw, offset)
    if offset + 4 > len(raw):
        raise ProtocolError("truncated length prefix")
    body_length = int.from_bytes(raw[offset: offset + 4], "big")
    if offset + 4 + body_length < end:
        raise ProtocolError("trailing bytes after message")
    if offset + 4 + body_length > end:
        raise ProtocolError("truncated byte string")
    try:
        kind = MessageKind(kind_bytes.decode("utf-8"))
    except ValueError as exc:  # covers UnicodeDecodeError too
        raise ProtocolError(f"unknown message kind {kind_bytes!r}") from exc
    if version == PROTOCOL_V1 and kind in V2_ONLY_KINDS:
        raise ProtocolError(
            f"message kind {kind.value!r} requires protocol version >= 2"
        )
    try:
        relation_name = name_bytes.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"relation name {name_bytes!r} is not valid UTF-8") from exc
    return version, kind, relation_name


def attach_trace(raw: bytes, trace_id: bytes) -> bytes:
    """Upgrade a serialized v2 envelope to v3, appending ``trace_id``.

    O(1) on the frame structure -- the version byte flips and the id bytes
    are appended; the kind/name/body encoding is reused verbatim, never
    re-parsed.  A v1 frame cannot carry a trace id and is returned
    unchanged (the transport gates on the negotiated version, so this is
    the belt to that suspender); a frame that already carries one is a
    caller bug.
    """
    if len(trace_id) != TRACE_ID_SIZE:
        raise ProtocolError(
            f"trace ids are {TRACE_ID_SIZE} bytes, got {len(trace_id)}"
        )
    version = peek_version(raw)
    if version == PROTOCOL_V1:
        return raw
    if version != PROTOCOL_V2:
        raise ProtocolError(f"cannot attach a trace id to a v{version} envelope")
    header = len(V2_MAGIC)
    return V2_MAGIC + bytes([PROTOCOL_V3]) + raw[header + 1:] + trace_id


def strip_trace(raw: bytes) -> bytes:
    """Downgrade a serialized v3 envelope to v2, dropping its trace id.

    Non-v3 frames pass through unchanged, so a relay in front of a
    pre-trace peer can call this unconditionally.
    """
    if peek_version(raw) != PROTOCOL_V3:
        return raw
    if len(raw) < len(V2_MAGIC) + 1 + TRACE_ID_SIZE:
        raise ProtocolError("truncated trace id")
    header = len(V2_MAGIC)
    return V2_MAGIC + bytes([PROTOCOL_V2]) + raw[header + 1: -TRACE_ID_SIZE]


def peek_trace_id(raw: bytes) -> bytes | None:
    """The trace id of a raw v3 frame (None for untraced versions), O(1)."""
    if peek_version(raw) != PROTOCOL_V3:
        return None
    if len(raw) < len(V2_MAGIC) + 1 + TRACE_ID_SIZE:
        raise ProtocolError("truncated trace id")
    return raw[-TRACE_ID_SIZE:]


def negotiate_version(
    client_versions: Iterable[int], server_versions: Iterable[int]
) -> int:
    """The highest protocol version both endpoints support."""
    client = set(client_versions)
    server = set(server_versions)
    common = client & server
    if not common:
        raise ProtocolError(
            f"no common protocol version (client {sorted(client)}, "
            f"server {sorted(server)})"
        )
    return max(common)
