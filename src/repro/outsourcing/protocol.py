"""Wire format of the outsourcing protocol.

The client (Alex) and the service provider (Eve) exchange only ciphertext
objects; this module defines a compact, self-describing byte encoding for them
so the protocol layer is genuinely message-based (and so the storage /
bandwidth overhead experiments E8-E9 measure realistic serialized sizes, not
Python object graphs).

Encoding conventions: all integers are big-endian; variable-length byte
strings are length-prefixed with 4 bytes; sequences are prefixed with a
4-byte element count.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.dph import EncryptedQuery, EncryptedRelation, EncryptedTuple
from repro.relational.schema import RelationSchema


class ProtocolError(Exception):
    """A message could not be encoded or decoded."""


# --------------------------------------------------------------------------- #
# Primitive encoders
# --------------------------------------------------------------------------- #

def _encode_bytes(value: bytes) -> bytes:
    return len(value).to_bytes(4, "big") + value


def _decode_bytes(raw: bytes, offset: int) -> tuple[bytes, int]:
    if offset + 4 > len(raw):
        raise ProtocolError("truncated length prefix")
    length = int.from_bytes(raw[offset: offset + 4], "big")
    offset += 4
    if offset + length > len(raw):
        raise ProtocolError("truncated byte string")
    return raw[offset: offset + length], offset + length


def _encode_sequence(items: list[bytes]) -> bytes:
    return len(items).to_bytes(4, "big") + b"".join(_encode_bytes(i) for i in items)


def _decode_sequence(raw: bytes, offset: int) -> tuple[list[bytes], int]:
    if offset + 4 > len(raw):
        raise ProtocolError("truncated sequence count")
    count = int.from_bytes(raw[offset: offset + 4], "big")
    offset += 4
    items = []
    for _ in range(count):
        item, offset = _decode_bytes(raw, offset)
        items.append(item)
    return items, offset


# --------------------------------------------------------------------------- #
# Ciphertext object encoders
# --------------------------------------------------------------------------- #

def encode_encrypted_tuple(encrypted_tuple: EncryptedTuple) -> bytes:
    """Serialize one tuple ciphertext."""
    return (
        _encode_bytes(encrypted_tuple.tuple_id)
        + _encode_bytes(encrypted_tuple.payload)
        + _encode_sequence(list(encrypted_tuple.search_fields))
        + _encode_bytes(encrypted_tuple.metadata)
    )


def decode_encrypted_tuple(raw: bytes, offset: int = 0) -> tuple[EncryptedTuple, int]:
    """Parse one tuple ciphertext, returning it and the next offset."""
    tuple_id, offset = _decode_bytes(raw, offset)
    payload, offset = _decode_bytes(raw, offset)
    fields, offset = _decode_sequence(raw, offset)
    metadata, offset = _decode_bytes(raw, offset)
    return (
        EncryptedTuple(
            tuple_id=tuple_id,
            payload=payload,
            search_fields=tuple(fields),
            metadata=metadata,
        ),
        offset,
    )


def encode_encrypted_relation(encrypted_relation: EncryptedRelation) -> bytes:
    """Serialize an encrypted relation (schema travels as its public declaration)."""
    schema_decl = _schema_declaration(encrypted_relation.schema)
    body = [encode_encrypted_tuple(t) for t in encrypted_relation.encrypted_tuples]
    return _encode_bytes(schema_decl.encode("utf-8")) + _encode_sequence(body)


def decode_encrypted_relation(raw: bytes) -> EncryptedRelation:
    """Parse an encrypted relation."""
    schema_bytes, offset = _decode_bytes(raw, 0)
    schema = RelationSchema.parse(schema_bytes.decode("utf-8"))
    bodies, offset = _decode_sequence(raw, offset)
    if offset != len(raw):
        raise ProtocolError("trailing bytes after encrypted relation")
    tuples = []
    for body in bodies:
        encrypted_tuple, consumed = decode_encrypted_tuple(body, 0)
        if consumed != len(body):
            raise ProtocolError("trailing bytes after encrypted tuple")
        tuples.append(encrypted_tuple)
    return EncryptedRelation(schema=schema, encrypted_tuples=tuple(tuples))


def encode_encrypted_query(encrypted_query: EncryptedQuery) -> bytes:
    """Serialize an encrypted query."""
    return (
        _encode_bytes(encrypted_query.scheme_name.encode("utf-8"))
        + _encode_sequence(list(encrypted_query.tokens))
        + _encode_bytes(encrypted_query.metadata)
    )


def decode_encrypted_query(raw: bytes) -> EncryptedQuery:
    """Parse an encrypted query."""
    name, offset = _decode_bytes(raw, 0)
    tokens, offset = _decode_sequence(raw, offset)
    metadata, offset = _decode_bytes(raw, offset)
    if offset != len(raw):
        raise ProtocolError("trailing bytes after encrypted query")
    return EncryptedQuery(
        scheme_name=name.decode("utf-8"), tokens=tuple(tokens), metadata=metadata
    )


def _schema_declaration(schema: RelationSchema) -> str:
    columns = ", ".join(
        f"{a.name}:{a.attribute_type.value}[{a.max_length}]" for a in schema.attributes
    )
    return f"{schema.name}({columns})"


# --------------------------------------------------------------------------- #
# Message envelope
# --------------------------------------------------------------------------- #

class MessageKind(Enum):
    """Protocol message types."""

    STORE_RELATION = "store-relation"
    INSERT_TUPLE = "insert-tuple"
    QUERY = "query"
    QUERY_RESULT = "query-result"
    ERROR = "error"


@dataclass(frozen=True)
class Message:
    """A protocol message: a kind, a target relation name, and a ciphertext body."""

    kind: MessageKind
    relation_name: str
    body: bytes = b""

    def to_bytes(self) -> bytes:
        """Serialize the envelope."""
        return (
            _encode_bytes(self.kind.value.encode("utf-8"))
            + _encode_bytes(self.relation_name.encode("utf-8"))
            + _encode_bytes(self.body)
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Message":
        """Parse an envelope."""
        kind_bytes, offset = _decode_bytes(raw, 0)
        name_bytes, offset = _decode_bytes(raw, offset)
        body, offset = _decode_bytes(raw, offset)
        if offset != len(raw):
            raise ProtocolError("trailing bytes after message")
        try:
            kind = MessageKind(kind_bytes.decode("utf-8"))
        except ValueError as exc:
            raise ProtocolError(f"unknown message kind {kind_bytes!r}") from exc
        return cls(kind=kind, relation_name=name_bytes.decode("utf-8"), body=body)
