"""End-to-end outsourcing protocol: client (Alex), untrusted server (Eve).

* :mod:`repro.outsourcing.client` -- the key-holding client;
* :mod:`repro.outsourcing.server` -- the keyless service provider;
* :mod:`repro.outsourcing.protocol` -- the byte-level wire format of the
  ciphertext objects the two exchange;
* :mod:`repro.outsourcing.audit` -- the provider's observation log (the raw
  material of every attack in :mod:`repro.security`).
"""

from repro.outsourcing.audit import AuditEvent, AuditEventKind, ServerAuditLog
from repro.outsourcing.client import ClientError, OutsourcingClient, SelectOutcome
from repro.outsourcing.protocol import (
    Message,
    MessageKind,
    ProtocolError,
    decode_encrypted_query,
    decode_encrypted_relation,
    decode_encrypted_tuple,
    encode_encrypted_query,
    encode_encrypted_relation,
    encode_encrypted_tuple,
)
from repro.outsourcing.server import (
    OutsourcedDatabaseServer,
    ServerError,
    StoredRelation,
)

__all__ = [
    "AuditEvent",
    "AuditEventKind",
    "ServerAuditLog",
    "ClientError",
    "OutsourcingClient",
    "SelectOutcome",
    "Message",
    "MessageKind",
    "ProtocolError",
    "decode_encrypted_query",
    "decode_encrypted_relation",
    "decode_encrypted_tuple",
    "encode_encrypted_query",
    "encode_encrypted_relation",
    "encode_encrypted_tuple",
    "OutsourcedDatabaseServer",
    "ServerError",
    "StoredRelation",
]
