"""End-to-end outsourcing protocol: client (Alex), untrusted server (Eve).

* :mod:`repro.outsourcing.client` -- the key-holding client;
* :mod:`repro.outsourcing.server` -- the keyless service provider;
* :mod:`repro.outsourcing.protocol` -- the byte-level wire format of the
  ciphertext objects the two exchange;
* :mod:`repro.outsourcing.audit` -- the provider's observation log (the raw
  material of every attack in :mod:`repro.security`).

The layer is transport-agnostic: :mod:`repro.net` carries the same protocol
frames over TCP, putting :class:`OutsourcedDatabaseServer` behind a real
socket (``repro serve``) without this package knowing about it.
"""

from repro.outsourcing.audit import AuditEvent, AuditEventKind, ServerAuditLog
from repro.outsourcing.client import ClientError, OutsourcingClient, SelectOutcome
from repro.outsourcing.protocol import (
    Message,
    MessageKind,
    MessageV2,
    PROTOCOL_V1,
    PROTOCOL_V2,
    ProtocolError,
    SUPPORTED_VERSIONS,
    decode_count,
    decode_encrypted_query,
    decode_encrypted_relation,
    decode_encrypted_tuple,
    decode_evaluation_result,
    decode_query_batch,
    decode_result_batch,
    decode_tuple_ids,
    encode_count,
    encode_encrypted_query,
    encode_encrypted_relation,
    encode_encrypted_tuple,
    encode_evaluation_result,
    encode_query_batch,
    encode_result_batch,
    encode_tuple_ids,
    negotiate_version,
    parse_message,
    peek_version,
)
from repro.outsourcing.server import (
    OutsourcedDatabaseServer,
    ServerError,
    StoredRelation,
)
from repro.outsourcing.storage import (
    FileStorageBackend,
    InMemoryStorageBackend,
    StorageBackend,
    StorageError,
)

__all__ = [
    "AuditEvent",
    "AuditEventKind",
    "ServerAuditLog",
    "ClientError",
    "OutsourcingClient",
    "SelectOutcome",
    "Message",
    "MessageKind",
    "MessageV2",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "ProtocolError",
    "SUPPORTED_VERSIONS",
    "decode_count",
    "decode_encrypted_query",
    "decode_encrypted_relation",
    "decode_encrypted_tuple",
    "decode_evaluation_result",
    "decode_query_batch",
    "decode_result_batch",
    "decode_tuple_ids",
    "encode_count",
    "encode_encrypted_query",
    "encode_encrypted_relation",
    "encode_encrypted_tuple",
    "encode_evaluation_result",
    "encode_query_batch",
    "encode_result_batch",
    "encode_tuple_ids",
    "negotiate_version",
    "parse_message",
    "peek_version",
    "OutsourcedDatabaseServer",
    "ServerError",
    "StoredRelation",
    "FileStorageBackend",
    "InMemoryStorageBackend",
    "StorageBackend",
    "StorageError",
]
