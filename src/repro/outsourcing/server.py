"""The untrusted database service provider (Eve).

The server stores encrypted relations, answers encrypted queries by running
the keyless :class:`~repro.core.dph.ServerEvaluator` the client registered for
the scheme, and records everything it sees in a
:class:`~repro.outsourcing.audit.ServerAuditLog`.  It never holds key
material; the only plaintext it learns is what the ciphertexts and the query
results structurally reveal -- which is precisely what the paper's security
analysis is about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dph import (
    EncryptedQuery,
    EncryptedRelation,
    EncryptedTuple,
    EvaluationResult,
    ServerEvaluator,
)
from repro.outsourcing.audit import AuditEventKind, ServerAuditLog


class ServerError(Exception):
    """The server refused or failed to process a request."""


@dataclass
class StoredRelation:
    """A named encrypted relation together with its registered evaluator."""

    name: str
    encrypted_relation: EncryptedRelation
    evaluator: ServerEvaluator


class OutsourcedDatabaseServer:
    """In-memory implementation of the untrusted service provider."""

    def __init__(self, audit_log: ServerAuditLog | None = None) -> None:
        self._relations: dict[str, StoredRelation] = {}
        self._audit = audit_log if audit_log is not None else ServerAuditLog()

    @property
    def audit_log(self) -> ServerAuditLog:
        """Everything the provider has observed so far."""
        return self._audit

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of the stored relations."""
        return tuple(self._relations)

    def store_relation(
        self,
        name: str,
        encrypted_relation: EncryptedRelation,
        evaluator: ServerEvaluator,
    ) -> None:
        """Store (or replace) an encrypted relation and its query evaluator."""
        if not name:
            raise ServerError("relation name must be non-empty")
        self._relations[name] = StoredRelation(
            name=name, encrypted_relation=encrypted_relation, evaluator=evaluator
        )
        self._audit.record(
            AuditEventKind.RELATION_STORED,
            name,
            tuple_count=len(encrypted_relation),
            size_in_bytes=encrypted_relation.size_in_bytes(),
            scheme=evaluator.scheme_name,
        )

    def insert_tuple(self, name: str, encrypted_tuple: EncryptedTuple) -> None:
        """Append one tuple ciphertext to a stored relation."""
        stored = self._stored(name)
        stored.encrypted_relation = EncryptedRelation(
            schema=stored.encrypted_relation.schema,
            encrypted_tuples=stored.encrypted_relation.encrypted_tuples + (encrypted_tuple,),
        )
        self._audit.record(
            AuditEventKind.TUPLE_INSERTED,
            name,
            size_in_bytes=encrypted_tuple.size_in_bytes(),
        )

    def execute_query(self, name: str, encrypted_query: EncryptedQuery) -> EvaluationResult:
        """Run the encrypted query against a stored relation."""
        stored = self._stored(name)
        if encrypted_query.scheme_name != stored.evaluator.scheme_name:
            raise ServerError(
                f"query scheme {encrypted_query.scheme_name!r} does not match the "
                f"relation's scheme {stored.evaluator.scheme_name!r}"
            )
        result = stored.evaluator.evaluate(encrypted_query, stored.encrypted_relation)
        self._audit.record(
            AuditEventKind.QUERY_EXECUTED,
            name,
            result_size=len(result.matching),
            examined=result.examined,
            token_evaluations=result.token_evaluations,
            token_count=len(encrypted_query.tokens),
        )
        return result

    def stored_relation(self, name: str) -> EncryptedRelation:
        """The provider's copy of a relation (what a leak would expose)."""
        return self._stored(name).encrypted_relation

    def storage_in_bytes(self, name: str | None = None) -> int:
        """Total ciphertext bytes stored (for one relation or overall)."""
        if name is not None:
            return self._stored(name).encrypted_relation.size_in_bytes()
        return sum(
            s.encrypted_relation.size_in_bytes() for s in self._relations.values()
        )

    def _stored(self, name: str) -> StoredRelation:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise ServerError(f"no relation named {name!r} is stored") from exc
