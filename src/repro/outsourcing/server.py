"""The untrusted database service provider (Eve).

The server stores encrypted relations behind a pluggable
:class:`~repro.outsourcing.storage.StorageBackend`, answers encrypted queries
by running the keyless :class:`~repro.core.dph.ServerEvaluator` the client
registered for each relation, and records everything it sees in a
:class:`~repro.outsourcing.audit.ServerAuditLog`.  It never holds key
material; the only plaintext it learns is what the ciphertexts and the query
results structurally reveal -- which is precisely what the paper's security
analysis is about.

Besides the object-level API, :meth:`OutsourcedDatabaseServer.handle_message`
speaks the byte-level protocol of :mod:`repro.outsourcing.protocol` in both
envelope versions, so a transport can shuttle opaque frames between client
and provider.  Evaluators are registered out-of-band
(:meth:`OutsourcedDatabaseServer.register_evaluator`): they are the keyless
*code* the client deploys at the provider, not data the protocol carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.dph import (
    DphError,
    EncryptedQuery,
    EncryptedRelation,
    EncryptedTuple,
    EvaluationResult,
    ServerEvaluator,
)
from repro.outsourcing import protocol
from repro.outsourcing.audit import AuditEventKind, ServerAuditLog
from repro.outsourcing.protocol import (
    Message,
    MessageKind,
    MessageV2,
    PROTOCOL_V1,
    PROTOCOL_V2,
    ProtocolError,
)
from repro.outsourcing.storage import (
    InMemoryStorageBackend,
    StorageBackend,
    StorageError,
)


class ServerError(Exception):
    """The server refused or failed to process a request."""


@dataclass
class StoredRelation:
    """A named encrypted relation together with its registered evaluator.

    Retained as the snapshot type returned by
    :meth:`OutsourcedDatabaseServer.stored`; the server's own state now lives
    in its storage backend.
    """

    name: str
    encrypted_relation: EncryptedRelation
    evaluator: ServerEvaluator


class OutsourcedDatabaseServer:
    """The untrusted service provider, generic over its storage backend."""

    #: Protocol versions this server implementation can speak.
    SUPPORTED_PROTOCOL_VERSIONS = (PROTOCOL_V1, PROTOCOL_V2)

    def __init__(
        self,
        audit_log: ServerAuditLog | None = None,
        storage: StorageBackend | None = None,
    ) -> None:
        self._storage = storage if storage is not None else InMemoryStorageBackend()
        self._evaluators: dict[str, ServerEvaluator] = {}
        self._audit = audit_log if audit_log is not None else ServerAuditLog()

    @property
    def audit_log(self) -> ServerAuditLog:
        """Everything the provider has observed so far."""
        return self._audit

    @property
    def storage(self) -> StorageBackend:
        """The backend holding the ciphertext relations."""
        return self._storage

    @property
    def supported_protocol_versions(self) -> tuple[int, ...]:
        """What :func:`repro.outsourcing.protocol.negotiate_version` consumes."""
        return self.SUPPORTED_PROTOCOL_VERSIONS

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of the stored relations."""
        return self._storage.names()

    # ------------------------------------------------------------------ #
    # Object-level API
    # ------------------------------------------------------------------ #

    def register_evaluator(self, name: str, evaluator: ServerEvaluator) -> None:
        """Deploy the keyless evaluation procedure for a relation."""
        if not name:
            raise ServerError("relation name must be non-empty")
        self._evaluators[name] = evaluator

    def store_relation(
        self,
        name: str,
        encrypted_relation: EncryptedRelation,
        evaluator: ServerEvaluator,
    ) -> None:
        """Store (or replace) an encrypted relation and its query evaluator."""
        self.register_evaluator(name, evaluator)
        self._storage.save(name, encrypted_relation)
        self._audit.record(
            AuditEventKind.RELATION_STORED,
            name,
            tuple_count=len(encrypted_relation),
            size_in_bytes=encrypted_relation.size_in_bytes(),
            scheme=evaluator.scheme_name,
        )

    def insert_tuple(self, name: str, encrypted_tuple: EncryptedTuple) -> None:
        """Append one tuple ciphertext to a stored relation."""
        try:
            self._storage.append(name, encrypted_tuple)
        except StorageError as exc:
            raise ServerError(str(exc)) from exc
        self._audit.record(
            AuditEventKind.TUPLE_INSERTED,
            name,
            size_in_bytes=encrypted_tuple.size_in_bytes(),
        )

    def delete_tuples(self, name: str, tuple_ids: Sequence[bytes]) -> int:
        """Remove the named tuple ciphertexts; returns how many were dropped.

        Unknown ids are ignored (the client addresses tuples by the public
        random ids, which may already have been deleted by a racing request).
        """
        stored = self._load(name)
        wanted = set(tuple_ids)
        remaining = tuple(
            t for t in stored.encrypted_tuples if t.tuple_id not in wanted
        )
        deleted = len(stored.encrypted_tuples) - len(remaining)
        if deleted:
            self._storage.save(
                name,
                EncryptedRelation(schema=stored.schema, encrypted_tuples=remaining),
            )
        self._audit.record(
            AuditEventKind.TUPLES_DELETED,
            name,
            requested=len(tuple_ids),  # what Eve saw on the wire, duplicates included
            deleted=deleted,
        )
        return deleted

    def execute_query(self, name: str, encrypted_query: EncryptedQuery) -> EvaluationResult:
        """Run the encrypted query against a stored relation."""
        stored = self._load(name)
        evaluator = self._evaluator(name)
        if encrypted_query.scheme_name != evaluator.scheme_name:
            raise ServerError(
                f"query scheme {encrypted_query.scheme_name!r} does not match the "
                f"relation's scheme {evaluator.scheme_name!r}"
            )
        result = evaluator.evaluate(encrypted_query, stored)
        self._audit.record(
            AuditEventKind.QUERY_EXECUTED,
            name,
            result_size=len(result.matching),
            examined=result.examined,
            token_evaluations=result.token_evaluations,
            token_count=len(encrypted_query.tokens),
        )
        return result

    def execute_batch(
        self, name: str, encrypted_queries: Sequence[EncryptedQuery]
    ) -> list[EvaluationResult]:
        """Run several encrypted queries against one relation in one request.

        Eve observes each query exactly as in the sequential case (one
        ``QUERY_EXECUTED`` audit event per query); the batch saves only the
        per-message envelope and relation lookups.
        """
        stored = self._load(name)
        evaluator = self._evaluator(name)
        # Validate the whole batch up front so a bad query rejects it atomically
        # instead of aborting after earlier queries already ran (and were logged).
        for encrypted_query in encrypted_queries:
            if encrypted_query.scheme_name != evaluator.scheme_name:
                raise ServerError(
                    f"query scheme {encrypted_query.scheme_name!r} does not match "
                    f"the relation's scheme {evaluator.scheme_name!r}"
                )
        results = []
        for encrypted_query in encrypted_queries:
            result = evaluator.evaluate(encrypted_query, stored)
            self._audit.record(
                AuditEventKind.QUERY_EXECUTED,
                name,
                result_size=len(result.matching),
                examined=result.examined,
                token_evaluations=result.token_evaluations,
                token_count=len(encrypted_query.tokens),
            )
            results.append(result)
        self._audit.record(
            AuditEventKind.BATCH_EXECUTED, name, query_count=len(results)
        )
        return results

    def drop_relation(self, name: str) -> None:
        """Forget a relation and its evaluator."""
        stored = self._load(name)  # raise ServerError when absent
        self._storage.delete(name)
        self._evaluators.pop(name, None)
        self._audit.record(
            AuditEventKind.RELATION_DROPPED, name, tuple_count=len(stored)
        )

    def stored_relation(self, name: str) -> EncryptedRelation:
        """The provider's copy of a relation (what a leak would expose)."""
        return self._load(name)

    def stored(self, name: str) -> StoredRelation:
        """Snapshot of a relation together with its evaluator."""
        return StoredRelation(
            name=name,
            encrypted_relation=self._load(name),
            evaluator=self._evaluator(name),
        )

    def tuple_count(self, name: str) -> int:
        """Number of stored tuple ciphertexts (cheap metadata read)."""
        try:
            return self._storage.tuple_count(name)
        except StorageError as exc:
            raise ServerError(str(exc)) from exc

    def list_tuple_ids(self, name: str) -> tuple[bytes, ...]:
        """The public random ids of a relation's stored tuples, in order.

        The ids are metadata every transport already reveals (they address
        deletes on the wire), so listing them leaks nothing new; what it
        buys is an ``O(ids)`` answer for coordinators that need distinct-id
        counts without shipping whole ciphertext relations.
        """
        stored = self._load(name)
        ids = tuple(t.tuple_id for t in stored.encrypted_tuples)
        self._audit.record(
            AuditEventKind.TUPLE_IDS_LISTED, name, id_count=len(ids)
        )
        return ids

    def storage_in_bytes(self, name: str | None = None) -> int:
        """Total ciphertext bytes stored (for one relation or overall)."""
        if name is not None:
            return self._load(name).size_in_bytes()
        return sum(
            self._storage.size_in_bytes(stored) for stored in self._storage.names()
        )

    # ------------------------------------------------------------------ #
    # Wire-level API
    # ------------------------------------------------------------------ #

    def handle_message(self, raw: bytes) -> bytes:
        """Process one protocol frame and return the serialized response.

        Both envelope versions are accepted; the response travels in the same
        version as the request.  Failures inside a well-framed request come
        back as ``ERROR`` messages rather than exceptions, mirroring what a
        remote provider would do.
        """
        request = protocol.parse_message(raw)
        try:
            return self._dispatch(request).to_bytes()
        # ValueError covers malformed scheme tokens rejected deep inside an
        # evaluator (e.g. SwpToken.from_bytes on truncated bytes).
        except (ServerError, StorageError, ProtocolError, DphError, ValueError) as exc:
            return self._respond(
                request, MessageKind.ERROR, str(exc).encode("utf-8")
            ).to_bytes()

    def _dispatch(self, request: Message | MessageV2) -> Message | MessageV2:
        name = request.relation_name
        if request.kind is MessageKind.STORE_RELATION:
            encrypted_relation = protocol.decode_encrypted_relation(request.body)
            evaluator = self._evaluator(name)
            self.store_relation(name, encrypted_relation, evaluator)
            return self._respond(
                request, MessageKind.ACK, protocol.encode_count(len(encrypted_relation))
            )
        if request.kind is MessageKind.INSERT_TUPLE:
            encrypted_tuple, consumed = protocol.decode_encrypted_tuple(request.body)
            if consumed != len(request.body):
                raise ProtocolError("trailing bytes after encrypted tuple")
            self.insert_tuple(name, encrypted_tuple)
            return self._respond(request, MessageKind.ACK, protocol.encode_count(1))
        if request.kind is MessageKind.QUERY:
            encrypted_query = protocol.decode_encrypted_query(request.body)
            result = self.execute_query(name, encrypted_query)
            if request.version == PROTOCOL_V1:
                body = protocol.encode_encrypted_relation(result.matching)
            else:
                body = protocol.encode_evaluation_result(result)
            return self._respond(request, MessageKind.QUERY_RESULT, body)
        if request.kind is MessageKind.DELETE_TUPLES:
            tuple_ids = protocol.decode_tuple_ids(request.body)
            deleted = self.delete_tuples(name, tuple_ids)
            return self._respond(request, MessageKind.ACK, protocol.encode_count(deleted))
        if request.kind is MessageKind.BATCH_QUERY:
            queries = protocol.decode_query_batch(request.body)
            results = self.execute_batch(name, queries)
            return self._respond(
                request, MessageKind.BATCH_RESULT, protocol.encode_result_batch(results)
            )
        if request.kind is MessageKind.LIST_TUPLE_IDS:
            if request.body:
                raise ProtocolError("a list-tuple-ids request carries no body")
            ids = self.list_tuple_ids(name)
            return self._respond(
                request, MessageKind.TUPLE_IDS, protocol.encode_tuple_ids(ids)
            )
        raise ServerError(f"cannot serve message kind {request.kind.value!r}")

    @staticmethod
    def _respond(
        request: Message | MessageV2, kind: MessageKind, body: bytes
    ) -> Message | MessageV2:
        envelope = Message if request.version == PROTOCOL_V1 else MessageV2
        return envelope(kind=kind, relation_name=request.relation_name, body=body)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _load(self, name: str) -> EncryptedRelation:
        try:
            return self._storage.load(name)
        except StorageError as exc:
            raise ServerError(str(exc)) from exc

    def _evaluator(self, name: str) -> ServerEvaluator:
        try:
            return self._evaluators[name]
        except KeyError as exc:
            raise ServerError(
                f"no evaluator is registered for relation {name!r}"
            ) from exc
