"""The untrusted database service provider (Eve).

The server stores encrypted relations behind a pluggable
:class:`~repro.outsourcing.storage.StorageBackend`, answers encrypted queries
by running the keyless :class:`~repro.core.dph.ServerEvaluator` the client
registered for each relation, and records everything it sees in a
:class:`~repro.outsourcing.audit.ServerAuditLog`.  It never holds key
material; the only plaintext it learns is what the ciphertexts and the query
results structurally reveal -- which is precisely what the paper's security
analysis is about.

Besides the object-level API, :meth:`OutsourcedDatabaseServer.handle_message`
speaks the byte-level protocol of :mod:`repro.outsourcing.protocol` in both
envelope versions, so a transport can shuttle opaque frames between client
and provider.  Evaluators are registered out-of-band
(:meth:`OutsourcedDatabaseServer.register_evaluator`): they are the keyless
*code* the client deploys at the provider, not data the protocol carries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.dph import (
    DphError,
    EncryptedQuery,
    EncryptedRelation,
    EncryptedTuple,
    EvaluationResult,
    ServerEvaluator,
)
from repro.obs import MetricsRegistry, span as obs_span
from repro.outsourcing import protocol
from repro.outsourcing.audit import AuditEventKind, ServerAuditLog
from repro.outsourcing.protocol import (
    Message,
    MessageKind,
    MessageV2,
    PROTOCOL_V1,
    PROTOCOL_V2,
    PROTOCOL_V3,
    ProtocolError,
)
from repro.outsourcing.storage import (
    InMemoryStorageBackend,
    StorageBackend,
    StorageError,
)


class ServerError(Exception):
    """The server refused or failed to process a request."""


@dataclass
class StoredRelation:
    """A named encrypted relation together with its registered evaluator.

    Retained as the snapshot type returned by
    :meth:`OutsourcedDatabaseServer.stored`; the server's own state now lives
    in its storage backend.
    """

    name: str
    encrypted_relation: EncryptedRelation
    evaluator: ServerEvaluator


class OutsourcedDatabaseServer:
    """The untrusted service provider, generic over its storage backend."""

    #: Protocol versions this server implementation can speak.
    SUPPORTED_PROTOCOL_VERSIONS = (PROTOCOL_V1, PROTOCOL_V2, PROTOCOL_V3)

    def __init__(
        self,
        audit_log: ServerAuditLog | None = None,
        storage: StorageBackend | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        # Imported here, not at module top: repro.index.wire speaks this
        # package's protocol, so a top-level import would be circular.
        from repro.index.access import IndexAccess, ScanAccess

        self._storage = storage if storage is not None else InMemoryStorageBackend()
        self._evaluators: dict[str, ServerEvaluator] = {}
        self._audit = audit_log if audit_log is not None else ServerAuditLog()
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._scan_access = ScanAccess(self.execute_query)
        self._index_access = IndexAccess(metrics=self._metrics)
        #: Lookup strategies in preference order; first that can serve wins.
        self._access_methods = (self._index_access, self._scan_access)
        self._scan_fallback_counter = self._metrics.counter(
            "index_scan_fallbacks_total"
        )

    @property
    def index_access(self):
        """The provider's index-serving strategy (stats, installed indexes)."""
        return self._index_access

    @property
    def metrics(self) -> MetricsRegistry:
        """This provider's metrics registry (shared with its TCP front-end)."""
        return self._metrics

    def metrics_snapshot(self) -> dict:
        """A registry snapshot with the audit-log gauges refreshed.

        The audit log is a ring buffer mutated on every operation; rather
        than double-count through parallel instruments, its totals are
        copied into gauges at snapshot time.
        """
        self._metrics.gauge("audit_events_dropped").set(self._audit.dropped_events)
        for kind, count in self._audit.summary().items():
            self._metrics.gauge("audit_events", kind=kind).set(count)
        return self._metrics.snapshot()

    @property
    def audit_log(self) -> ServerAuditLog:
        """Everything the provider has observed so far."""
        return self._audit

    @property
    def storage(self) -> StorageBackend:
        """The backend holding the ciphertext relations."""
        return self._storage

    @property
    def supported_protocol_versions(self) -> tuple[int, ...]:
        """What :func:`repro.outsourcing.protocol.negotiate_version` consumes."""
        return self.SUPPORTED_PROTOCOL_VERSIONS

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of the stored relations."""
        return self._storage.names()

    # ------------------------------------------------------------------ #
    # Object-level API
    # ------------------------------------------------------------------ #

    def register_evaluator(self, name: str, evaluator: ServerEvaluator) -> None:
        """Deploy the keyless evaluation procedure for a relation."""
        if not name:
            raise ServerError("relation name must be non-empty")
        self._evaluators[name] = evaluator

    def store_relation(
        self,
        name: str,
        encrypted_relation: EncryptedRelation,
        evaluator: ServerEvaluator,
    ) -> None:
        """Store (or replace) an encrypted relation and its query evaluator."""
        self.register_evaluator(name, evaluator)
        self._storage.save(name, encrypted_relation)
        # A full restore invalidates any index built for the old contents;
        # the client ships a fresh INDEX_PUT right after when indexing is on.
        self._index_access.note_store(name)
        self._audit.record(
            AuditEventKind.RELATION_STORED,
            name,
            tuple_count=len(encrypted_relation),
            size_in_bytes=encrypted_relation.size_in_bytes(),
            scheme=evaluator.scheme_name,
        )

    def insert_tuple(self, name: str, encrypted_tuple: EncryptedTuple) -> None:
        """Append one tuple ciphertext to a stored relation."""
        try:
            self._storage.append(name, encrypted_tuple)
        except StorageError as exc:
            raise ServerError(str(exc)) from exc
        self._index_access.note_insert(name, encrypted_tuple)
        self._audit.record(
            AuditEventKind.TUPLE_INSERTED,
            name,
            size_in_bytes=encrypted_tuple.size_in_bytes(),
        )

    def delete_tuples(self, name: str, tuple_ids: Sequence[bytes]) -> int:
        """Remove the named tuple ciphertexts; returns how many were dropped.

        Unknown ids are ignored (the client addresses tuples by the public
        random ids, which may already have been deleted by a racing request).
        """
        return len(self.delete_tuples_exact(name, tuple_ids))

    def delete_tuples_exact(self, name: str, tuple_ids: Sequence[bytes]) -> tuple[bytes, ...]:
        """Remove the named tuple ciphertexts and report *which* ids went.

        The per-id outcome is what a coordinator needs under replayed or
        stale delete batches: a count alone cannot say which addressed
        tuples were still live on this provider, the id set can -- and it
        is exactly the set whose index postings must be tombstoned.
        """
        stored = self._load(name)
        wanted = set(tuple_ids)
        remaining = []
        deleted_ids = []
        seen: set[bytes] = set()
        for t in stored.encrypted_tuples:
            if t.tuple_id in wanted:
                if t.tuple_id not in seen:
                    seen.add(t.tuple_id)
                    deleted_ids.append(t.tuple_id)
            else:
                remaining.append(t)
        if deleted_ids:
            self._storage.save(
                name,
                EncryptedRelation(
                    schema=stored.schema, encrypted_tuples=tuple(remaining)
                ),
            )
            self._index_access.note_delete(name, deleted_ids)
        self._audit.record(
            AuditEventKind.TUPLES_DELETED,
            name,
            requested=len(tuple_ids),  # what Eve saw on the wire, duplicates included
            deleted=len(stored.encrypted_tuples) - len(remaining),
        )
        return tuple(deleted_ids)

    def execute_query(self, name: str, encrypted_query: EncryptedQuery) -> EvaluationResult:
        """Run the encrypted query against a stored relation."""
        stored = self._load(name)
        evaluator = self._evaluator(name)
        if encrypted_query.scheme_name != evaluator.scheme_name:
            raise ServerError(
                f"query scheme {encrypted_query.scheme_name!r} does not match the "
                f"relation's scheme {evaluator.scheme_name!r}"
            )
        result = evaluator.evaluate(encrypted_query, stored)
        self._audit.record(
            AuditEventKind.QUERY_EXECUTED,
            name,
            result_size=len(result.matching),
            examined=result.examined,
            token_evaluations=result.token_evaluations,
            token_count=len(encrypted_query.tokens),
        )
        return result

    def execute_batch(
        self, name: str, encrypted_queries: Sequence[EncryptedQuery]
    ) -> list[EvaluationResult]:
        """Run several encrypted queries against one relation in one request.

        Eve observes each query exactly as in the sequential case (one
        ``QUERY_EXECUTED`` audit event per query); the batch saves only the
        per-message envelope and relation lookups.
        """
        stored = self._load(name)
        evaluator = self._evaluator(name)
        # Validate the whole batch up front so a bad query rejects it atomically
        # instead of aborting after earlier queries already ran (and were logged).
        for encrypted_query in encrypted_queries:
            if encrypted_query.scheme_name != evaluator.scheme_name:
                raise ServerError(
                    f"query scheme {encrypted_query.scheme_name!r} does not match "
                    f"the relation's scheme {evaluator.scheme_name!r}"
                )
        results = []
        for encrypted_query in encrypted_queries:
            result = evaluator.evaluate(encrypted_query, stored)
            self._audit.record(
                AuditEventKind.QUERY_EXECUTED,
                name,
                result_size=len(result.matching),
                examined=result.examined,
                token_evaluations=result.token_evaluations,
                token_count=len(encrypted_query.tokens),
            )
            results.append(result)
        self._audit.record(
            AuditEventKind.BATCH_EXECUTED, name, query_count=len(results)
        )
        return results

    def drop_relation(self, name: str) -> None:
        """Forget a relation and its evaluator."""
        stored = self._load(name)  # raise ServerError when absent
        self._storage.delete(name)
        self._evaluators.pop(name, None)
        self._index_access.note_drop(name)
        self._audit.record(
            AuditEventKind.RELATION_DROPPED, name, tuple_count=len(stored)
        )

    def stored_relation(self, name: str) -> EncryptedRelation:
        """The provider's copy of a relation (what a leak would expose)."""
        return self._load(name)

    def stored(self, name: str) -> StoredRelation:
        """Snapshot of a relation together with its evaluator."""
        return StoredRelation(
            name=name,
            encrypted_relation=self._load(name),
            evaluator=self._evaluator(name),
        )

    def tuple_count(self, name: str) -> int:
        """Number of stored tuple ciphertexts (cheap metadata read)."""
        try:
            return self._storage.tuple_count(name)
        except StorageError as exc:
            raise ServerError(str(exc)) from exc

    def list_tuple_ids(self, name: str) -> tuple[bytes, ...]:
        """The public random ids of a relation's stored tuples, in order.

        The ids are metadata every transport already reveals (they address
        deletes on the wire), so listing them leaks nothing new; what it
        buys is an ``O(ids)`` answer for coordinators that need distinct-id
        counts without shipping whole ciphertext relations.
        """
        stored = self._load(name)
        ids = tuple(t.tuple_id for t in stored.encrypted_tuples)
        self._audit.record(
            AuditEventKind.TUPLE_IDS_LISTED, name, id_count=len(ids)
        )
        return ids

    # ------------------------------------------------------------------ #
    # Encrypted inverted index (repro.index)
    # ------------------------------------------------------------------ #

    def put_index(self, name: str, snapshot) -> int:
        """Install a client-built index snapshot for a stored relation."""
        self._load(name)  # raise ServerError when the relation is absent
        self._index_access.put(name, snapshot)
        self._audit.record(
            AuditEventKind.INDEX_STORED,
            name,
            labels=len(snapshot.entries),
            posting_slots=snapshot.posting_slots(),
            bucket_capacity=snapshot.bucket_capacity,
        )
        return len(snapshot.entries)

    def apply_index_delta(self, name: str, delta) -> int:
        """Apply a posting delta; a provider without the index no-ops.

        The index is soft state: acknowledging a delta it cannot apply is
        safe because the next lookup on this provider falls back to scan.
        Returns how many posting pairs were applied (0 for the no-op).
        """
        applied = self._index_access.apply_delta(name, delta)
        count = (len(delta.additions) + len(delta.removals)) if applied else 0
        self._audit.record(
            AuditEventKind.INDEX_DELTA_APPLIED,
            name,
            additions=len(delta.additions),
            removals=len(delta.removals),
            applied=applied,
        )
        return count

    def index_lookup(self, name: str, request) -> EvaluationResult:
        """Answer an exact select through the best available access method."""
        stored = self._load(name)
        for method in self._access_methods:
            if not method.can_serve(name, request):
                continue
            fallback_taken = method is self._scan_access
            if fallback_taken:
                self._scan_fallback_counter.inc()
            started = time.monotonic()
            with obs_span(
                f"access.{method.name}",
                relation=name,
                fallback_taken=fallback_taken,
            ) as access_span:
                result = method.search(name, stored, request)
                access_span.annotations["examined"] = result.examined
                access_span.annotations["result_size"] = len(result.matching)
            self._metrics.histogram(
                "index_lookup_seconds", access_method=method.name, relation=name
            ).observe(time.monotonic() - started)
            self._audit.record(
                AuditEventKind.INDEX_LOOKUP_SERVED,
                name,
                access=method.name,
                labels=len(request.labels),
                result_size=len(result.matching),
                examined=result.examined,
            )
            return result
        raise ServerError(
            f"no access method can serve the lookup on relation {name!r} "
            "(no index installed and no fallback query supplied)"
        )

    def index_stats(self) -> dict:
        """Index-serving statistics for operators (``repro serve`` stats)."""
        stats = dict(self._index_access.stats())
        stats["scan_fallbacks"] = self._scan_fallback_counter.value
        return stats

    def storage_in_bytes(self, name: str | None = None) -> int:
        """Total ciphertext bytes stored (for one relation or overall)."""
        if name is not None:
            return self._load(name).size_in_bytes()
        return sum(
            self._storage.size_in_bytes(stored) for stored in self._storage.names()
        )

    # ------------------------------------------------------------------ #
    # Wire-level API
    # ------------------------------------------------------------------ #

    def handle_message(self, raw: bytes) -> bytes:
        """Process one protocol frame and return the serialized response.

        Both envelope versions are accepted; the response travels in the same
        version as the request.  Failures inside a well-framed request come
        back as ``ERROR`` messages rather than exceptions, mirroring what a
        remote provider would do.
        """
        request = protocol.parse_message(raw)
        started = time.monotonic()
        outcome = "ok"
        with obs_span(
            f"provider.{request.kind.value}", relation=request.relation_name
        ) as op_span:
            try:
                response = self._dispatch(request)
            # ValueError covers malformed scheme tokens rejected deep inside
            # an evaluator (e.g. SwpToken.from_bytes on truncated bytes).
            except (
                ServerError, StorageError, ProtocolError, DphError, ValueError
            ) as exc:
                outcome = "error"
                op_span.annotations["error"] = str(exc)
                response = self._respond(
                    request, MessageKind.ERROR, str(exc).encode("utf-8")
                )
        self._metrics.histogram(
            "provider_op_seconds",
            op_kind=request.kind.value,
            relation=request.relation_name,
            outcome=outcome,
        ).observe(time.monotonic() - started)
        return response.to_bytes()

    def _dispatch(self, request: Message | MessageV2) -> Message | MessageV2:
        name = request.relation_name
        if request.kind is MessageKind.STORE_RELATION:
            encrypted_relation = protocol.decode_encrypted_relation(request.body)
            evaluator = self._evaluator(name)
            self.store_relation(name, encrypted_relation, evaluator)
            return self._respond(
                request, MessageKind.ACK, protocol.encode_count(len(encrypted_relation))
            )
        if request.kind is MessageKind.INSERT_TUPLE:
            encrypted_tuple, consumed = protocol.decode_encrypted_tuple(request.body)
            if consumed != len(request.body):
                raise ProtocolError("trailing bytes after encrypted tuple")
            self.insert_tuple(name, encrypted_tuple)
            return self._respond(request, MessageKind.ACK, protocol.encode_count(1))
        if request.kind is MessageKind.QUERY:
            encrypted_query = protocol.decode_encrypted_query(request.body)
            result = self.execute_query(name, encrypted_query)
            if request.version == PROTOCOL_V1:
                body = protocol.encode_encrypted_relation(result.matching)
            else:
                body = protocol.encode_evaluation_result(result)
            return self._respond(request, MessageKind.QUERY_RESULT, body)
        if request.kind is MessageKind.DELETE_TUPLES:
            tuple_ids = protocol.decode_tuple_ids(request.body)
            deleted = self.delete_tuples(name, tuple_ids)
            return self._respond(request, MessageKind.ACK, protocol.encode_count(deleted))
        if request.kind is MessageKind.BATCH_QUERY:
            queries = protocol.decode_query_batch(request.body)
            results = self.execute_batch(name, queries)
            return self._respond(
                request, MessageKind.BATCH_RESULT, protocol.encode_result_batch(results)
            )
        if request.kind is MessageKind.LIST_TUPLE_IDS:
            if request.body:
                raise ProtocolError("a list-tuple-ids request carries no body")
            ids = self.list_tuple_ids(name)
            return self._respond(
                request, MessageKind.TUPLE_IDS, protocol.encode_tuple_ids(ids)
            )
        if request.kind is MessageKind.DELETE_TUPLES_EXACT:
            tuple_ids = protocol.decode_tuple_ids(request.body)
            deleted_ids = self.delete_tuples_exact(name, tuple_ids)
            return self._respond(
                request, MessageKind.TUPLE_IDS, protocol.encode_tuple_ids(deleted_ids)
            )
        if request.kind is MessageKind.INDEX_PUT:
            from repro.index.wire import decode_index_snapshot

            labels = self.put_index(name, decode_index_snapshot(request.body))
            return self._respond(request, MessageKind.ACK, protocol.encode_count(labels))
        if request.kind is MessageKind.INDEX_DELTA:
            from repro.index.wire import decode_index_delta

            applied = self.apply_index_delta(name, decode_index_delta(request.body))
            return self._respond(request, MessageKind.ACK, protocol.encode_count(applied))
        if request.kind is MessageKind.INDEX_LOOKUP:
            from repro.index.wire import decode_index_lookup

            result = self.index_lookup(name, decode_index_lookup(request.body))
            # INDEX_LOOKUP is v2-only, so the response always carries stats.
            return self._respond(
                request,
                MessageKind.QUERY_RESULT,
                protocol.encode_evaluation_result(result),
            )
        raise ServerError(f"cannot serve message kind {request.kind.value!r}")

    @staticmethod
    def _respond(
        request: Message | MessageV2, kind: MessageKind, body: bytes
    ) -> Message | MessageV2:
        envelope = Message if request.version == PROTOCOL_V1 else MessageV2
        return envelope(kind=kind, relation_name=request.relation_name, body=body)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _load(self, name: str) -> EncryptedRelation:
        try:
            return self._storage.load(name)
        except StorageError as exc:
            raise ServerError(str(exc)) from exc

    def _evaluator(self, name: str) -> ServerEvaluator:
        try:
            return self._evaluators[name]
        except KeyError as exc:
            raise ServerError(
                f"no evaluator is registered for relation {name!r}"
            ) from exc
