"""The outsourcing client (Alex).

Alex owns the data and the key.  The client wraps a database privacy
homomorphism and a (reference to the) untrusted server, and exposes the
operations an application would actually use:

* :meth:`OutsourcingClient.outsource` -- encrypt a plaintext relation and ship
  it to the provider;
* :meth:`OutsourcingClient.insert` -- encrypt and append a single tuple;
* :meth:`OutsourcingClient.select` -- issue an exact select (as a query AST
  node or a SQL string), let the provider evaluate it over ciphertext, then
  decrypt and filter the result;
* :meth:`OutsourcingClient.retrieve_all` -- fetch and decrypt the provider's
  full copy.

All post-processing the paper assigns to Alex -- decryption, mapping words
back to tuples, and filtering false positives -- happens here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dph import (
    DatabasePrivacyHomomorphism,
    DecryptionReport,
    EvaluationResult,
)
from repro.outsourcing.server import OutsourcedDatabaseServer
from repro.relational.query import Projection, Query
from repro.relational.relation import Relation
from repro.relational.sql import parse_sql
from repro.relational.tuples import RelationTuple


class ClientError(Exception):
    """The client refused or failed to process a request."""


@dataclass(frozen=True)
class SelectOutcome:
    """The result of a client-side select: tuples plus bookkeeping."""

    report: DecryptionReport
    projected_rows: list[tuple] | None = None
    #: The provider-side evaluation stats (pre-decryption), when the
    #: transport carried them: result sizes, tuples examined, token work.
    #: ``examined`` is how O(result) index serving shows up vs O(data) scans.
    evaluation: EvaluationResult | None = None

    @property
    def relation(self) -> Relation:
        """The filtered result relation."""
        return self.report.relation

    @property
    def false_positives(self) -> int:
        """Tuples the provider returned that the filter discarded."""
        return self.report.false_positives


class OutsourcingClient:
    """Alex: holds the key, talks ciphertext to the provider."""

    def __init__(
        self,
        dph: DatabasePrivacyHomomorphism,
        server: OutsourcedDatabaseServer,
        relation_name: str | None = None,
    ) -> None:
        self._dph = dph
        self._server = server
        self._relation_name = relation_name or dph.schema.name

    @property
    def relation_name(self) -> str:
        """Name under which the relation is stored at the provider."""
        return self._relation_name

    @property
    def scheme(self) -> DatabasePrivacyHomomorphism:
        """The underlying database privacy homomorphism."""
        return self._dph

    def outsource(self, relation: Relation) -> int:
        """Encrypt ``relation`` and store it at the provider.

        Returns the number of ciphertext bytes shipped.
        """
        if relation.schema != self._dph.schema:
            raise ClientError("relation schema does not match the scheme's schema")
        encrypted = self._dph.encrypt_relation(relation)
        self._server.store_relation(
            self._relation_name, encrypted, self._dph.server_evaluator()
        )
        return encrypted.size_in_bytes()

    def insert(self, values: RelationTuple | dict) -> None:
        """Encrypt and append one tuple."""
        if isinstance(values, dict):
            values = RelationTuple(self._dph.schema, values)
        encrypt_tuple = getattr(self._dph, "encrypt_tuple", None)
        if encrypt_tuple is None:
            raise ClientError(
                f"scheme {self._dph.name!r} does not support single-tuple inserts"
            )
        self._server.insert_tuple(self._relation_name, encrypt_tuple(values))

    def select(self, query: Query | str) -> SelectOutcome:
        """Issue an exact select and return the decrypted, filtered result."""
        parsed = self._parse(query)
        encrypted_query = self._dph.encrypt_query(parsed)
        evaluation = self._server.execute_query(self._relation_name, encrypted_query)
        report = self._dph.decrypt_result(evaluation, parsed)
        projected = None
        if isinstance(parsed, Projection) and parsed.attributes:
            projected = report.relation.project(list(parsed.attributes))
        return SelectOutcome(report=report, projected_rows=projected)

    def retrieve_all(self) -> Relation:
        """Fetch the provider's full copy and decrypt it."""
        stored = self._server.stored_relation(self._relation_name)
        return self._dph.decrypt_relation(stored)

    def _parse(self, query: Query | str) -> Query:
        if isinstance(query, str):
            parsed = parse_sql(query, self._dph.schema)
            return parsed.query
        return query
